"""Render experiment results in the paper's own formats.

Plain-text tables and figure series, with standard deviations in
parentheses exactly as the paper's Figures 2-3 annotate them.  Every
``benchmarks/bench_*.py`` prints through these helpers, so
``pytest benchmarks/ -s`` reproduces the paper's presentation.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

from repro.analysis.primitives import PrimitiveRow
from repro.bench.figures import (
    FigureSeries,
    MulticastComparison,
    RpcBreakdown,
    Table3Row,
    ThroughputCurve,
)


def render_table(title: str, headers: Sequence[str],
                 rows: Iterable[Sequence[str]]) -> str:
    """Fixed-width table with a title rule."""
    materialized = [list(map(str, r)) for r in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [title, "=" * len(title)]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in materialized:
        lines.append("  ".join(cell.ljust(widths[i])
                               for i, cell in enumerate(row)))
    return "\n".join(lines)


def render_primitive_table(title: str, rows: List[PrimitiveRow]) -> str:
    return render_table(
        title,
        ["PRIMITIVE", "TIME", "NOTE"],
        [(r.name, r.formatted().strip(), r.note) for r in rows])


def render_rpc_breakdown(result: RpcBreakdown) -> str:
    rows = [(r.name, f"{r.value:6.1f} ms", r.note)
            for r in result.components]
    rows.append(("Measured (mean of %d RPCs)" % result.measured_n,
                 f"{result.measured_mean_ms:6.1f} ms", ""))
    return render_table("S4.1  Camelot RPC latency breakdown",
                        ["COMPONENT", "TIME", "NOTE"], rows)


def render_figure(title: str, series: Dict[str, FigureSeries]) -> str:
    """A Figure 2/3-style table: subordinates across, one row per curve,
    stddev in parentheses."""
    subs = [s for s, _ in next(iter(series.values())).points]
    headers = ["SERIES"] + [f"{n} subs" for n in subs]
    rows = []
    for label, fs in series.items():
        cells = [label]
        for __, result in fs.points:
            cells.append(f"{result.summary.mean:6.1f} "
                         f"({result.summary.stdev:4.1f})")
        rows.append(cells)
        # Derived transaction-management-only series, as in the paper.
        tm_cells = [f"  TM only: {label}"]
        for __, result in fs.points:
            tm_cells.append(f"{result.tm_summary.mean:6.1f}")
        rows.append(tm_cells)
    return render_table(title, headers, rows)


def render_throughput(title: str,
                      curves: Dict[str, ThroughputCurve]) -> str:
    pairs = [p.pairs for p in next(iter(curves.values())).points]
    headers = ["CONFIG"] + [f"{n} pair{'s' if n > 1 else ''}" for n in pairs]
    rows = []
    for label, curve in curves.items():
        rows.append([label] + [f"{p.tps:6.1f}" for p in curve.points])
    return render_table(title, headers, rows)


def render_table3(rows: List[Table3Row]) -> str:
    table_rows = []
    for row in rows:
        ours = f"{row.static_ms:6.1f} / {row.measured.mean:6.1f}"
        paper = ("-" if row.paper_static is None else
                 f"{row.paper_static:6.1f} / {row.paper_measured:6.1f}")
        table_rows.append((row.label, ours, paper))
    return render_table(
        "Table 3  Latency: static analysis vs measured (ms)",
        ["CASE", "OURS static/measured", "PAPER static/measured"],
        table_rows)


def render_multicast(result: MulticastComparison) -> str:
    rows = [
        ("unicast", f"{result.unicast.mean:6.1f}",
         f"{result.unicast.stdev:6.1f}"),
        ("multicast", f"{result.multicast.mean:6.1f}",
         f"{result.multicast.stdev:6.1f}"),
        ("stddev reduction", "",
         f"{result.variance_reduction * 100:5.1f} %"),
    ]
    return render_table(
        "S4.2  Multicast vs serial unicast (3-subordinate commit)",
        ["MODE", "MEAN ms", "STDDEV ms"], rows)


def render_static_path(path) -> str:
    return "\n".join(path.rows())


# ------------------------------------------------------ open-loop runs


_ATTR_LABELS = {
    "ipc": "local IPC",
    "rpc": "Camelot RPC (NetMsgServer)",
    "log_force": "log force",
    "datagram": "inter-TranMan datagram",
    "cpu": "CPU service",
    "lock": "lock acquisition",
    "lock_wait": "lock wait",
}


def render_open_loop(result) -> str:
    """One open-loop run: throughput + latency sketch + attribution.

    The attribution block is Table-3-style but count-derived: exact
    per-transaction primitive counts from the streaming recorder, with
    an estimated ms column at the configured unit cost (blank where no
    single unit cost exists).
    """
    head = render_table(
        f"Open-loop run: {result.sites} sites, "
        f"{result.offered_tps:.0f} tps offered",
        ["METRIC", "VALUE"],
        [("transactions", f"{result.txns:,}"),
         ("committed / aborted / unfinished",
          f"{result.committed:,} / {result.aborted:,} / "
          f"{result.unfinished:,}"),
         ("measured tps", f"{result.measured_tps:8.1f}"),
         ("latency mean ms", f"{result.mean_ms:8.1f}"),
         ("latency p50 / p95 / p99 ms",
          f"{result.p50_ms:.1f} / {result.p95_ms:.1f} / "
          f"{result.p99_ms:.1f}"),
         ("latency max ms", f"{result.max_ms:8.1f}"),
         ("peak in-flight", str(result.peak_in_flight))])
    attr = render_table(
        "attribution (per committed transaction, from counts)",
        ["PRIMITIVE CLASS", "COUNT/txn", "EST ms/txn"],
        [(_ATTR_LABELS.get(row.cls, row.cls), f"{row.per_txn:8.2f}",
          f"{row.est_ms:8.2f}" if row.est_ms else "    -")
         for row in result.attribution])
    return head + "\n\n" + attr


def render_scale_curve(results) -> str:
    """Open-loop scale curve: one row per deployment size."""
    rows = []
    for r in results:
        rows.append((str(r.sites), f"{r.offered_tps:8.1f}",
                     f"{r.measured_tps:8.1f}",
                     f"{100.0 * r.commit_fraction:5.1f} %",
                     f"{r.p50_ms:7.1f}", f"{r.p95_ms:7.1f}",
                     f"{r.p99_ms:7.1f}", str(r.peak_in_flight)))
    return render_table(
        "Scale curve: open-loop throughput vs deployment size",
        ["SITES", "OFFERED tps", "MEASURED tps", "COMMIT",
         "p50 ms", "p95 ms", "p99 ms", "PEAK IN-FLIGHT"], rows)


# -------------------------------------------- harness speedup reporting


def render_speedups(timings: Dict[str, tuple]) -> str:
    """Per-figure parallel speedup: ``{figure: (serial_s, parallel_s)}``.

    Printed by the harness bench so every BENCH_harness.json update
    shows where the pool pays off figure by figure, not just in
    aggregate.
    """
    rows = []
    for name, (serial_s, parallel_s) in sorted(timings.items()):
        ratio = serial_s / parallel_s if parallel_s > 0 else 0.0
        rows.append((name, f"{serial_s:7.2f}", f"{parallel_s:7.2f}",
                     f"{ratio:5.2f}x"))
    return render_table(
        "Figure regeneration: serial vs parallel wall time",
        ["FIGURE", "SERIAL s", "PARALLEL s", "SPEEDUP"], rows)
