"""Parallel experiment runner: fan independent cells across processes.

Every measurement in the figure/ablation suite is deterministic given
``(parameters, seed)`` and shares no state with any other measurement —
each one builds a fresh seeded :class:`~repro.system.CamelotSystem`.
Regeneration is therefore embarrassingly parallel: a figure is a list of
*cells* (one ``measure_latency``/``measure_throughput``/ablation call
each) that can run in any order, in any process, and still produce
byte-identical results.

The unit of work is a :class:`Cell`: a picklable, hashable description
of one registry function call.  :func:`run_cells` executes a list of
cells, optionally across worker processes, and always returns outcomes
**in input order** (keyed by cell index, not completion order), so
parallel and serial runs are indistinguishable to callers.  When
``jobs <= 1``, when there is at most one cell to run, or when the
platform cannot spawn worker processes, execution falls back to the
in-process loop.

Three things keep the pool path worth its overhead (the first version
of this module lost most of its speedup to them):

* **Warm, persistent workers.**  The pool is module-level and reused
  across :func:`run_cells` calls, and every worker runs
  :func:`_warm_worker` at startup: it imports :mod:`repro.system`
  (which pulls the whole simulation stack) and pre-builds every stock
  cost profile, so the first real cell pays simulation time only.
  Spawning a fresh pool per figure made each worker re-pay ~the full
  package import before its first result.
* **Chunked submission.**  Cells ship to workers in contiguous chunks
  (a few chunks per worker, preserving order) instead of one future per
  cell, amortising the submit/result round-trip over several
  measurements.
* **Cheap specs on the wire.**  Workers receive plain ``(fn, kwargs)``
  tuples, not :class:`Cell` dataclass instances, so pickling a batch is
  a flat tuple dump and the worker dispatches straight off
  :data:`REGISTRY`.

A :class:`~repro.bench.cache.ResultCache` can be threaded through to
skip cells whose inputs (spec + seed + cost-model fingerprint) have not
changed since a previous run.
"""

from __future__ import annotations

import atexit
import os
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.bench import ablations
from repro.bench.experiment import measure_latency, measure_throughput

# Functions a Cell may name.  Workers resolve the name in their own
# interpreter, so only module-level callables belong here.
REGISTRY: Dict[str, Callable[..., Any]] = {
    "measure_latency": measure_latency,
    "measure_throughput": measure_throughput,
    "read_only_ablation": ablations.read_only_ablation,
    "quorum_policy_ablation": ablations.quorum_policy_ablation,
    "group_commit_window_ablation": ablations.group_commit_window_ablation,
    "protocol_overhead_ablation": ablations.protocol_overhead_ablation,
}


@dataclass(frozen=True)
class Cell:
    """One experiment cell: a registry function plus keyword arguments.

    ``kwargs`` is a sorted tuple of ``(name, value)`` pairs so cells are
    hashable (cache keys) and picklable (pool submission) while staying
    order-insensitive in construction.
    """

    fn: str
    kwargs: Tuple[Tuple[str, Any], ...]

    @staticmethod
    def make(fn: str, **kwargs: Any) -> "Cell":
        if fn not in REGISTRY:
            raise KeyError(f"unknown cell function {fn!r}; "
                           f"registry has {sorted(REGISTRY)}")
        return Cell(fn=fn, kwargs=tuple(sorted(kwargs.items())))

    def call(self) -> Any:
        return REGISTRY[self.fn](**dict(self.kwargs))

    def describe(self) -> str:
        args = ", ".join(f"{k}={v!r}" for k, v in self.kwargs)
        return f"{self.fn}({args})"


def latency_cell(**kwargs: Any) -> Cell:
    """A :func:`~repro.bench.experiment.measure_latency` cell."""
    return Cell.make("measure_latency", **kwargs)


def throughput_cell(**kwargs: Any) -> Cell:
    """A :func:`~repro.bench.experiment.measure_throughput` cell."""
    return Cell.make("measure_throughput", **kwargs)


@dataclass
class CellOutcome:
    """One executed (or cache-restored) cell, with provenance."""

    cell: Cell
    value: Any
    elapsed_s: float          # host seconds spent computing (0 if cached)
    cached: bool = False
    worker_pid: int = 0


def auto_jobs() -> int:
    """Worker count heuristic for ``jobs="auto"``.

    One worker per core, capped at 8: the figure suites submit at most a
    few dozen cells, so beyond eight workers the per-worker chunk drops
    under two cells and pool overhead eats the gain.  Single-core hosts
    get 1, which :func:`run_cells` treats as the in-process path — the
    pool cannot beat serial there.
    """
    return max(1, min(os.cpu_count() or 1, 8))


def _resolve_jobs(jobs: Any) -> int:
    if jobs is None or jobs == "auto":
        return auto_jobs()
    return int(jobs)


# ------------------------------------------------- worker-side helpers

_Spec = Tuple[str, Tuple[Tuple[str, Any], ...]]


def _warm_worker() -> None:
    """Pool initializer: pay the import/setup cost once per worker.

    Importing :mod:`repro.system` pulls the entire simulation stack
    (kernel, IPC fabric, LAN, WAL, protocols); pre-building the stock
    cost profiles touches the config layer the first cell would
    otherwise fault in.  After this runs, a worker's first cell costs
    the same as its hundredth.
    """
    import repro.system  # noqa: F401  (import is the warm-up)
    from repro.config import PROFILES

    for factory in PROFILES.values():
        factory()


def _execute(cell: Cell) -> Tuple[Any, float, int]:
    """Run one cell in-process, timing it."""
    start = time.perf_counter()
    value = cell.call()
    return value, time.perf_counter() - start, os.getpid()


def _execute_chunk(specs: Sequence[_Spec]) -> List[Tuple[Any, float, int]]:
    """Worker entry point: run a contiguous chunk of cell specs.

    Takes plain ``(fn, kwargs)`` tuples (cheap to pickle) and returns
    ``(value, elapsed_s, pid)`` per spec, in order.
    """
    pid = os.getpid()
    out = []
    for fn, kwargs in specs:
        start = time.perf_counter()
        value = REGISTRY[fn](**dict(kwargs))
        out.append((value, time.perf_counter() - start, pid))
    return out


# -------------------------------------------- persistent process pool

_POOL = None
_POOL_JOBS = 0

# Chunks per worker: >1 so a slow cell doesn't serialise its whole
# chunk-mates behind it, small enough to amortise submission overhead.
_CHUNKS_PER_WORKER = 4


def _discard_pool() -> None:
    """Tear down the persistent pool (broken pool or resize)."""
    global _POOL, _POOL_JOBS
    pool, _POOL, _POOL_JOBS = _POOL, None, 0
    if pool is not None:
        pool.shutdown(wait=False, cancel_futures=True)


atexit.register(_discard_pool)


def _get_pool(jobs: int):
    """The shared warm pool, recreated only when ``jobs`` changes."""
    global _POOL, _POOL_JOBS
    if _POOL is not None and _POOL_JOBS != jobs:
        _discard_pool()
    if _POOL is None:
        from concurrent.futures import ProcessPoolExecutor

        _POOL = ProcessPoolExecutor(max_workers=jobs,
                                    initializer=_warm_worker)
        _POOL_JOBS = jobs
    return _POOL


def _worker_touch(delay_s: float) -> int:
    time.sleep(delay_s)
    return os.getpid()


def warm_pool(jobs: Any = None) -> int:
    """Spin up (and warm) all workers before timing anything.

    ``ProcessPoolExecutor`` spawns workers lazily; a speedup measurement
    that includes worker startup in the timed region undercounts the
    steady-state win.  Submitting one short blocking task per worker
    forces the full complement to spawn and run :func:`_warm_worker`.
    Returns the number of distinct worker processes observed.
    """
    jobs = _resolve_jobs(jobs)
    if jobs <= 1:
        return 0
    pool = _get_pool(jobs)
    futures = [pool.submit(_worker_touch, 0.05) for _ in range(jobs)]
    return len({f.result() for f in futures})


def _run_pool(cells: Sequence[Cell], jobs: int) -> List[CellOutcome]:
    pool = _get_pool(jobs)
    specs: List[_Spec] = [(c.fn, c.kwargs) for c in cells]
    chunk = max(1, -(-len(specs) // (jobs * _CHUNKS_PER_WORKER)))
    chunks = [specs[i:i + chunk] for i in range(0, len(specs), chunk)]
    try:
        futures = [pool.submit(_execute_chunk, ch) for ch in chunks]
        # Chunks are contiguous and futures are drained in submission
        # order, so the flattened list is in input order regardless of
        # which worker finished first.
        results = [triple for f in futures for triple in f.result()]
    except Exception:
        # A broken pool (killed worker, unpicklable payload) stays
        # broken; drop it so the next call starts clean, and let the
        # caller fall back to serial.
        _discard_pool()
        raise
    return [CellOutcome(cell=cell, value=value, elapsed_s=elapsed,
                        worker_pid=pid)
            for cell, (value, elapsed, pid) in zip(cells, results)]


def _run_serial(cells: Sequence[Cell]) -> List[CellOutcome]:
    out = []
    for cell in cells:
        value, elapsed, pid = _execute(cell)
        out.append(CellOutcome(cell=cell, value=value, elapsed_s=elapsed,
                               worker_pid=pid))
    return out


def run_cells(cells: Sequence[Cell], jobs: Any = 1,
              cache: Optional[Any] = None) -> List[CellOutcome]:
    """Execute ``cells`` and return outcomes in the same order.

    ``jobs > 1`` fans the cells across the persistent warm worker pool;
    results are identical to a serial run because each cell seeds its
    own system.  ``jobs=None`` or ``"auto"`` picks :func:`auto_jobs`.
    ``cache`` (a :class:`~repro.bench.cache.ResultCache`) short-circuits
    cells already computed with the same spec, seed, and cost model.
    Pool failures (no fork/spawn support, unpicklable results, dead
    workers) fall back to in-process execution rather than erroring.
    """
    jobs = _resolve_jobs(jobs)
    cells = list(cells)
    outcomes: List[Optional[CellOutcome]] = [None] * len(cells)

    misses: List[int] = []
    if cache is not None:
        for i, cell in enumerate(cells):
            hit, value = cache.get(cell)
            if hit:
                outcomes[i] = CellOutcome(cell=cell, value=value,
                                          elapsed_s=0.0, cached=True)
            else:
                misses.append(i)
    else:
        misses = list(range(len(cells)))

    todo = [cells[i] for i in misses]
    if todo:
        if jobs > 1 and len(todo) > 1:
            try:
                fresh = _run_pool(todo, jobs)
            except Exception:
                # Graceful fallback: platforms without usable process
                # pools still regenerate correctly, just serially.
                fresh = _run_serial(todo)
        else:
            fresh = _run_serial(todo)
        for i, outcome in zip(misses, fresh):
            outcomes[i] = outcome
            if cache is not None:
                cache.put(outcome.cell, outcome.value)

    return outcomes  # type: ignore[return-value]


def cell_values(outcomes: Sequence[CellOutcome]) -> List[Any]:
    """The payloads of ``outcomes`` (convenience for figure assembly)."""
    return [o.value for o in outcomes]
