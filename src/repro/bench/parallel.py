"""Parallel experiment runner: fan independent cells across processes.

Every measurement in the figure/ablation suite is deterministic given
``(parameters, seed)`` and shares no state with any other measurement —
each one builds a fresh seeded :class:`~repro.system.CamelotSystem`.
Regeneration is therefore embarrassingly parallel: a figure is a list of
*cells* (one ``measure_latency``/``measure_throughput``/ablation call
each) that can run in any order, in any process, and still produce
byte-identical results.

The unit of work is a :class:`Cell`: a picklable, hashable description
of one registry function call.  :func:`run_cells` executes a list of
cells, optionally across a :class:`~concurrent.futures.ProcessPoolExecutor`,
and always returns outcomes **in input order** (keyed by cell index, not
completion order), so parallel and serial runs are indistinguishable to
callers.  When ``jobs <= 1``, when there is at most one cell to run, or
when the platform cannot spawn worker processes, execution falls back to
the in-process loop.

A :class:`~repro.bench.cache.ResultCache` can be threaded through to
skip cells whose inputs (spec + seed + cost-model fingerprint) have not
changed since a previous run.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.bench import ablations
from repro.bench.experiment import measure_latency, measure_throughput

# Functions a Cell may name.  Workers resolve the name in their own
# interpreter, so only module-level callables belong here.
REGISTRY: Dict[str, Callable[..., Any]] = {
    "measure_latency": measure_latency,
    "measure_throughput": measure_throughput,
    "read_only_ablation": ablations.read_only_ablation,
    "quorum_policy_ablation": ablations.quorum_policy_ablation,
    "group_commit_window_ablation": ablations.group_commit_window_ablation,
    "protocol_overhead_ablation": ablations.protocol_overhead_ablation,
}


@dataclass(frozen=True)
class Cell:
    """One experiment cell: a registry function plus keyword arguments.

    ``kwargs`` is a sorted tuple of ``(name, value)`` pairs so cells are
    hashable (cache keys) and picklable (pool submission) while staying
    order-insensitive in construction.
    """

    fn: str
    kwargs: Tuple[Tuple[str, Any], ...]

    @staticmethod
    def make(fn: str, **kwargs: Any) -> "Cell":
        if fn not in REGISTRY:
            raise KeyError(f"unknown cell function {fn!r}; "
                           f"registry has {sorted(REGISTRY)}")
        return Cell(fn=fn, kwargs=tuple(sorted(kwargs.items())))

    def call(self) -> Any:
        return REGISTRY[self.fn](**dict(self.kwargs))

    def describe(self) -> str:
        args = ", ".join(f"{k}={v!r}" for k, v in self.kwargs)
        return f"{self.fn}({args})"


def latency_cell(**kwargs: Any) -> Cell:
    """A :func:`~repro.bench.experiment.measure_latency` cell."""
    return Cell.make("measure_latency", **kwargs)


def throughput_cell(**kwargs: Any) -> Cell:
    """A :func:`~repro.bench.experiment.measure_throughput` cell."""
    return Cell.make("measure_throughput", **kwargs)


@dataclass
class CellOutcome:
    """One executed (or cache-restored) cell, with provenance."""

    cell: Cell
    value: Any
    elapsed_s: float          # host seconds spent computing (0 if cached)
    cached: bool = False
    worker_pid: int = 0


def _execute(cell: Cell) -> Tuple[Any, float, int]:
    """Worker entry point: run one cell, timing it (module-level so the
    process pool can pickle it)."""
    start = time.perf_counter()
    value = cell.call()
    return value, time.perf_counter() - start, os.getpid()


def _run_serial(cells: Sequence[Cell]) -> List[CellOutcome]:
    out = []
    for cell in cells:
        value, elapsed, pid = _execute(cell)
        out.append(CellOutcome(cell=cell, value=value, elapsed_s=elapsed,
                               worker_pid=pid))
    return out


def _run_pool(cells: Sequence[Cell], jobs: int) -> List[CellOutcome]:
    from concurrent.futures import ProcessPoolExecutor

    outcomes: List[Optional[CellOutcome]] = [None] * len(cells)
    with ProcessPoolExecutor(max_workers=min(jobs, len(cells))) as pool:
        futures = {pool.submit(_execute, cell): i
                   for i, cell in enumerate(cells)}
        # Results land by input index regardless of completion order, so
        # the returned list is deterministic.
        for future, i in futures.items():
            value, elapsed, pid = future.result()
            outcomes[i] = CellOutcome(cell=cells[i], value=value,
                                      elapsed_s=elapsed, worker_pid=pid)
    return outcomes  # type: ignore[return-value]


def run_cells(cells: Sequence[Cell], jobs: int = 1,
              cache: Optional[Any] = None) -> List[CellOutcome]:
    """Execute ``cells`` and return outcomes in the same order.

    ``jobs > 1`` fans the cells across worker processes; results are
    identical to a serial run because each cell seeds its own system.
    ``cache`` (a :class:`~repro.bench.cache.ResultCache`) short-circuits
    cells already computed with the same spec, seed, and cost model.
    Pool failures (no fork/spawn support, unpicklable results, dead
    workers) fall back to in-process execution rather than erroring.
    """
    cells = list(cells)
    outcomes: List[Optional[CellOutcome]] = [None] * len(cells)

    misses: List[int] = []
    if cache is not None:
        for i, cell in enumerate(cells):
            hit, value = cache.get(cell)
            if hit:
                outcomes[i] = CellOutcome(cell=cell, value=value,
                                          elapsed_s=0.0, cached=True)
            else:
                misses.append(i)
    else:
        misses = list(range(len(cells)))

    todo = [cells[i] for i in misses]
    if todo:
        if jobs > 1 and len(todo) > 1:
            try:
                fresh = _run_pool(todo, jobs)
            except Exception:
                # Graceful fallback: platforms without usable process
                # pools still regenerate correctly, just serially.
                fresh = _run_serial(todo)
        else:
            fresh = _run_serial(todo)
        for i, outcome in zip(misses, fresh):
            outcomes[i] = outcome
            if cache is not None:
                cache.put(outcome.cell, outcome.value)

    return outcomes  # type: ignore[return-value]


def cell_values(outcomes: Sequence[CellOutcome]) -> List[Any]:
    """The payloads of ``outcomes`` (convenience for figure assembly)."""
    return [o.value for o in outcomes]
