"""Open-loop workloads: past the closed-loop ceiling, at scale.

The paper's throughput experiments (§4.4) are closed-loop: N
application threads each wait for their own commit before starting the
next transaction, so offered load can never exceed N in-flight
transactions and latency feedback throttles the generator.  An
*open-loop* generator arrives transactions on a Poisson process at a
configured rate regardless of completions — the standard way to probe
saturation and queueing behaviour, and the regime a real Camelot
deployment (Avalon servers, many independent clients) actually sees.

Three pieces make million-transaction runs practical:

- **Streaming applications** (``keep_history=False``): per-transaction
  records are dropped at completion, so client-side state is
  O(in-flight), not O(total).
- **Fixed-size latency sketch** (:class:`LatencySketch`): latencies land
  in geometric buckets (quarter-powers-of-two, ~9% relative error), so
  percentiles over a million transactions cost a 160-slot array.
- **Count-only span recording**: a ``SpanRecorder(keep=False)`` tallies
  per-primitive counts without retaining span objects, which still
  supports a Table-3-style per-transaction attribution — counts are
  exact, and each primitive class has a configured unit cost.

Access skew follows a Zipf law over both coordinator sites and objects
(:class:`ZipfSampler`), so a few hot sites/objects carry most of the
load — the contention profile §4.2 dissects, at dozens-to-hundreds of
sites.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field
from math import log2
from typing import Any, Dict, Generator, List, Optional

from repro.config import SystemConfig, rt_pc_profile
from repro.obs.kinds import (
    CPU,
    DATAGRAM,
    IPC,
    LOCK,
    LOCK_WAIT,
    LOG_FORCE,
    PRIMITIVE_CLASSES,
    RPC,
    classify,
)
from repro.obs.spans import SpanRecorder
from repro.servers.application import TransactionAborted
from repro.sim.process import Sleep
from repro.system import CamelotSystem


class ZipfSampler:
    """Zipf(s)-distributed ranks ``0..n-1`` by inverse-CDF lookup.

    Rank ``k`` has weight ``1/(k+1)**s``.  Cumulative weights are
    precomputed once; each sample is one uniform draw plus a bisect —
    deterministic given the caller's ``random.Random``.
    """

    def __init__(self, n: int, s: float = 1.1):
        if n < 1:
            raise ValueError("ZipfSampler needs n >= 1")
        self.n = n
        self.s = s
        self._cum: List[float] = []
        total = 0.0
        for k in range(n):
            total += (k + 1) ** -s
            self._cum.append(total)
        self.total = total

    def sample(self, rng) -> int:
        return bisect_left(self._cum, rng.random() * self.total)

    def pmf(self, k: int) -> float:
        """Analytic probability of rank ``k`` (for distribution tests)."""
        return (k + 1) ** -self.s / self.total


class LatencySketch:
    """Fixed-size geometric histogram of latencies (milliseconds).

    Buckets are quarter-powers-of-two starting at ``LO`` ms: bucket
    ``i`` covers ``[LO * 2**(i/4), LO * 2**((i+1)/4))``, so any
    reported percentile is within ~9% of the true value.  160 buckets
    span 0.125 ms to ~1.4e11 ms; memory is constant no matter how many
    samples land.
    """

    LO = 0.125
    BUCKETS = 160

    __slots__ = ("counts", "count", "total", "min", "max")

    def __init__(self):
        self.counts = [0] * self.BUCKETS
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = 0.0

    def add(self, ms: float) -> None:
        self.count += 1
        self.total += ms
        if ms < self.min:
            self.min = ms
        if ms > self.max:
            self.max = ms
        if ms <= self.LO:
            i = 0
        else:
            i = min(self.BUCKETS - 1, int(log2(ms / self.LO) * 4.0) + 1)
        self.counts[i] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def _bucket_value(self, i: int) -> float:
        if i == 0:
            return self.LO
        # Geometric midpoint of the bucket's edges.
        return self.LO * 2.0 ** ((i - 0.5) / 4.0)

    def quantile(self, q: float) -> float:
        """Approximate q-quantile (0 < q <= 1) from the histogram."""
        if not self.count:
            return 0.0
        target = q * self.count
        seen = 0
        for i, n in enumerate(self.counts):
            seen += n
            if seen >= target:
                return min(max(self._bucket_value(i), self.min), self.max)
        return self.max


@dataclass
class AttributionRow:
    """One primitive class: exact per-txn count, estimated ms at the
    configured unit cost (0.0 where no single unit cost exists)."""

    cls: str
    per_txn: float
    est_ms: float


@dataclass
class OpenLoopResult:
    """One open-loop run: throughput, latency sketch, attribution."""

    sites: int
    offered_tps: float
    txns: int
    committed: int
    aborted: int
    unfinished: int
    measured_tps: float
    mean_ms: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    max_ms: float
    peak_in_flight: int
    attribution: List[AttributionRow] = field(default_factory=list)
    counters: Dict[str, int] = field(default_factory=dict)

    @property
    def commit_fraction(self) -> float:
        return self.committed / self.txns if self.txns else 0.0


# Unit costs for the estimated-ms column: the primitive classes whose
# events have one configured cost each.  CPU service and lock waits
# have no single unit (component- and contention-dependent), so their
# rows report exact counts with est 0.
_UNIT_COSTS = {
    IPC: lambda c: c.local_ipc,
    RPC: lambda c: c.netmsg_rpc,
    DATAGRAM: lambda c: c.datagram,
    LOG_FORCE: lambda c: c.log_force,
    LOCK: lambda c: c.get_lock,
}


def _attribute_counts(counters: Dict[str, int], cost,
                      committed: int) -> List[AttributionRow]:
    """Table-3-style breakdown from exact per-kind counters."""
    per_class: Dict[str, float] = {}
    for kind, n in counters.items():
        cls = classify(kind)
        if cls in PRIMITIVE_CLASSES:
            per_class[cls] = per_class.get(cls, 0.0) + n
    rows: List[AttributionRow] = []
    denom = committed or 1
    for cls in PRIMITIVE_CLASSES:
        if cls not in per_class:
            continue
        per_txn = per_class[cls] / denom
        unit = _UNIT_COSTS.get(cls)
        rows.append(AttributionRow(
            cls=cls, per_txn=per_txn,
            est_ms=per_txn * unit(cost) if unit is not None else 0.0))
    return rows


def run_open_loop(sites: int = 24, rate_tps: float = 300.0,
                  txns: int = 5_000, seed: int = 0, op: str = "write",
                  zipf_s: float = 1.1, remote_fraction: float = 0.15,
                  objects: int = 64, drain_ms: float = 120_000.0
                  ) -> OpenLoopResult:
    """Drive ``txns`` open-loop transactions through a ``sites``-site
    deployment at ``rate_tps`` Poisson arrivals per second.

    Transactions originate uniformly across sites (clients are
    everywhere), but *data access* is Zipf(``zipf_s``)-skewed: the
    object touched, and — for the ``remote_fraction`` of transactions
    that run a 2-site distributed commit — the remote site, so a few
    hot sites and objects carry most of the shared load.  Memory is
    bounded: the system runs streaming applications, a count-only span
    recorder, and a fixed-size latency sketch, so ``txns`` can be
    millions.
    """
    site_names = [f"s{i}" for i in range(sites)]
    # Periodic checkpoints let each site's in-memory WAL truncate behind
    # the oldest active transaction — without them log growth is O(txns)
    # and a million-transaction run cannot stay memory-bounded.
    cost = rt_pc_profile().with_overrides(checkpoint_interval=15_000.0)
    # Generous server pools: a lock waiter parks a worker for up to
    # lock_wait_timeout, and with the default 4 threads a Zipf-hot
    # site's pool fills with waiters while the lock-releasing
    # drop_locks/prepare messages queue behind them (priority
    # inversion -> five-second convoys -> open-loop collapse).
    config = SystemConfig(cost=cost,
                          sites={name: 1 for name in site_names},
                          seed=seed, keep_trace_events=False,
                          server_threads=16)
    system = CamelotSystem(config)
    recorder = SpanRecorder(keep=False)
    system.tracer.attach_obs(recorder)
    kernel = system.kernel
    apps = [system.application(name, name="ol", keep_history=False)
            for name in site_names]

    rng = system.rng.stream("openloop")
    site_zipf = ZipfSampler(sites, zipf_s)
    obj_zipf = ZipfSampler(objects, zipf_s)
    rate_per_ms = rate_tps / 1000.0

    sketch = LatencySketch()
    state = {"in_flight": 0, "peak": 0, "done": 0, "last_done_at": 0.0}

    def txn_body(coord: int, remote: int, obj: str
                 ) -> Generator[Any, Any, None]:
        began = kernel.now
        state["in_flight"] += 1
        if state["in_flight"] > state["peak"]:
            state["peak"] = state["in_flight"]
        services = [f"server0@{site_names[coord]}"]
        if remote >= 0:
            services.append(f"server0@{site_names[remote]}")
            # Canonical lock order: every transaction visits sites in
            # sorted order, so two distributed transactions can wait on
            # each other but never cycle — open-loop backlogs must come
            # from queueing, not from 5-second deadlock timeouts.
            services.sort()
        try:
            yield from apps[coord].minimal_transaction(services, op=op,
                                                       obj=obj)
            sketch.add(kernel.now - began)
        except TransactionAborted:
            pass
        state["in_flight"] -= 1
        state["done"] += 1
        state["last_done_at"] = kernel.now

    def driver() -> Generator[Any, Any, None]:
        for _ in range(txns):
            yield Sleep(rng.expovariate(rate_per_ms))
            coord = rng.randrange(sites)
            remote = -1
            if sites > 1 and rng.random() < remote_fraction:
                remote = site_zipf.sample(rng)
                if remote == coord:
                    remote = (coord + 1) % sites
            txn_obj = f"o{obj_zipf.sample(rng)}"
            system.spawn(txn_body(coord, remote, txn_obj), "ol-txn")

    system.spawn(driver(), "ol-driver")
    started_at = kernel.now
    # Arrivals take ~txns/rate seconds of sim time; run in bounded
    # chunks until every spawned transaction resolves (or the drain
    # budget expires — stragglers are reported, never spun on forever).
    deadline = started_at + txns / rate_per_ms + drain_ms
    while state["done"] < txns and kernel.now < deadline:
        system.run_for(min(5_000.0, deadline - kernel.now))

    committed = sum(app.committed for app in apps)
    aborted = sum(app.aborted for app in apps)
    span_ms = state["last_done_at"] - started_at
    return OpenLoopResult(
        sites=sites, offered_tps=rate_tps, txns=txns,
        committed=committed, aborted=aborted,
        unfinished=txns - state["done"],
        measured_tps=committed / (span_ms / 1000.0) if span_ms > 0 else 0.0,
        mean_ms=sketch.mean, p50_ms=sketch.quantile(0.50),
        p95_ms=sketch.quantile(0.95), p99_ms=sketch.quantile(0.99),
        max_ms=sketch.max if sketch.count else 0.0,
        peak_in_flight=state["peak"],
        attribution=_attribute_counts(recorder.counters, config.cost,
                                      committed),
        counters=dict(recorder.counters))


def scale_curve(site_counts=(8, 24, 48, 96), per_site_tps: float = 6.0,
                txns: int = 3_000, seed: int = 0,
                **kwargs: Any) -> List[OpenLoopResult]:
    """Open-loop throughput as the deployment grows: one run per site
    count, offered load scaling with the site count."""
    return [run_open_loop(sites=n, rate_tps=per_site_tps * n, txns=txns,
                          seed=seed, **kwargs)
            for n in site_counts]
