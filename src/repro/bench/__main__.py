"""Open-loop workload CLI: scale curves and single runs.

Usage::

    python -m repro.bench --scale-curve                 # default sweep
    python -m repro.bench --scale-curve --sites 8,32,96 --txns 4000
    python -m repro.bench --open-loop --sites 48 --rate 300 --txns 100000
    python -m repro.bench --open-loop --txns 1000000    # bounded memory

A scale curve runs the open-loop workload once per deployment size with
offered load proportional to the site count, and prints measured
throughput and tail latency per point plus the count-derived
attribution table for the largest deployment.  Peak RSS is reported for
the whole process so a million-transaction run can demonstrate bounded
memory.

The figure/table experiments live under ``python -m repro`` (see
``python -m repro list``); this entry point covers the workloads that
have no closed-form figure — open-ended, rate-driven runs.
"""

from __future__ import annotations

import argparse
import resource
import sys
import time

from repro.bench.openloop import run_open_loop, scale_curve
from repro.bench.report import render_open_loop, render_scale_curve


def peak_rss_mb() -> float:
    """Peak resident set size of this process, in MiB (Linux ru_maxrss
    is KiB; macOS reports bytes — normalise by magnitude)."""
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if rss > 1 << 30:          # clearly bytes
        return rss / (1 << 20)
    return rss / 1024.0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Open-loop transaction workloads at scale.")
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument("--scale-curve", action="store_true",
                      help="sweep deployment sizes, offered load scaling "
                           "with site count")
    mode.add_argument("--open-loop", action="store_true",
                      help="one open-loop run at a fixed size and rate")
    parser.add_argument("--sites", default=None,
                        help="site count (open-loop) or comma list "
                             "(scale curve; default 8,24,48,96)")
    parser.add_argument("--rate", type=float, default=300.0,
                        help="offered load in txns/sec (open-loop; "
                             "default 300)")
    parser.add_argument("--per-site-tps", type=float, default=6.0,
                        help="offered load per site (scale curve; "
                             "default 6)")
    parser.add_argument("--txns", type=int, default=5_000,
                        help="transactions per run (default 5000; "
                             "memory stays bounded into the millions)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--op", choices=["write", "read"], default="write")
    parser.add_argument("--zipf", type=float, default=1.1,
                        help="Zipf skew for object/remote-site access")
    parser.add_argument("--remote-fraction", type=float, default=0.15,
                        help="fraction of transactions that run a 2-site "
                             "distributed commit (default 0.15)")
    args = parser.parse_args(argv)

    start = time.perf_counter()
    if args.scale_curve:
        counts = tuple(int(s) for s in (args.sites or "8,24,48,96")
                       .split(","))
        results = scale_curve(site_counts=counts,
                              per_site_tps=args.per_site_tps,
                              txns=args.txns, seed=args.seed, op=args.op,
                              zipf_s=args.zipf,
                              remote_fraction=args.remote_fraction)
        print(render_scale_curve(results))
        print()
        print(render_open_loop(results[-1]))
        ok = all(r.unfinished == 0 for r in results)
    else:
        sites = int(args.sites) if args.sites else 24
        result = run_open_loop(sites=sites, rate_tps=args.rate,
                               txns=args.txns, seed=args.seed, op=args.op,
                               zipf_s=args.zipf,
                               remote_fraction=args.remote_fraction)
        print(render_open_loop(result))
        ok = result.unfinished == 0
    elapsed = time.perf_counter() - start
    print()
    print(f"host wall: {elapsed:.1f}s; peak RSS: {peak_rss_mb():.1f} MiB")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
