"""Experiment harness: regenerates every table and figure in the paper.

Each experiment function builds a fresh simulated deployment from a
seeded :class:`~repro.config.SystemConfig`, drives the workload the
paper describes, and returns structured results that the
``benchmarks/`` suite asserts shape-properties on and renders in the
paper's own format (see :mod:`repro.bench.report`).

Index (see DESIGN.md §4 for the full mapping):

===========================  ==========================================
paper artifact               function
===========================  ==========================================
Table 1                      :func:`repro.bench.figures.table1_report`
§4.1 RPC breakdown           :func:`repro.bench.figures.rpc_breakdown`
Table 2                      :func:`repro.bench.figures.table2_measured`
Figure 2                     :func:`repro.bench.figures.figure2`
Table 3                      :func:`repro.bench.figures.table3`
Figure 3                     :func:`repro.bench.figures.figure3`
Figure 4                     :func:`repro.bench.figures.figure4`
Figure 5                     :func:`repro.bench.figures.figure5`
§4.2 multicast variance      :func:`repro.bench.figures.multicast_variance`
§4.2 lock contention         :func:`repro.bench.figures.lock_contention`
===========================  ==========================================
"""

from repro.bench.experiment import (
    LatencyResult,
    ThroughputResult,
    measure_latency,
    measure_throughput,
)

__all__ = [
    "LatencyResult",
    "ThroughputResult",
    "measure_latency",
    "measure_throughput",
]
