"""Core experiment runners: latency and throughput measurements.

Both runners build a fresh seeded system per call, so results are
deterministic given (parameters, seed) and experiments never bleed into
each other.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis.stats import Summary, summarize
from repro.config import SystemConfig, rt_pc_profile, vax_mp_profile
from repro.core.outcomes import ProtocolKind, TwoPhaseVariant
from repro.bench.workloads import closed_loop, serial_minimal_txns
from repro.system import CamelotSystem


@dataclass
class LatencyResult:
    """One latency experiment cell (a point in Figure 2 or 3)."""

    label: str
    n_subs: int
    op: str
    protocol: str
    variant: str
    summary: Summary                # full transaction latency
    tm_summary: Summary             # transaction-management-only (derived)
    commit_summary: Summary         # commit-call to return (measured)
    forces_per_txn: float           # disk-manager force requests
    datagrams_per_txn: float        # TranMan protocol datagrams

    def paper_row(self) -> str:
        return (f"{self.label:34s} {self.summary.mean:7.1f} "
                f"({self.summary.stdev:5.1f})   TM {self.tm_summary.mean:7.1f}"
                f"   LF/txn {self.forces_per_txn:4.1f}"
                f"   DG/txn {self.datagrams_per_txn:4.1f}")


@dataclass
class ThroughputResult:
    """One throughput experiment cell (a point in Figure 4 or 5)."""

    pairs: int
    threads: int
    group_commit: bool
    op: str
    tps: float
    committed: int
    duration_ms: float
    log_writes: int = 0
    mean_batch: float = 0.0


def _operation_cost(cost, n_subs: int) -> float:
    """The paper's per-transaction operation cost to subtract: 3.5 ms
    local plus 29 ms per remote operation."""
    local = 2 * cost.local_ipc + cost.get_lock
    remote = (cost.netmsg_rpc + 2 * cost.local_ipc
              + 2 * cost.comman_cpu_per_call + cost.get_lock)
    return local + n_subs * remote


def measure_latency(n_subs: int, op: str = "write",
                    protocol: ProtocolKind = ProtocolKind.TWO_PHASE,
                    variant: TwoPhaseVariant = TwoPhaseVariant.OPTIMIZED,
                    trials: int = 30, warmup: int = 3, seed: int = 0,
                    use_multicast: bool = False,
                    label: Optional[str] = None) -> LatencyResult:
    """The paper's basic experiment: a minimal transaction on a
    coordinator plus ``n_subs`` subordinate sites, repeated serially.

    Returns both the raw latency and the derived transaction-management
    time (latency minus operation costs, the paper's derivation for the
    'Tran Mgmt' series of Figures 2-3).
    """
    sites = {f"s{i}": 1 for i in range(n_subs + 1)}
    config = SystemConfig(cost=rt_pc_profile(), sites=sites, seed=seed,
                          use_multicast=use_multicast, group_commit=False,
                          keep_trace_events=False)
    system = CamelotSystem(config)
    app = system.application("s0")
    services = system.default_services()

    total = warmup + trials
    before = system.tracer.snapshot()
    system.run_process(
        serial_minimal_txns(app, services, total, op=op, protocol=protocol,
                            variant=variant),
        timeout_ms=total * 60_000.0, name="latency-workload")
    after = system.tracer.snapshot()
    delta = system.tracer.delta(before, after)

    latencies = app.latencies_ms()[warmup:]
    commit_lats = app.commit_latencies_ms()[warmup:]
    op_cost = _operation_cost(config.cost, n_subs)
    tm_only = [max(0.0, lat - op_cost) for lat in latencies]
    forces = delta.get("diskman.force", 0) / total
    datagrams = (delta.get("tranman.datagram", 0)
                 + delta.get("tranman.multicast", 0)) / total
    return LatencyResult(
        label=label or f"{protocol.value}/{op}/{variant.value}/{n_subs}sub",
        n_subs=n_subs, op=op, protocol=protocol.value, variant=variant.value,
        summary=summarize(latencies), tm_summary=summarize(tm_only),
        commit_summary=summarize(commit_lats),
        forces_per_txn=forces, datagrams_per_txn=datagrams)


def measure_throughput(pairs: int, threads: int, group_commit: bool,
                       op: str = "write", duration_ms: float = 20_000.0,
                       warmup_ms: float = 2_000.0, seed: int = 0
                       ) -> ThroughputResult:
    """The paper's §4.4 experiment: ``pairs`` application/server pairs
    execute minimal local transactions on a multiprocessor site, with
    the TranMan thread count and group commit as parameters.

    Separate pairs (separate servers, separate objects) ensure operation
    processing is never the bottleneck — the load lands on the TranMan,
    the message system, and (for updates) the logger.
    """
    config = SystemConfig(cost=vax_mp_profile(), sites={"vax": pairs},
                          seed=seed, tranman_threads=threads,
                          group_commit=group_commit,
                          keep_trace_events=False)
    system = CamelotSystem(config)
    apps = [system.application("vax", name=f"pair{i}") for i in range(pairs)]

    counters: Dict[int, int] = {}
    done_flags: List[bool] = [False] * pairs

    def pair_body(i: int):
        committed = yield from closed_loop(
            apps[i], [f"server{i}@vax"], until_ms=warmup_ms + duration_ms,
            op=op, obj=f"obj{i}")
        counters[i] = committed
        done_flags[i] = True

    for i in range(pairs):
        system.spawn(pair_body(i), name=f"pair{i}")
    # Run past the deadline far enough for in-flight commits to settle.
    system.run_for(warmup_ms + duration_ms + 5_000.0)

    # Count only transactions that *committed* inside the window.
    from repro.core.outcomes import Outcome

    committed = 0
    for app in apps:
        for rec in app.history:
            if (rec.outcome is Outcome.COMMITTED
                    and rec.committed_at is not None
                    and warmup_ms <= rec.committed_at
                    <= warmup_ms + duration_ms):
                committed += 1
    diskman = system.runtime("vax").diskman
    return ThroughputResult(
        pairs=pairs, threads=threads, group_commit=group_commit, op=op,
        tps=committed / (duration_ms / 1000.0), committed=committed,
        duration_ms=duration_ms, log_writes=diskman.disk_writes,
        mean_batch=diskman.batcher.mean_batch_size)
