"""ASCII timelines: render a transaction's life from the trace.

The paper's Figure 1 walks through the eleven events of a simple
transaction; this module regenerates that view for *any* traced run —
one column per site, one row per interesting event, datagram arrows
between columns.  Used by ``examples/trace_timeline.py`` and handy when
debugging protocol changes.

Input is either a :class:`~repro.sim.tracing.Tracer` (event rows) or a
:class:`~repro.obs.spans.SpanRecorder` (span rows); the kind
vocabulary — which kinds get a row, which render as arrows, and their
descriptions — lives in :mod:`repro.obs.kinds`, shared with the span
instrumentation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Union

if TYPE_CHECKING:
    from repro.obs.spans import SpanRecorder

from repro.obs.kinds import (
    ARROW_KINDS,
    SPAN_ARROW_KINDS,
    TIMELINE_DESCRIPTIONS,
    describe_span,
)
from repro.sim.tracing import Tracer


@dataclass
class TimelineRow:
    time: float
    site: Optional[str]
    text: str
    arrow_to: Optional[str] = None


def _rows_from_tracer(tracer: Tracer, t0: float, t1: Optional[float],
                      tid: Optional[str]) -> List[TimelineRow]:
    rows: List[TimelineRow] = []
    for event in tracer.events:
        if event.time < t0 or (t1 is not None and event.time > t1):
            continue
        if tid is not None:
            event_tid = event.detail.get("tid")
            if event_tid is not None and event_tid != tid:
                continue
        if event.kind in ARROW_KINDS:
            kind_of = event.detail.get("kind_of", "datagram")
            dst = event.detail.get("dst")
            rows.append(TimelineRow(event.time, event.site,
                                    f"--{kind_of}-->", arrow_to=dst))
        elif event.kind in TIMELINE_DESCRIPTIONS:
            rows.append(TimelineRow(event.time, event.site,
                                    TIMELINE_DESCRIPTIONS[event.kind](event)))
    return rows


def _rows_from_recorder(recorder, t0: float, t1: Optional[float],
                        tid: Optional[str]) -> List[TimelineRow]:
    rows: List[TimelineRow] = []
    for span in recorder.all_spans():
        if span.t0 < t0 or (t1 is not None and span.t0 > t1):
            continue
        if tid is not None and span.tid is not None and span.tid != tid:
            continue
        if span.kind in SPAN_ARROW_KINDS:
            kind_of = span.detail.get("msg_kind", "datagram")
            rows.append(TimelineRow(span.t0, span.site,
                                    f"--{kind_of}-->",
                                    arrow_to=span.detail.get("dst")))
            continue
        text = describe_span(span.kind, span.detail)
        if text is not None and (span.kind in TIMELINE_DESCRIPTIONS
                                 or span.duration > 0
                                 or not span.closed):
            rows.append(TimelineRow(span.t0, span.site, text))
    rows.sort(key=lambda r: r.time)
    return rows


def extract_rows(source: Union[Tracer, "SpanRecorder"], t0: float = 0.0,
                 t1: Optional[float] = None,
                 tid: Optional[str] = None) -> List[TimelineRow]:
    """Pull timeline-worthy rows out of a tracer or a span recorder."""
    if hasattr(source, "events"):
        return _rows_from_tracer(source, t0, t1, tid)
    return _rows_from_recorder(source, t0, t1, tid)


def render_timeline(source: Union[Tracer, "SpanRecorder"],
                    sites: Sequence[str],
                    t0: float = 0.0, t1: Optional[float] = None,
                    tid: Optional[str] = None, width: int = 26) -> str:
    """One column per site, chronological rows, arrows labelled."""
    rows = extract_rows(source, t0=t0, t1=t1, tid=tid)
    col_of: Dict[str, int] = {site: i for i, site in enumerate(sites)}
    header = "t (ms)".rjust(9) + "  " + "".join(
        site.ljust(width) for site in sites)
    lines = [header, "-" * len(header)]
    for row in rows:
        cells = [" " * width for _ in sites]
        text = row.text
        if row.arrow_to is not None and row.arrow_to in col_of \
                and row.site in col_of:
            text = f"{text} {row.arrow_to}"
        if row.site in col_of:
            cells[col_of[row.site]] = text[:width].ljust(width)
        elif row.site is None and cells:
            cells[0] = text[:width].ljust(width)
        lines.append(f"{row.time:9.1f}  " + "".join(cells).rstrip())
    return "\n".join(lines)
