"""ASCII timelines: render a transaction's life from the trace.

The paper's Figure 1 walks through the eleven events of a simple
transaction; this module regenerates that view for *any* traced run —
one column per site, one row per interesting event, datagram arrows
between columns.  Used by ``examples/trace_timeline.py`` and handy when
debugging protocol changes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.sim.tracing import Tracer

# Trace kinds worth a timeline row, and how to describe them.
_DESCRIPTIONS = {
    "tranman.begin": lambda e: f"begin {e.detail.get('tid', '')}",
    "tranman.join": lambda e: f"join {e.detail.get('server', '')}",
    "tranman.commit_call": lambda e: "commit-transaction "
        f"({e.detail.get('protocol', '')}, {e.detail.get('subs', 0)} subs)",
    "tranman.local_prepared": lambda e: f"local vote: {e.detail.get('vote')}",
    "diskman.force": lambda e: "log force",
    "log.group_commit": lambda e: f"group commit x{e.detail.get('batch')}",
    "tranman.complete": lambda e: f"COMPLETE: {e.detail.get('outcome')}",
    "server.abort": lambda e: "undo + release locks",
    "nb.commit_point": lambda e: "COMMIT POINT (quorum formed)",
    "nb.takeover": lambda e: "timeout -> becoming coordinator",
    "nb.takeover_decided": lambda e: f"takeover decided: "
        f"{e.detail.get('outcome')}",
    "2pc.blocked_inquiry": lambda e: "blocked: inquiring",
    "2pc.heuristic_resolve": lambda e: "HEURISTIC "
        f"{e.detail.get('outcome')}",
    "2pc.heuristic_damage": lambda e: "!! heuristic damage",
    "fail.crash": lambda e: "**CRASH**",
    "fail.restart": lambda e: "**RESTART**",
    "recovery.plan": lambda e: f"recovery: {e.detail.get('in_doubt')} "
        "in doubt",
    "tranman.orphan_abort": lambda e: "orphan abort",
}

_ARROW_KINDS = ("tranman.datagram", "tranman.multicast")


@dataclass
class TimelineRow:
    time: float
    site: Optional[str]
    text: str
    arrow_to: Optional[str] = None


def extract_rows(tracer: Tracer, t0: float = 0.0,
                 t1: Optional[float] = None,
                 tid: Optional[str] = None) -> List[TimelineRow]:
    """Pull timeline-worthy rows out of a tracer's event list."""
    rows: List[TimelineRow] = []
    for event in tracer.events:
        if event.time < t0 or (t1 is not None and event.time > t1):
            continue
        if tid is not None:
            event_tid = event.detail.get("tid")
            if event_tid is not None and event_tid != tid:
                continue
        if event.kind in _ARROW_KINDS:
            kind_of = event.detail.get("kind_of", "datagram")
            dst = event.detail.get("dst")
            rows.append(TimelineRow(event.time, event.site,
                                    f"--{kind_of}-->", arrow_to=dst))
        elif event.kind in _DESCRIPTIONS:
            rows.append(TimelineRow(event.time, event.site,
                                    _DESCRIPTIONS[event.kind](event)))
    return rows


def render_timeline(tracer: Tracer, sites: Sequence[str],
                    t0: float = 0.0, t1: Optional[float] = None,
                    tid: Optional[str] = None, width: int = 26) -> str:
    """One column per site, chronological rows, arrows labelled."""
    rows = extract_rows(tracer, t0=t0, t1=t1, tid=tid)
    col_of: Dict[str, int] = {site: i for i, site in enumerate(sites)}
    header = "t (ms)".rjust(9) + "  " + "".join(
        site.ljust(width) for site in sites)
    lines = [header, "-" * len(header)]
    for row in rows:
        cells = [" " * width for _ in sites]
        text = row.text
        if row.arrow_to is not None and row.arrow_to in col_of \
                and row.site in col_of:
            text = f"{text} {row.arrow_to}"
        if row.site in col_of:
            cells[col_of[row.site]] = text[:width].ljust(width)
        elif row.site is None and cells:
            cells[0] = text[:width].ljust(width)
        lines.append(f"{row.time:9.1f}  " + "".join(cells).rstrip())
    return "\n".join(lines)
