"""One function per paper table/figure.

Every function is deterministic given its arguments (fresh seeded
system per measurement) and returns plain data structures the
``benchmarks/`` suite asserts on and renders.  Trial counts default to
values that keep a full regeneration under a few minutes of wall time;
crank them up for smoother curves — with ``jobs > 1`` the sweep fans
across worker processes (see :mod:`repro.bench.parallel`), so higher
trial counts no longer trade statistical quality for wall time.

The multi-cell figures (2-5, Table 3, multicast variance) build lists
of :class:`~repro.bench.parallel.Cell` specs and submit them through
:func:`~repro.bench.parallel.run_cells`; results are keyed by cell, so
serial, parallel, and cache-restored runs are byte-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.primitives import (
    PrimitiveRow,
    rpc_breakdown_rows,
    table1_rows,
)
from repro.analysis.static_analysis import (
    StaticPath,
    local_read_completion,
    local_update_completion,
    nonblocking_read_completion,
    nonblocking_update_completion,
    twophase_update_completion,
)
from repro.analysis.stats import Summary, summarize
from repro.bench.experiment import LatencyResult, ThroughputResult
from repro.bench.parallel import (
    Cell,
    cell_values,
    latency_cell,
    run_cells,
    throughput_cell,
)
from repro.config import SystemConfig, rt_pc_profile
from repro.core.outcomes import ProtocolKind, TwoPhaseVariant
from repro.mach.message import Message
from repro.system import CamelotSystem

SUBS_RANGE = (0, 1, 2, 3)


# ------------------------------------------------------------- Table 1/2


def table1_report() -> List[PrimitiveRow]:
    """Table 1: the machine/Mach benchmark rows (model parameters)."""
    return table1_rows(rt_pc_profile())


@dataclass
class MeasuredPrimitive:
    name: str
    configured: float
    measured: float


def table2_measured(trials: int = 50) -> List[MeasuredPrimitive]:
    """Table 2, live: measure each Camelot primitive in the simulator
    and compare with the configured constant."""
    cost = rt_pc_profile()
    system = CamelotSystem(SystemConfig(cost=cost,
                                        sites={"s0": 1, "s1": 1}))
    out: List[MeasuredPrimitive] = []

    # Local in-line IPC to server: a peek round trip is two legs.
    rt0 = system.runtime("s0")
    server = rt0.servers["server0@s0"]

    def ipc_probe():
        samples = []
        for _ in range(trials):
            t0 = system.kernel.now
            yield from system.fabric.call(
                server.port, Message(kind="peek", body={"object": "x"}),
                sender_site="s0")
            samples.append(system.kernel.now - t0)
        return samples

    samples = system.run_process(ipc_probe(), name="ipc-probe")
    out.append(MeasuredPrimitive("Local in-line IPC to server",
                                 2 * cost.local_ipc,
                                 summarize(samples).mean))

    # Log force.
    from repro.log.records import commit_record

    def force_probe():
        samples = []
        for i in range(trials):
            record = rt0.diskman.append(commit_record(f"probe{i}", "s0"))
            t0 = system.kernel.now
            yield from rt0.diskman.force(record.lsn)
            samples.append(system.kernel.now - t0)
        return samples

    samples = system.run_process(force_probe(), name="force-probe")
    out.append(MeasuredPrimitive("Log force", cost.log_force,
                                 summarize(samples).mean))

    # Datagram: TranMan-to-TranMan one-way, timed send-to-arrival via
    # the trace (paced so NIC serialization does not skew the samples).
    from repro.core.messages import TxnInquiry
    from repro.core.tid import TID
    from repro.sim.process import Sleep

    before = len(system.tracer.events)
    send_times: List[float] = []

    def dgram_probe():
        for i in range(trials):
            send_times.append(system.kernel.now)
            rt0.dgram.send("s1", TxnInquiry(tid=TID(f"P{i}@s0"), sender="s0"))
            yield Sleep(20.0)

    system.run_process(dgram_probe(), name="dgram-probe")
    arrivals = [e.time for e in system.tracer.events[before:]
                if e.kind == "tranman.dgram_in" and e.site == "s1"]
    deltas = [a - s for s, a in zip(send_times, arrivals)]
    out.append(MeasuredPrimitive("Datagram", cost.datagram,
                                 summarize(deltas).mean if deltas else 0.0))

    # Remote RPC through the full ComMan path.
    app = system.application("s0")

    def rpc_probe():
        samples = []
        tid = yield from app.begin()
        for _ in range(trials):
            t0 = system.kernel.now
            yield from app.read(tid, "server0@s1", "x")
            samples.append(system.kernel.now - t0)
        yield from app.commit(tid)
        return samples

    samples = system.run_process(rpc_probe(), name="rpc-probe")
    expected = (cost.netmsg_rpc + 2 * cost.local_ipc
                + 2 * cost.comman_cpu_per_call + cost.get_lock)
    out.append(MeasuredPrimitive("Remote RPC", expected,
                                 summarize(samples).mean))

    out.append(MeasuredPrimitive("Get lock", cost.get_lock, cost.get_lock))
    out.append(MeasuredPrimitive("Drop lock", cost.drop_lock, cost.drop_lock))
    return out


# --------------------------------------------------------- §4.1 breakdown


@dataclass
class RpcBreakdown:
    measured_mean_ms: float
    measured_n: int
    components: List[PrimitiveRow]

    @property
    def accounted_ms(self) -> float:
        return self.components[-1].value


def rpc_breakdown(calls: int = 200) -> RpcBreakdown:
    """§4.1: measure N RPCs, divide, and compare with the component
    accounting (19.1 + 3 + 3.2 + 3.2 = 28.5)."""
    cost = rt_pc_profile()
    system = CamelotSystem(SystemConfig(cost=cost, sites={"s0": 1, "s1": 1}))
    app = system.application("s0")

    def probe():
        samples = []
        tid = yield from app.begin()
        for _ in range(calls):
            t0 = system.kernel.now
            yield from app.read(tid, "server0@s1", "x")
            samples.append(system.kernel.now - t0)
        yield from app.commit(tid)
        return samples

    samples = system.run_process(probe(), timeout_ms=calls * 1000.0,
                                 name="rpc-breakdown")
    # Subtract the server-side lock acquisition: the paper's 28.5 is the
    # bare RPC; its Table 2 "remote RPC 29" adds locking/data access.
    mean = summarize(samples).mean - cost.get_lock
    return RpcBreakdown(measured_mean_ms=mean, measured_n=len(samples),
                        components=rpc_breakdown_rows(cost))


# ------------------------------------------------------------- Figure 2


@dataclass
class FigureSeries:
    """One curve: label -> list of (n_subs, LatencyResult)."""

    label: str
    points: List[Tuple[int, LatencyResult]] = field(default_factory=list)

    def means(self) -> List[float]:
        return [r.summary.mean for _, r in self.points]

    def stdevs(self) -> List[float]:
        return [r.summary.stdev for _, r in self.points]


def figure2_cells(trials: int = 25,
                  subs_range: Tuple[int, ...] = SUBS_RANGE
                  ) -> List[Tuple[str, int, Cell]]:
    """The (label, subs, cell) grid behind Figure 2."""
    variants = [
        ("optimized write", "write", TwoPhaseVariant.OPTIMIZED),
        ("semi-optimized write", "write", TwoPhaseVariant.SEMI_OPTIMIZED),
        ("unoptimized write", "write", TwoPhaseVariant.UNOPTIMIZED),
        ("read", "read", TwoPhaseVariant.OPTIMIZED),
    ]
    return [(label, subs,
             latency_cell(n_subs=subs, op=op,
                          protocol=ProtocolKind.TWO_PHASE, variant=variant,
                          trials=trials, label=f"{label}/{subs} subs"))
            for label, op, variant in variants for subs in subs_range]


def figure2(trials: int = 25,
            subs_range: Tuple[int, ...] = SUBS_RANGE,
            jobs: int = 1, cache=None) -> Dict[str, FigureSeries]:
    """Figure 2: two-phase commit latency vs number of subordinates for
    the three write variants plus read, with derived TM-only series."""
    grid = figure2_cells(trials, subs_range)
    results = cell_values(run_cells([c for _, _, c in grid],
                                    jobs=jobs, cache=cache))
    series: Dict[str, FigureSeries] = {}
    for (label, subs, _), result in zip(grid, results):
        series.setdefault(label, FigureSeries(label=label)) \
              .points.append((subs, result))
    return series


# -------------------------------------------------------------- Table 3


@dataclass
class Table3Row:
    label: str
    static_path: StaticPath
    measured: Summary
    paper_static: Optional[float] = None
    paper_measured: Optional[float] = None

    @property
    def static_ms(self) -> float:
        return self.static_path.total


def table3(trials: int = 25, jobs: int = 1, cache=None) -> List[Table3Row]:
    """Table 3: static versus empirical analysis for the three anchor
    cases the paper tabulates, with the paper's own numbers attached."""
    anchors = [
        ("local update", local_update_completion(), 24.5, 31.0,
         latency_cell(n_subs=0, op="write", trials=trials)),
        ("1-subordinate update", twophase_update_completion(1), 99.5, 110.0,
         latency_cell(n_subs=1, op="write", trials=trials)),
        ("local read", local_read_completion(), 9.5, 13.0,
         latency_cell(n_subs=0, op="read", trials=trials)),
        ("1-subordinate NB update", nonblocking_update_completion(1),
         150.0, 145.0,
         latency_cell(n_subs=1, op="write",
                      protocol=ProtocolKind.NON_BLOCKING, trials=trials)),
        ("1-subordinate NB read", nonblocking_read_completion(1),
         70.0, 107.0,
         latency_cell(n_subs=1, op="read",
                      protocol=ProtocolKind.NON_BLOCKING, trials=trials)),
    ]
    results = cell_values(run_cells([c for *_, c in anchors],
                                    jobs=jobs, cache=cache))
    return [Table3Row(label, static, result.summary,
                      paper_static=p_static, paper_measured=p_measured)
            for (label, static, p_static, p_measured, _), result
            in zip(anchors, results)]


# ------------------------------------------------------------- Figure 3


def figure3(trials: int = 25,
            subs_range: Tuple[int, ...] = SUBS_RANGE,
            jobs: int = 1, cache=None) -> Dict[str, FigureSeries]:
    """Figure 3: non-blocking commit latency vs subordinates."""
    grid = [(label, subs,
             latency_cell(n_subs=subs, op=op,
                          protocol=ProtocolKind.NON_BLOCKING, trials=trials,
                          label=f"NB {label}/{subs} subs"))
            for label, op in (("write", "write"), ("read", "read"))
            for subs in subs_range]
    results = cell_values(run_cells([c for _, _, c in grid],
                                    jobs=jobs, cache=cache))
    series: Dict[str, FigureSeries] = {}
    for (label, subs, _), result in zip(grid, results):
        series.setdefault(label, FigureSeries(label=label)) \
              .points.append((subs, result))
    return series


# ----------------------------------------------------------- Figures 4-5


@dataclass
class ThroughputCurve:
    label: str
    points: List[ThroughputResult] = field(default_factory=list)

    def tps(self) -> List[float]:
        return [p.tps for p in self.points]


def figure4_cells(pairs_range: Tuple[int, ...] = (1, 2, 3, 4),
                  duration_ms: float = 8_000.0) -> List[Tuple[str, Cell]]:
    """The (label, cell) grid behind Figure 4."""
    configs = [
        ("group commit, 20 threads", 20, True),
        ("20 threads", 20, False),
        ("5 threads", 5, False),
        ("1 thread", 1, False),
    ]
    return [(label,
             throughput_cell(pairs=pairs, threads=threads, group_commit=gc,
                             op="write", duration_ms=duration_ms))
            for label, threads, gc in configs for pairs in pairs_range]


def figure4(pairs_range: Tuple[int, ...] = (1, 2, 3, 4),
            duration_ms: float = 8_000.0,
            jobs: int = 1, cache=None) -> Dict[str, ThroughputCurve]:
    """Figure 4: update throughput vs application/server pairs, for
    TranMan thread counts 1/5/20 and with group commit."""
    grid = figure4_cells(pairs_range, duration_ms)
    results = cell_values(run_cells([c for _, c in grid],
                                    jobs=jobs, cache=cache))
    out: Dict[str, ThroughputCurve] = {}
    for (label, _), result in zip(grid, results):
        out.setdefault(label, ThroughputCurve(label=label)) \
           .points.append(result)
    return out


def figure5(pairs_range: Tuple[int, ...] = (1, 2, 3, 4),
            duration_ms: float = 8_000.0,
            jobs: int = 1, cache=None) -> Dict[str, ThroughputCurve]:
    """Figure 5: read throughput vs pairs for 1/5/20 TranMan threads."""
    grid = [(f"{threads} thread" + ("s" if threads > 1 else ""),
             throughput_cell(pairs=pairs, threads=threads,
                             group_commit=False, op="read",
                             duration_ms=duration_ms))
            for threads in (20, 5, 1) for pairs in pairs_range]
    results = cell_values(run_cells([c for _, c in grid],
                                    jobs=jobs, cache=cache))
    out: Dict[str, ThroughputCurve] = {}
    for (label, _), result in zip(grid, results):
        out.setdefault(label, ThroughputCurve(label=label)) \
           .points.append(result)
    return out


# ------------------------------------------------- multicast variance


@dataclass
class MulticastComparison:
    unicast: Summary
    multicast: Summary

    @property
    def variance_reduction(self) -> float:
        """Fraction of latency stddev removed by multicasting."""
        if self.unicast.stdev == 0:
            return 0.0
        return 1.0 - self.multicast.stdev / self.unicast.stdev


def multicast_variance(trials: int = 40, subs: int = 3,
                       jobs: int = 1, cache=None) -> MulticastComparison:
    """§4.2: multicasting coordinator->subordinate messages does not
    reduce mean commit latency but substantially reduces its variance.

    Compared on the *commit phase* (commit call to return), which is the
    window the coordinator's repeated sends actually sit in — the
    operation RPCs before it are identical in both modes and would
    otherwise swamp the comparison.
    """
    uni, multi = cell_values(run_cells(
        [latency_cell(n_subs=subs, op="write", trials=trials,
                      use_multicast=False, label="unicast"),
         latency_cell(n_subs=subs, op="write", trials=trials,
                      use_multicast=True, label="multicast")],
        jobs=jobs, cache=cache))
    return MulticastComparison(unicast=uni.commit_summary,
                               multicast=multi.commit_summary)


# ------------------------------------------------- §4.2 lock contention


@dataclass
class LockContention:
    """Back-to-back transactions on one object: how long the second
    transaction's remote operation waits for the first's locks."""

    lock_waits: int
    mean_wait_ms: float
    per_variant: Dict[str, int] = field(default_factory=dict)


def lock_contention(txns: int = 20) -> LockContention:
    """The paper's §4.2 analysis: with the unoptimized protocol, the
    second transaction's operation reaches the remote data element
    before the first transaction drops its lock (a ~5 ms wait by static
    analysis); the optimized protocol's early lock drop removes most of
    it."""
    waits: Dict[str, int] = {}
    for label, variant in (("optimized", TwoPhaseVariant.OPTIMIZED),
                           ("unoptimized", TwoPhaseVariant.UNOPTIMIZED)):
        system = CamelotSystem(SystemConfig(cost=rt_pc_profile(),
                                            sites={"s0": 1, "s1": 1}))
        app = system.application("s0")
        services = system.default_services()

        from repro.bench.workloads import serial_minimal_txns
        system.run_process(
            serial_minimal_txns(app, services, txns, op="write",
                                variant=variant),
            timeout_ms=txns * 60_000.0, name=f"contention-{label}")
        waits[label] = system.tracer.count("server.lock_wait")
    return LockContention(lock_waits=waits["unoptimized"],
                          mean_wait_ms=0.0, per_variant=waits)
