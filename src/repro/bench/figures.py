"""One function per paper table/figure.

Every function is deterministic given its arguments (fresh seeded
system per measurement) and returns plain data structures the
``benchmarks/`` suite asserts on and renders.  Trial counts default to
values that keep a full regeneration under a few minutes of wall time;
crank them up for smoother curves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.primitives import (
    PrimitiveRow,
    rpc_breakdown_rows,
    table1_rows,
    table2_rows,
)
from repro.analysis.static_analysis import (
    StaticPath,
    local_read_completion,
    local_update_completion,
    nonblocking_read_completion,
    nonblocking_update_completion,
    twophase_read_completion,
    twophase_update_completion,
)
from repro.analysis.stats import Summary, summarize
from repro.bench.experiment import (
    LatencyResult,
    ThroughputResult,
    measure_latency,
    measure_throughput,
)
from repro.config import SystemConfig, rt_pc_profile
from repro.core.outcomes import ProtocolKind, TwoPhaseVariant
from repro.mach.message import Message
from repro.system import CamelotSystem

SUBS_RANGE = (0, 1, 2, 3)


# ------------------------------------------------------------- Table 1/2


def table1_report() -> List[PrimitiveRow]:
    """Table 1: the machine/Mach benchmark rows (model parameters)."""
    return table1_rows(rt_pc_profile())


@dataclass
class MeasuredPrimitive:
    name: str
    configured: float
    measured: float


def table2_measured(trials: int = 50) -> List[MeasuredPrimitive]:
    """Table 2, live: measure each Camelot primitive in the simulator
    and compare with the configured constant."""
    cost = rt_pc_profile()
    system = CamelotSystem(SystemConfig(cost=cost,
                                        sites={"s0": 1, "s1": 1}))
    out: List[MeasuredPrimitive] = []

    # Local in-line IPC to server: a peek round trip is two legs.
    rt0 = system.runtime("s0")
    server = rt0.servers["server0@s0"]

    def ipc_probe():
        samples = []
        for _ in range(trials):
            t0 = system.kernel.now
            yield from system.fabric.call(
                server.port, Message(kind="peek", body={"object": "x"}),
                sender_site="s0")
            samples.append(system.kernel.now - t0)
        return samples

    samples = system.run_process(ipc_probe(), name="ipc-probe")
    out.append(MeasuredPrimitive("Local in-line IPC to server",
                                 2 * cost.local_ipc,
                                 summarize(samples).mean))

    # Log force.
    from repro.log.records import commit_record

    def force_probe():
        samples = []
        for i in range(trials):
            record = rt0.diskman.append(commit_record(f"probe{i}", "s0"))
            t0 = system.kernel.now
            yield from rt0.diskman.force(record.lsn)
            samples.append(system.kernel.now - t0)
        return samples

    samples = system.run_process(force_probe(), name="force-probe")
    out.append(MeasuredPrimitive("Log force", cost.log_force,
                                 summarize(samples).mean))

    # Datagram: TranMan-to-TranMan one-way, timed send-to-arrival via
    # the trace (paced so NIC serialization does not skew the samples).
    from repro.core.messages import TxnInquiry
    from repro.core.tid import TID
    from repro.sim.process import Sleep

    before = len(system.tracer.events)
    send_times: List[float] = []

    def dgram_probe():
        for i in range(trials):
            send_times.append(system.kernel.now)
            rt0.dgram.send("s1", TxnInquiry(tid=TID(f"P{i}@s0"), sender="s0"))
            yield Sleep(20.0)

    system.run_process(dgram_probe(), name="dgram-probe")
    arrivals = [e.time for e in system.tracer.events[before:]
                if e.kind == "tranman.dgram_in" and e.site == "s1"]
    deltas = [a - s for s, a in zip(send_times, arrivals)]
    out.append(MeasuredPrimitive("Datagram", cost.datagram,
                                 summarize(deltas).mean if deltas else 0.0))

    # Remote RPC through the full ComMan path.
    app = system.application("s0")

    def rpc_probe():
        samples = []
        tid = yield from app.begin()
        for _ in range(trials):
            t0 = system.kernel.now
            yield from app.read(tid, "server0@s1", "x")
            samples.append(system.kernel.now - t0)
        yield from app.commit(tid)
        return samples

    samples = system.run_process(rpc_probe(), name="rpc-probe")
    expected = (cost.netmsg_rpc + 2 * cost.local_ipc
                + 2 * cost.comman_cpu_per_call + cost.get_lock)
    out.append(MeasuredPrimitive("Remote RPC", expected,
                                 summarize(samples).mean))

    out.append(MeasuredPrimitive("Get lock", cost.get_lock, cost.get_lock))
    out.append(MeasuredPrimitive("Drop lock", cost.drop_lock, cost.drop_lock))
    return out


# --------------------------------------------------------- §4.1 breakdown


@dataclass
class RpcBreakdown:
    measured_mean_ms: float
    measured_n: int
    components: List[PrimitiveRow]

    @property
    def accounted_ms(self) -> float:
        return self.components[-1].value


def rpc_breakdown(calls: int = 200) -> RpcBreakdown:
    """§4.1: measure N RPCs, divide, and compare with the component
    accounting (19.1 + 3 + 3.2 + 3.2 = 28.5)."""
    cost = rt_pc_profile()
    system = CamelotSystem(SystemConfig(cost=cost, sites={"s0": 1, "s1": 1}))
    app = system.application("s0")

    def probe():
        samples = []
        tid = yield from app.begin()
        for _ in range(calls):
            t0 = system.kernel.now
            yield from app.read(tid, "server0@s1", "x")
            samples.append(system.kernel.now - t0)
        yield from app.commit(tid)
        return samples

    samples = system.run_process(probe(), timeout_ms=calls * 1000.0,
                                 name="rpc-breakdown")
    # Subtract the server-side lock acquisition: the paper's 28.5 is the
    # bare RPC; its Table 2 "remote RPC 29" adds locking/data access.
    mean = summarize(samples).mean - cost.get_lock
    return RpcBreakdown(measured_mean_ms=mean, measured_n=len(samples),
                        components=rpc_breakdown_rows(cost))


# ------------------------------------------------------------- Figure 2


@dataclass
class FigureSeries:
    """One curve: label -> list of (n_subs, LatencyResult)."""

    label: str
    points: List[Tuple[int, LatencyResult]] = field(default_factory=list)

    def means(self) -> List[float]:
        return [r.summary.mean for _, r in self.points]

    def stdevs(self) -> List[float]:
        return [r.summary.stdev for _, r in self.points]


def figure2(trials: int = 25,
            subs_range: Tuple[int, ...] = SUBS_RANGE) -> Dict[str, FigureSeries]:
    """Figure 2: two-phase commit latency vs number of subordinates for
    the three write variants plus read, with derived TM-only series."""
    series: Dict[str, FigureSeries] = {}
    variants = [
        ("optimized write", "write", TwoPhaseVariant.OPTIMIZED),
        ("semi-optimized write", "write", TwoPhaseVariant.SEMI_OPTIMIZED),
        ("unoptimized write", "write", TwoPhaseVariant.UNOPTIMIZED),
        ("read", "read", TwoPhaseVariant.OPTIMIZED),
    ]
    for label, op, variant in variants:
        fs = FigureSeries(label=label)
        for subs in subs_range:
            result = measure_latency(subs, op=op,
                                     protocol=ProtocolKind.TWO_PHASE,
                                     variant=variant, trials=trials,
                                     label=f"{label}/{subs} subs")
            fs.points.append((subs, result))
        series[label] = fs
    return series


# -------------------------------------------------------------- Table 3


@dataclass
class Table3Row:
    label: str
    static_path: StaticPath
    measured: Summary
    paper_static: Optional[float] = None
    paper_measured: Optional[float] = None

    @property
    def static_ms(self) -> float:
        return self.static_path.total


def table3(trials: int = 25) -> List[Table3Row]:
    """Table 3: static versus empirical analysis for the three anchor
    cases the paper tabulates, with the paper's own numbers attached."""
    rows: List[Table3Row] = []
    local_update = measure_latency(0, op="write", trials=trials)
    rows.append(Table3Row("local update", local_update_completion(),
                          local_update.summary,
                          paper_static=24.5, paper_measured=31.0))
    one_sub = measure_latency(1, op="write", trials=trials)
    rows.append(Table3Row("1-subordinate update",
                          twophase_update_completion(1), one_sub.summary,
                          paper_static=99.5, paper_measured=110.0))
    local_read = measure_latency(0, op="read", trials=trials)
    rows.append(Table3Row("local read", local_read_completion(),
                          local_read.summary,
                          paper_static=9.5, paper_measured=13.0))
    nb_one = measure_latency(1, op="write",
                             protocol=ProtocolKind.NON_BLOCKING,
                             trials=trials)
    rows.append(Table3Row("1-subordinate NB update",
                          nonblocking_update_completion(1), nb_one.summary,
                          paper_static=150.0, paper_measured=145.0))
    nb_read = measure_latency(1, op="read",
                              protocol=ProtocolKind.NON_BLOCKING,
                              trials=trials)
    rows.append(Table3Row("1-subordinate NB read",
                          nonblocking_read_completion(1), nb_read.summary,
                          paper_static=70.0, paper_measured=107.0))
    return rows


# ------------------------------------------------------------- Figure 3


def figure3(trials: int = 25,
            subs_range: Tuple[int, ...] = SUBS_RANGE) -> Dict[str, FigureSeries]:
    """Figure 3: non-blocking commit latency vs subordinates."""
    series: Dict[str, FigureSeries] = {}
    for label, op in (("write", "write"), ("read", "read")):
        fs = FigureSeries(label=label)
        for subs in subs_range:
            result = measure_latency(subs, op=op,
                                     protocol=ProtocolKind.NON_BLOCKING,
                                     trials=trials,
                                     label=f"NB {label}/{subs} subs")
            fs.points.append((subs, result))
        series[label] = fs
    return series


# ----------------------------------------------------------- Figures 4-5


@dataclass
class ThroughputCurve:
    label: str
    points: List[ThroughputResult] = field(default_factory=list)

    def tps(self) -> List[float]:
        return [p.tps for p in self.points]


def figure4(pairs_range: Tuple[int, ...] = (1, 2, 3, 4),
            duration_ms: float = 8_000.0) -> Dict[str, ThroughputCurve]:
    """Figure 4: update throughput vs application/server pairs, for
    TranMan thread counts 1/5/20 and with group commit."""
    configs = [
        ("group commit, 20 threads", 20, True),
        ("20 threads", 20, False),
        ("5 threads", 5, False),
        ("1 thread", 1, False),
    ]
    out: Dict[str, ThroughputCurve] = {}
    for label, threads, gc in configs:
        curve = ThroughputCurve(label=label)
        for pairs in pairs_range:
            curve.points.append(measure_throughput(
                pairs, threads, gc, op="write", duration_ms=duration_ms))
        out[label] = curve
    return out


def figure5(pairs_range: Tuple[int, ...] = (1, 2, 3, 4),
            duration_ms: float = 8_000.0) -> Dict[str, ThroughputCurve]:
    """Figure 5: read throughput vs pairs for 1/5/20 TranMan threads."""
    out: Dict[str, ThroughputCurve] = {}
    for threads in (20, 5, 1):
        label = f"{threads} thread" + ("s" if threads > 1 else "")
        curve = ThroughputCurve(label=label)
        for pairs in pairs_range:
            curve.points.append(measure_throughput(
                pairs, threads, False, op="read", duration_ms=duration_ms))
        out[label] = curve
    return out


# ------------------------------------------------- multicast variance


@dataclass
class MulticastComparison:
    unicast: Summary
    multicast: Summary

    @property
    def variance_reduction(self) -> float:
        """Fraction of latency stddev removed by multicasting."""
        if self.unicast.stdev == 0:
            return 0.0
        return 1.0 - self.multicast.stdev / self.unicast.stdev


def multicast_variance(trials: int = 40, subs: int = 3) -> MulticastComparison:
    """§4.2: multicasting coordinator->subordinate messages does not
    reduce mean commit latency but substantially reduces its variance.

    Compared on the *commit phase* (commit call to return), which is the
    window the coordinator's repeated sends actually sit in — the
    operation RPCs before it are identical in both modes and would
    otherwise swamp the comparison.
    """
    uni = measure_latency(subs, op="write", trials=trials,
                          use_multicast=False, label="unicast")
    multi = measure_latency(subs, op="write", trials=trials,
                            use_multicast=True, label="multicast")
    return MulticastComparison(unicast=uni.commit_summary,
                               multicast=multi.commit_summary)


# ------------------------------------------------- §4.2 lock contention


@dataclass
class LockContention:
    """Back-to-back transactions on one object: how long the second
    transaction's remote operation waits for the first's locks."""

    lock_waits: int
    mean_wait_ms: float
    per_variant: Dict[str, int] = field(default_factory=dict)


def lock_contention(txns: int = 20) -> LockContention:
    """The paper's §4.2 analysis: with the unoptimized protocol, the
    second transaction's operation reaches the remote data element
    before the first transaction drops its lock (a ~5 ms wait by static
    analysis); the optimized protocol's early lock drop removes most of
    it."""
    waits: Dict[str, int] = {}
    for label, variant in (("optimized", TwoPhaseVariant.OPTIMIZED),
                           ("unoptimized", TwoPhaseVariant.UNOPTIMIZED)):
        system = CamelotSystem(SystemConfig(cost=rt_pc_profile(),
                                            sites={"s0": 1, "s1": 1}))
        app = system.application("s0")
        services = system.default_services()

        from repro.bench.workloads import serial_minimal_txns
        system.run_process(
            serial_minimal_txns(app, services, txns, op="write",
                                variant=variant),
            timeout_ms=txns * 60_000.0, name=f"contention-{label}")
        waits[label] = system.tracer.count("server.lock_wait")
    return LockContention(lock_waits=waits["unoptimized"],
                          mean_wait_ms=0.0, per_variant=waits)
