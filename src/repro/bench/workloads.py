"""Workload generators for the experiments.

The paper's experiments use two shapes:

- **serial minimal transactions** (latency experiments, §4.2-4.3): one
  application executes minimal transactions back to back — one small
  operation at a single server at each site, then commit.  Latency is
  measured per transaction; running them back to back is what exposes
  the unoptimized variant's extra network activity and lock contention.
- **closed-loop application/server pairs** (throughput experiments,
  §4.4): N independent pairs each loop over minimal local transactions
  on their own objects; offered load rises with N until saturation.
"""

from __future__ import annotations

from typing import Any, Generator, List

from repro.core.outcomes import ProtocolKind, TwoPhaseVariant
from repro.servers.application import Application, TransactionAborted


def serial_minimal_txns(app: Application, services: List[str], count: int,
                        op: str = "write",
                        protocol: ProtocolKind = ProtocolKind.TWO_PHASE,
                        variant: TwoPhaseVariant = TwoPhaseVariant.OPTIMIZED,
                        obj: str = "x") -> Generator[Any, Any, int]:
    """Run ``count`` minimal transactions in sequence; returns how many
    committed.  Every transaction touches the *same* object at every
    site — the paper's experiment 'locked and updated the same data
    element during every transaction', which is what creates the lock
    contention its §4.2 analysis dissects."""
    committed = 0
    for _ in range(count):
        try:
            yield from app.minimal_transaction(services, op=op, obj=obj,
                                               protocol=protocol,
                                               variant=variant)
            committed += 1
        except TransactionAborted:
            continue
    return committed


def closed_loop(app: Application, services: List[str], until_ms: float,
                op: str = "write",
                protocol: ProtocolKind = ProtocolKind.TWO_PHASE,
                variant: TwoPhaseVariant = TwoPhaseVariant.OPTIMIZED,
                obj: str = "x") -> Generator[Any, Any, int]:
    """Loop minimal transactions until the virtual clock passes
    ``until_ms``; returns the number committed."""
    committed = 0
    while app.kernel.now < until_ms:
        try:
            yield from app.minimal_transaction(services, op=op, obj=obj,
                                               protocol=protocol,
                                               variant=variant)
            committed += 1
        except TransactionAborted:
            continue
    return committed


def transfer(app: Application, tid: Any, from_service: str, from_acct: str,
             to_service: str, to_acct: str,
             amount: int) -> Generator[Any, Any, bool]:
    """A debit/credit pair used by the banking example and tests.

    Returns False (without writing) when funds are insufficient — the
    caller decides whether to abort.
    """
    balance = yield from app.read_for_update(tid, from_service, from_acct)
    if balance is None or balance < amount:
        return False
    yield from app.write(tid, from_service, from_acct, balance - amount)
    dest = yield from app.read_for_update(tid, to_service, to_acct)
    yield from app.write(tid, to_service, to_acct, (dest or 0) + amount)
    return True
