"""Ablation experiments for the design choices DESIGN.md calls out.

Beyond regenerating the paper's tables and figures, these quantify the
knobs the paper discusses qualitatively:

- :func:`read_only_ablation` — §4.2 question 2: what does the read-only
  optimization actually buy?
- :func:`quorum_policy_ablation` — majority vs commit-weighted quorums:
  latency vs availability under coordinator failure.
- :func:`group_commit_window_ablation` — §3.5: the latency/throughput
  trade as the batching window grows.
- :func:`protocol_overhead_ablation` — the conclusions' deployment
  guidance: non-blocking commitment suits long and wide-area
  transactions, because its extra cost is fixed while transactions
  grow.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.analysis.stats import Summary, summarize
from repro.config import SystemConfig, rt_pc_profile, vax_mp_profile, wan_profile
from repro.core.outcomes import ProtocolKind
from repro.system import CamelotSystem


# ----------------------------------------------- read-only optimization


@dataclass
class ReadOnlyAblation:
    optimized: Summary          # read txn latency, optimization on
    unoptimized: Summary        # optimization off: reads prepare + phase 2
    optimized_forces: float
    unoptimized_forces: float


def read_only_ablation(trials: int = 20, n_subs: int = 1) -> ReadOnlyAblation:
    """Measure a distributed *read* transaction with the read-only
    optimization on vs off (off: read-only sites vote YES, force a
    prepare record, and join phase two like update sites)."""
    results = {}
    for enabled in (True, False):
        config = SystemConfig(cost=rt_pc_profile(),
                              sites={f"s{i}": 1 for i in range(n_subs + 1)},
                              read_only_optimization=enabled,
                              keep_trace_events=False)
        system = CamelotSystem(config)
        app = system.application("s0")
        services = system.default_services()
        before = system.tracer.snapshot()

        def workload():
            for _ in range(trials):
                yield from app.minimal_transaction(services, op="read")

        system.run_process(workload(), timeout_ms=trials * 60_000.0)
        delta = system.tracer.delta(before, system.tracer.snapshot())
        results[enabled] = (summarize(app.latencies_ms()),
                            delta.get("diskman.force", 0) / trials)
    return ReadOnlyAblation(
        optimized=results[True][0], unoptimized=results[False][0],
        optimized_forces=results[True][1],
        unoptimized_forces=results[False][1])


# -------------------------------------------------------- quorum policy


@dataclass
class QuorumAblation:
    latency: Dict[str, Summary] = field(default_factory=dict)
    # After a coordinator crash mid-protocol: did survivors decide?
    survivors_decide: Dict[str, bool] = field(default_factory=dict)


def quorum_policy_ablation(trials: int = 12) -> QuorumAblation:
    """Majority quorums vs commit-weighted (Qc=1, Qa=N).

    Commit-weighted lets the coordinator's own replication record form
    the commit quorum — faster, 2PC-like — but the abort quorum then
    needs *every* site, so a crashed coordinator strands the survivors:
    exactly the blocking the majority quorum exists to avoid.
    """
    out = QuorumAblation()
    for policy in ("majority", "commit_weighted"):
        # Latency, failure-free.
        system = CamelotSystem(SystemConfig(
            cost=rt_pc_profile(), sites={"a": 1, "b": 1, "c": 1},
            keep_trace_events=False))
        app = system.application("a")
        services = system.default_services()

        def workload():
            for _ in range(trials):
                tid = yield from app.begin(
                    protocol=ProtocolKind.NON_BLOCKING)
                for s in services:
                    yield from app.write(tid, s, "x", 1)
                yield from app.commit(tid,
                                      protocol=ProtocolKind.NON_BLOCKING,
                                      quorum_policy=policy)

        system.run_process(workload(), timeout_ms=trials * 60_000.0)
        out.latency[policy] = summarize(app.latencies_ms())

        # Availability: crash the coordinator pre-replication.
        system2 = CamelotSystem(SystemConfig(
            cost=rt_pc_profile(), sites={"a": 1, "b": 1, "c": 1}))
        app2 = system2.application("a")
        state: Dict[str, str] = {}

        def crashy():
            tid = yield from app2.begin(protocol=ProtocolKind.NON_BLOCKING)
            state["tid"] = str(tid)
            for s in system2.default_services():
                yield from app2.write(tid, s, "x", 1)
            try:
                yield from app2.commit(tid,
                                       protocol=ProtocolKind.NON_BLOCKING,
                                       quorum_policy=policy)
            except BaseException:
                pass

        system2.spawn(crashy(), name="crashy")
        system2.failures.crash_at(155.0, "a")
        system2.run_for(40_000.0)
        decided = all(
            system2.tranman(s).tombstones.get(state["tid"]) is not None
            for s in ("b", "c"))
        out.survivors_decide[policy] = decided
    return out


# ------------------------------------------------- group-commit window


@dataclass
class WindowPoint:
    window_ms: float
    tps: float
    mean_latency_ms: float


def group_commit_window_ablation(
        windows: Tuple[float, ...] = (5.0, 20.0, 60.0),
        pairs: int = 4, duration_ms: float = 6_000.0) -> List[WindowPoint]:
    """Sweep the group-commit accumulation window.

    The finding (and it is the honest one for closed-loop clients): the
    benefit of group commit is batching *at all* — Figure 4's
    batched-vs-unbatched gap.  Once the window is wide enough to catch
    concurrently arriving commits, widening it further only adds
    latency, which in a closed loop feeds back into (slightly) *lower*
    throughput.  §3.5's "sacrifices latency in order to increase
    throughput" is about turning batching on, not about long timers.
    """
    points = []
    for window in windows:
        config = SystemConfig(
            cost=vax_mp_profile().with_overrides(log_batch_timer=window),
            sites={"vax": pairs}, tranman_threads=20, group_commit=True,
            keep_trace_events=False)
        system = CamelotSystem(config)
        apps = [system.application("vax", name=f"p{i}")
                for i in range(pairs)]

        from repro.bench.workloads import closed_loop

        def pair_body(i):
            yield from closed_loop(apps[i], [f"server{i}@vax"],
                                   until_ms=duration_ms, obj=f"o{i}")

        for i in range(pairs):
            system.spawn(pair_body(i), name=f"p{i}")
        system.run_for(duration_ms + 3_000.0)
        latencies = [lat for app in apps for lat in app.latencies_ms()]
        committed = sum(app.committed_count() for app in apps)
        points.append(WindowPoint(
            window_ms=window,
            tps=committed / (duration_ms / 1000.0),
            mean_latency_ms=summarize(latencies).mean))
    return points


# -------------------------------------------- protocol overhead vs size


@dataclass
class OverheadPoint:
    ops_per_site: int
    profile: str
    two_phase_ms: float
    non_blocking_ms: float

    @property
    def overhead_fraction(self) -> float:
        return (self.non_blocking_ms - self.two_phase_ms) / self.non_blocking_ms


def protocol_overhead_ablation(
        op_counts: Tuple[int, ...] = (1, 5, 20),
        trials: int = 8) -> List[OverheadPoint]:
    """The conclusions' guidance, quantified: the non-blocking premium
    is a fixed number of forces and messages, so as transactions grow
    (more operations, or WAN-scale message costs) its *relative* cost
    falls — "non-blocking commitment should be used with transactions
    that last longer than a few seconds"."""
    points = []
    for profile_name, cost in (("lan", rt_pc_profile()),
                               ("wan", wan_profile())):
        for ops in op_counts:
            means = {}
            for protocol in (ProtocolKind.TWO_PHASE,
                             ProtocolKind.NON_BLOCKING):
                system = CamelotSystem(SystemConfig(
                    cost=cost, sites={"a": 1, "b": 1},
                    keep_trace_events=False))
                app = system.application("a")

                def workload():
                    for t in range(trials):
                        tid = yield from app.begin(protocol=protocol)
                        for i in range(ops):
                            yield from app.write(tid, "server0@b",
                                                 f"o{i}", t)
                        yield from app.commit(tid, protocol=protocol)

                system.run_process(workload(),
                                   timeout_ms=trials * 600_000.0)
                means[protocol] = summarize(app.latencies_ms()).mean
            points.append(OverheadPoint(
                ops_per_site=ops, profile=profile_name,
                two_phase_ms=means[ProtocolKind.TWO_PHASE],
                non_blocking_ms=means[ProtocolKind.NON_BLOCKING]))
    return points
