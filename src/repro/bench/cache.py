"""Content-addressed on-disk cache for experiment cells.

``python -m repro all`` recomputes every figure from scratch even when
nothing changed.  Every cell is deterministic given its spec (function +
kwargs, which include the seed) and the cost model constants it reads,
so the pair fingerprints the result exactly:

    key = sha256(cache format version,
                 cost-model fingerprint,   # all stock profiles, field by field
                 cell function name,
                 canonicalised kwargs)

The cost-model fingerprint hashes every field of every stock profile in
:data:`repro.config.PROFILES` (``rt_pc``, ``vax_mp``, ``wan``), so editing
any constant in ``config.py`` — or adding a profile — invalidates the
whole cache rather than serving stale physics.  Kwargs are canonicalised
structurally (enums to ``class.value``, dataclasses to sorted dicts,
tuples to lists) so logically equal cells share a key.

Values are stored one pickle per key under the cache root
(``.repro-cache/`` by default, override with ``$REPRO_CACHE_DIR``).
Writes are atomic (tmp file + rename) so a killed run never leaves a
truncated entry; unreadable entries are treated as misses and deleted.
"""

from __future__ import annotations

import enum
import hashlib
import json
import os
import pickle
import tempfile
from dataclasses import asdict, is_dataclass
from pathlib import Path
from typing import Any, Optional, Tuple

from repro.config import PROFILES

# Bump when the on-disk format or result dataclasses change shape.
CACHE_VERSION = 1

DEFAULT_CACHE_DIR = ".repro-cache"


def _canonical(obj: Any) -> Any:
    """Reduce ``obj`` to JSON-stable primitives for hashing."""
    if isinstance(obj, enum.Enum):
        return [type(obj).__name__, obj.value]
    if is_dataclass(obj) and not isinstance(obj, type):
        return {"__dataclass__": type(obj).__name__,
                "fields": _canonical(asdict(obj))}
    if isinstance(obj, dict):
        return {str(k): _canonical(v) for k, v in sorted(obj.items())}
    if isinstance(obj, (list, tuple)):
        return [_canonical(v) for v in obj]
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    return repr(obj)


def cost_model_fingerprint() -> str:
    """Hash of every field of every stock cost profile.

    Cells build their profiles internally (e.g. ``rt_pc_profile()``
    inside ``measure_latency``), so the cache keys on the constants those
    constructors would produce *today*: change one and every key moves.
    """
    blob = {name: _canonical(factory()) for name, factory in
            sorted(PROFILES.items())}
    payload = json.dumps(blob, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode()).hexdigest()


class ResultCache:
    """Pickle-per-key result store for :class:`~repro.bench.parallel.Cell`.

    ``get`` returns ``(hit, value)`` so a cached ``None`` result is
    distinguishable from a miss.
    """

    def __init__(self, root: Optional[str] = None):
        self.root = Path(root
                         or os.environ.get("REPRO_CACHE_DIR")
                         or DEFAULT_CACHE_DIR)
        self._fingerprint = cost_model_fingerprint()
        self.hits = 0
        self.misses = 0

    def key(self, cell: Any) -> str:
        payload = json.dumps(
            {"version": CACHE_VERSION,
             "cost_model": self._fingerprint,
             "fn": cell.fn,
             "kwargs": _canonical(dict(cell.kwargs))},
            sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(payload.encode()).hexdigest()

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.pkl"

    def get(self, cell: Any) -> Tuple[bool, Any]:
        path = self._path(self.key(cell))
        try:
            with open(path, "rb") as fh:
                value = pickle.load(fh)
        except FileNotFoundError:
            self.misses += 1
            return False, None
        except Exception:
            # Truncated or stale-format entry: drop it and recompute.
            try:
                path.unlink()
            except OSError:
                pass
            self.misses += 1
            return False, None
        self.hits += 1
        return True, value

    def put(self, cell: Any, value: Any) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        path = self._path(self.key(cell))
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(value, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except Exception:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        if self.root.is_dir():
            for path in self.root.glob("*.pkl"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed

    def __len__(self) -> int:
        return len(list(self.root.glob("*.pkl"))) if self.root.is_dir() else 0
