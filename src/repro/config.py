"""Machine/OS cost profiles calibrated from the paper.

The paper's whole performance analysis reduces to sums of primitive
costs (its Tables 1 and 2) plus queueing effects.  This module is the
single source of truth for those costs; every substrate (IPC, network,
log, CPU scheduler) reads its timing parameters from a
:class:`CostModel`.

All times are **milliseconds** of virtual time, matching the units the
paper reports.

Two stock profiles:

- :func:`rt_pc_profile` — IBM RT PC model 125 + Mach 2.0 + 4 Mb/s token
  ring; used for the latency experiments (paper §4.1-4.3, Figures 2-3,
  Tables 1-3).
- :func:`vax_mp_profile` — 4-way VAX 8200 (1-MIP CPUs, single master run
  queue); used for the throughput experiments (Figures 4-5).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict


@dataclass
class CostModel:
    """Primitive latencies and queueing parameters.

    Field names follow the paper's vocabulary.  ``*_ipc`` fields are
    one-way delivery latencies; an RPC is two deliveries plus server
    service time.
    """

    # ------------------------------------------------------- Table 1 ---
    procedure_call_us: float = 12.0          # 32-byte arg procedure call
    bcopy_base_us: float = 8.4               # bcopy() fixed cost
    bcopy_per_kb_us: float = 180.0           # bcopy() per-KB cost
    kernel_call_us: float = 149.0            # getpid(), cheapest syscall
    kernel_copy_base_us: float = 35.0        # copy in/out of kernel, + copy
    context_switch_us: float = 137.0         # swtch()
    raw_disk_track_write: float = 26.8       # raw disk write, 1 track (ms)

    # ------------------------------------------------------- Table 2 ---
    local_ipc: float = 1.5                   # local in-line IPC
    local_ipc_to_server: float = 3.0         # local in-line IPC to a server
    local_outofline_ipc: float = 5.5         # local out-of-line IPC
    local_oneway_message: float = 1.0        # local one-way inline message
    remote_rpc: float = 29.0                 # full Camelot remote RPC
    log_force: float = 15.0                  # synchronous log force
    datagram: float = 10.0                   # inter-TranMan datagram
    get_lock: float = 0.5
    drop_lock: float = 0.5
    data_access_read: float = 0.0            # "negligible"
    data_access_write: float = 0.0           # "negligible"

    # ------------------------------------------- §4.1 RPC dissection ---
    netmsg_rpc: float = 19.1                 # NetMsgServer-to-NetMsgServer RPC
    comman_cpu_per_call: float = 3.2         # ComMan CPU per call per site

    # ----------------------------------------------- network queueing ---
    datagram_send_cycle: float = 1.7         # serial cost per datagram send
    # Per-send scheduling jitter at the sender (the paper: "much of the
    # variance is created by the coordinator's repeated sends ... may be
    # due to operating system scheduling policies").  Paid once per
    # unicast, once per *multicast group* — which is why multicast cuts
    # variance without changing the mean much.
    datagram_send_jitter: float = 1.2
    datagram_jitter_base: float = 0.3        # mean receive jitter, idle net
    datagram_jitter_per_load: float = 0.6    # extra mean jitter per in-flight
    multicast_send_cycle: float = 1.7        # one cycle regardless of fan-out

    # ------------------------------------------------------- logging ---
    log_write_lazy: float = 0.05             # buffer a record, no disk I/O
    log_batch_timer: float = 30.0            # group-commit accumulation window
    log_batch_limit: int = 32                # max commits folded into one force

    # --------------------------------------------------------- CPU -----
    num_cpus: int = 1
    cpu_speed_factor: float = 1.0            # scales per-message CPU costs
    tranman_service_cpu: float = 0.8         # TranMan CPU per request handled
    server_service_cpu: float = 0.5          # data-server CPU per operation
    logger_service_cpu: float = 0.3          # DiskMan CPU per log request

    # ------------------------------------------------ datagram layer ---
    retransmit_timeout: float = 200.0        # TranMan datagram retry interval
    max_retransmits: int = 10
    protocol_timeout: float = 1500.0         # subordinate decision timeout (NB commit)
    # A transaction with no protocol machine and no activity for this
    # long is an orphan (its coordinator died before commitment began):
    # the TranMan aborts it locally — always safe before a YES vote.
    orphan_timeout: float = 30_000.0
    # Timeout-based deadlock resolution in the data servers: an
    # operation that cannot get its lock within this bound fails, and
    # the application aborts the transaction (the victim).
    lock_wait_timeout: float = 5_000.0
    # Periodic fuzzy checkpoints (log truncation); 0 disables them —
    # the latency/throughput experiments run without checkpoint noise.
    checkpoint_interval: float = 0.0

    def scaled_cpu(self, cost: float) -> float:
        """Apply the profile's CPU speed factor to a CPU cost."""
        return cost * self.cpu_speed_factor

    def bcopy(self, kilobytes: float) -> float:
        """bcopy() time in **ms** for ``kilobytes`` of data (Table 1 row)."""
        return (self.bcopy_base_us + self.bcopy_per_kb_us * kilobytes) / 1000.0

    def with_overrides(self, **kwargs: float) -> "CostModel":
        """A copy with selected fields replaced (experiment sweeps)."""
        return replace(self, **kwargs)


def rt_pc_profile() -> CostModel:
    """IBM RT PC 125 / Mach 2.0 / token ring — the latency testbed."""
    return CostModel()


def wan_profile() -> CostModel:
    """Wide-area internetwork: the same hosts as the RT-PC profile, but
    inter-site messages cross a routed internet path instead of one
    token ring.  Used by the protocol-overhead ablation — the paper's
    conclusion that non-blocking commitment suits "transactions executed
    at sites spanning a wide area" is about exactly this regime, where
    message time dwarfs log forces.
    """
    return CostModel(
        datagram=60.0,
        netmsg_rpc=130.0,
        datagram_jitter_base=2.0,
        datagram_jitter_per_load=1.0,
        datagram_send_jitter=3.0,
        retransmit_timeout=500.0,
        protocol_timeout=4000.0,
    )


def vax_mp_profile(num_cpus: int = 4) -> CostModel:
    """4-way VAX 8200 — the throughput testbed.

    The 8200's CPUs are ~1 MIP vs the RT's 2 MIPS, so per-message CPU
    costs double; Mach 2.0 on it had a single master run queue, which the
    scheduler module models explicitly.
    """
    return CostModel(
        num_cpus=num_cpus,
        cpu_speed_factor=2.0,
        # The 8200's Mach spent far more CPU per request than the RT
        # profile's (single master run queue, slower cores, heavier
        # locking) — these produce the paper's observed saturation at a
        # handful of TPS rather than a microscopic model of the VAX.
        tranman_service_cpu=4.0,
        server_service_cpu=3.0,
        logger_service_cpu=2.0,
        comman_cpu_per_call=6.4,
        # The throughput testbed's log disk could do "no more than about
        # 30 log writes per second": a force costs a full track write.
        log_force=33.0,
        # Throughput runs are long; keep the group-commit window short
        # enough that latency stays bounded (Camelot used tens of ms).
        log_batch_timer=20.0,
    )


@dataclass
class SystemConfig:
    """Everything an experiment needs to build a simulated system.

    ``sites`` maps site name -> number of data servers at that site.
    ``seed`` drives every RNG stream (see :class:`repro.sim.rng.RngStreams`).
    """

    cost: CostModel = field(default_factory=rt_pc_profile)
    sites: Dict[str, int] = field(default_factory=lambda: {"site0": 1})
    seed: int = 0
    tranman_threads: int = 20
    # Data-server pool size.  Lock waiters occupy a worker for up to
    # ``lock_wait_timeout``; under contention a pool this small convoys
    # (lock-release messages queue behind the very waiters they would
    # unblock), so open-loop runs raise it well above the default.
    server_threads: int = 4
    # Group commit is the throughput/latency trade of §3.5 — off by
    # default (the latency experiments), switched on for Figures 4-5.
    group_commit: bool = False
    use_multicast: bool = False
    # Ablation toggle: with the optimization off, read-only participants
    # prepare and join phase two like everyone else (paper §4.2, Q2:
    # "What is the effect of the read-only optimization?").
    read_only_optimization: bool = True
    keep_trace_events: bool = True

    def with_cost(self, **overrides: float) -> "SystemConfig":
        return replace(self, cost=self.cost.with_overrides(**overrides))


# Named profiles usable from the CLI/benchmarks.
PROFILES = {
    "rt_pc": rt_pc_profile,
    "vax_mp": vax_mp_profile,
    "wan": wan_profile,
}
