"""The disk manager: single point of access to the log, plus pageout.

Paper §2: "The disk manager is a virtual-memory buffer manager that
protects the disk copy of servers' data segments by cooperating with
servers and with Mach (via the external pager interface) to implement
the write-ahead log protocol.  Also, it is the only process that can
write into the log."  §3.5: "Camelot batches log records within the disk
manager, which is the single point of access to the log."

In the simulation the DiskMan is the object through which every log
append/force flows (servers and the TranMan call it in-process — the
paper's primitive costs already include this interaction), and it owns:

- the WAL + group-commit batcher + the log disk;
- a background lazy-flush sweep, which is what eventually makes
  *unforced* records (optimized subordinates' commit records, abort
  records) durable and triggers the piggybacked commit-acks;
- the buffer pool / pageout model for servers' data segments,
  enforcing the WAL invariant: a dirty page may be written back only
  when every log record up to the page's ``rec_lsn`` is durable.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, List, Optional

from repro.config import CostModel
from repro.log.batcher import GroupCommitBatcher
from repro.log.disk import DiskModel
from repro.log.records import LogRecord
from repro.log.storage import StableStore
from repro.log.wal import WriteAheadLog
from repro.mach.site import Site
from repro.sim.kernel import Kernel
from repro.sim.process import ProcessKilled, Sleep
from repro.sim.tracing import Tracer


class WalProtocolError(RuntimeError):
    """A page would have reached disk before its log records — the exact
    corruption the write-ahead-log protocol exists to prevent."""


class _BufferedPage:
    """One page of a server's data segment in the buffer pool."""

    __slots__ = ("key", "value", "dirty", "rec_lsn")

    def __init__(self, key: str):
        self.key = key
        self.value: Any = None
        self.dirty = False
        self.rec_lsn = 0  # highest log LSN describing this page's updates


class DiskManager:
    """One site's logger + buffer manager."""

    LAZY_FLUSH_POLL_MS = 10.0
    LAZY_FLUSH_DEBOUNCE_MS = 25.0
    PAGEOUT_INTERVAL_MS = 500.0

    def __init__(self, kernel: Kernel, site: Site, cost: CostModel,
                 store: StableStore, tracer: Tracer,
                 group_commit: bool = False):
        self.kernel = kernel
        self.site = site
        self.cost = cost
        self.tracer = tracer
        self.disk = DiskModel(kernel, cost, name=f"{site.name}.logdisk")
        # Data segments page out to their own spindle: the log disk is
        # dedicated to the log, as on the measured testbed.
        self.data_disk = DiskModel(kernel, cost, name=f"{site.name}.datadisk")
        self.wal = WriteAheadLog(kernel, cost, self.disk, store,
                                 site.name, tracer)
        self.batcher = GroupCommitBatcher(
            kernel, self.wal, tracer,
            window_ms=cost.log_batch_timer,
            batch_limit=cost.log_batch_limit,
            enabled=group_commit)
        # Buffer pool keyed by "server/page"; the disk image of data
        # segments (what survives a crash *besides* the log) is owned by
        # recovery, which in this model rebuilds from the log alone.
        self._pages: Dict[str, _BufferedPage] = {}
        self.forces_requested = 0
        self._sweeper = site.spawn(self._lazy_flush_loop(), "diskman.sweep")
        self._pager = site.spawn(self._pageout_loop(), "diskman.pager")

    # --------------------------------------------------------- log side

    def append(self, record: LogRecord) -> LogRecord:
        """Lazy log write (no disk I/O until a force or sweep)."""
        return self.wal.append(record)

    def force(self, lsn: Optional[int] = None) -> Generator[Any, Any, None]:
        """Synchronous force through the (possibly enabled) batcher."""
        self.forces_requested += 1
        self.tracer.record(self.kernel.now, "diskman.force", site=self.site.name)
        obs = self.tracer.obs
        if obs is not None and obs.keep:
            sid = obs.begin_cpu(self.kernel.now, "logger", self.site.name)
            yield from self.site.consume_cpu(self.cost.logger_service_cpu)
            obs.end(sid, self.kernel.now)
        else:
            if obs is not None:
                obs.count_cpu()
            yield from self.site.consume_cpu(self.cost.logger_service_cpu)
        yield from self.batcher.force(lsn)

    def append_and_force(self, record: LogRecord) -> Generator[Any, Any, LogRecord]:
        record = self.append(record)
        yield from self.force(record.lsn)
        return record

    def watch_durable(self, lsn: int, callback: Callable[[], None]) -> None:
        """``callback()`` once the record at ``lsn`` is on stable storage."""
        self.wal.add_durability_watch(lsn, callback)

    # ------------------------------------------------------ checkpoints

    def checkpoint(self, servers: Dict[str, Any],
                   tombstones: Optional[Dict[str, Any]] = None
                   ) -> Generator[Any, Any, int]:
        """Write a fuzzy checkpoint and truncate the log before it.

        ``servers`` maps server name -> DataServer; ``tombstones`` is
        the TranMan's resolved-outcome map, persisted so that truncating
        old commit records never makes a recovered site answer
        "no_state" for a decided transaction.  The log is reclaimed
        before ``min(checkpoint_lsn, oldest active transaction's first
        LSN)``, so recovery never needs more history than is retained.
        Returns the number of log records reclaimed.
        """
        from repro.log.records import checkpoint_record

        views = {name: server.committed_view()
                 for name, server in servers.items()}
        active = [server.oldest_active_lsn() for server in servers.values()]
        oldest_active = min((lsn for lsn in active if lsn > 0), default=0)
        tomb_payload = {tid: getattr(outcome, "value", str(outcome))
                        for tid, outcome in (tombstones or {}).items()}
        record = self.append(checkpoint_record(self.site.name, views,
                                               oldest_active,
                                               tombstones=tomb_payload))
        yield from self.force(record.lsn)
        cut = record.lsn if oldest_active == 0 \
            else min(record.lsn, oldest_active)
        reclaimed = self.wal.store.truncate_before(cut)
        self.tracer.record(self.kernel.now, "diskman.checkpoint",
                           site=self.site.name, lsn=record.lsn,
                           reclaimed=reclaimed)
        return reclaimed

    def _lazy_flush_loop(self) -> Generator[Any, Any, None]:
        """Background sweep making lazy records durable eventually.

        Debounced: the sweep waits for the log to go quiet so it lands
        between transactions instead of queueing ahead of the next
        commit force (a background flush must never add to the critical
        path).
        """
        try:
            while True:
                yield Sleep(self.LAZY_FLUSH_POLL_MS)
                if (self.wal.tail_lsn > self.wal.flushed_lsn
                        and (self.kernel.now - self.wal.last_append_at)
                        >= self.LAZY_FLUSH_DEBOUNCE_MS):
                    self.tracer.record(self.kernel.now, "diskman.lazy_sweep",
                                       site=self.site.name)
                    yield from self.wal.force(self.wal.tail_lsn)
        except ProcessKilled:
            raise

    # ------------------------------------------------------ buffer pool

    def touch_page(self, server: str, page: str, value: Any,
                   rec_lsn: int) -> None:
        """A server updated a page; remember the WAL constraint."""
        key = f"{server}/{page}"
        entry = self._pages.get(key)
        if entry is None:
            entry = _BufferedPage(key)
            self._pages[key] = entry  # lint: bounded(page cache bounded by working set)
        entry.value = value
        entry.dirty = True
        entry.rec_lsn = max(entry.rec_lsn, rec_lsn)

    def dirty_pages(self) -> List[str]:
        return sorted(k for k, p in self._pages.items() if p.dirty)

    def _pageout_loop(self) -> Generator[Any, Any, None]:
        """Periodically write dirty pages back, WAL-protocol safe.

        This is the external-pager cooperation of the real disk manager:
        pageout of a page whose log records are not yet durable must
        force the log first.
        """
        try:
            while True:
                yield Sleep(self.PAGEOUT_INTERVAL_MS)
                for key in self.dirty_pages():
                    entry = self._pages[key]
                    # The page may be re-dirtied while we wait for the
                    # log; loop until its records really are durable.
                    while entry.rec_lsn > self.wal.flushed_lsn:
                        yield from self.wal.force(entry.rec_lsn)
                    self._assert_wal_protocol(entry)
                    yield from self.data_disk.write(256)
                    entry.dirty = False
                    self.tracer.record(self.kernel.now, "diskman.pageout",
                                       site=self.site.name, page=key)
        except ProcessKilled:
            raise

    def _assert_wal_protocol(self, entry: _BufferedPage) -> None:
        if entry.rec_lsn > self.wal.flushed_lsn:
            raise WalProtocolError(
                f"page {entry.key} (rec_lsn={entry.rec_lsn}) would reach "
                f"disk before the log (flushed={self.wal.flushed_lsn})")

    # ------------------------------------------------------- statistics

    @property
    def disk_writes(self) -> int:
        return self.disk.writes
