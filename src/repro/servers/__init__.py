"""The Camelot process suite around the transaction manager.

Every computer running a data server also runs one instance of each of
four system processes (paper §2); this package implements them plus the
server/application layer:

- :mod:`repro.servers.diskman` — the disk manager: buffer/pageout
  control for servers' data segments, and the single point of access to
  the write-ahead log (with group commit).
- :mod:`repro.servers.comman` — the communication manager: forwards
  inter-site RPCs and *spies* on responses to track which transactions
  travelled to which sites.
- :mod:`repro.servers.recovery` — the recovery process: after a failure
  it reads the log and reconstructs server data and in-doubt protocol
  state.
- :mod:`repro.servers.lockmgr` — shared/exclusive locking with
  Moss-model family rules (runtime-library functionality in Camelot).
- :mod:`repro.servers.dataserver` — data servers: objects, operations,
  join-transaction, prepare/commit/abort/undo participation.
- :mod:`repro.servers.application` — application processes driving
  transactions through the public API.
"""

from repro.servers.lockmgr import LockManager, LockMode

__all__ = ["LockManager", "LockMode"]
