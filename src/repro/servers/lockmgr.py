"""Shared/exclusive locking with Moss-model nested-transaction rules.

Camelot's runtime library provides shared/exclusive mode locking;
servers "must serialize access to [their] data by locking" (paper §2).
With nested transactions the classic Moss rules apply:

- A transaction may acquire a READ lock if every holder of a WRITE lock
  on the object is an ancestor (or itself).
- A transaction may acquire a WRITE lock if every holder or retainer of
  any lock on the object is an ancestor (or itself).
- When a subtransaction commits, its parent *retains* its locks (lock
  inheritance).  When a subtransaction aborts, its locks vanish.
- When the top-level transaction commits or aborts, the whole family's
  locks are released.

The manager is a pure data structure (no simulator dependency): grants
are immediate or queued, and queued grants fire a callback when ready —
the data server bridges callbacks onto simulation events, and unit
tests call it directly.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Deque, Dict, List, Optional, Set

from repro.core.tid import TID


class LockMode(str, Enum):
    READ = "read"
    WRITE = "write"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


def _compatible_with_all(requester: TID, others: Set[TID]) -> bool:
    """Moss compatibility: every conflicting party must be an ancestor of
    (or equal to) the requester."""
    return all(other == requester or other.is_ancestor_of(requester)
               for other in others)


@dataclass
class _Waiter:
    tid: TID
    mode: LockMode
    callback: Callable[[], None]


@dataclass
class _LockEntry:
    """Lock state for one object."""

    holders: Dict[TID, LockMode] = field(default_factory=dict)
    retainers: Dict[TID, LockMode] = field(default_factory=dict)
    queue: Deque[_Waiter] = field(default_factory=deque)

    def writers(self) -> Set[TID]:
        return ({t for t, m in self.holders.items() if m is LockMode.WRITE}
                | {t for t, m in self.retainers.items() if m is LockMode.WRITE})

    def all_parties(self) -> Set[TID]:
        return set(self.holders) | set(self.retainers)

    @property
    def idle(self) -> bool:
        return not self.holders and not self.retainers and not self.queue


class LockManager:
    """All lock state for one data server."""

    def __init__(self) -> None:
        self._locks: Dict[str, _LockEntry] = {}
        self.grants = 0
        self.waits = 0

    # -------------------------------------------------------- acquiring

    def can_grant(self, obj: str, tid: TID, mode: LockMode) -> bool:
        entry = self._locks.get(obj)
        if entry is None:
            return True
        if mode is LockMode.READ:
            return _compatible_with_all(tid, entry.writers())
        return _compatible_with_all(tid, entry.all_parties())

    def acquire(self, obj: str, tid: TID, mode: LockMode,
                on_grant: Optional[Callable[[], None]] = None) -> bool:
        """Try to lock ``obj``; returns True on immediate grant.

        On False the request is queued and ``on_grant`` fires when the
        lock is eventually granted (FIFO, after compatibility).
        """
        entry = self._locks.setdefault(obj, _LockEntry())
        compatible = self.can_grant(obj, tid, mode)
        if compatible and not entry.queue:
            self._grant(entry, tid, mode)
            return True
        # Family fast-path: when an ancestor already holds or retains the
        # lock, the request must not queue behind unrelated waiters — a
        # child waiting behind a stranger who waits on the parent would
        # deadlock the family.
        if compatible and any(p.family == tid.family
                              for p in entry.all_parties()):
            self._grant(entry, tid, mode)
            return True
        # Re-requests by a holder for a weaker-or-equal mode succeed at
        # once (idempotent re-locking is common in retries).
        held = entry.holders.get(tid)
        if held is not None and (held is LockMode.WRITE or mode is LockMode.READ):
            self.grants += 1
            return True
        if on_grant is None:
            raise WouldBlock(f"{tid} must wait for {mode} lock on {obj!r}")
        self.waits += 1
        entry.queue.append(_Waiter(tid, mode, on_grant))
        return False

    def _grant(self, entry: _LockEntry, tid: TID, mode: LockMode) -> None:
        current = entry.holders.get(tid)
        if current is None or (current is LockMode.READ and mode is LockMode.WRITE):
            entry.holders[tid] = mode
        self.grants += 1

    def cancel_wait(self, obj: str, tid: TID) -> bool:
        """Remove ``tid``'s queued requests on ``obj`` (lock-wait timeout
        gave up).  Returns True if anything was cancelled."""
        entry = self._locks.get(obj)
        if entry is None:
            return False
        before = len(entry.queue)
        entry.queue = deque(w for w in entry.queue if w.tid != tid)
        cancelled = len(entry.queue) != before
        if cancelled:
            self._pump(obj)
        return cancelled

    def _pump(self, obj: str) -> None:
        """Grant queued requests that are now compatible, FIFO."""
        entry = self._locks.get(obj)
        if entry is None:
            return
        while entry.queue:
            waiter = entry.queue[0]
            if not self.can_grant(obj, waiter.tid, waiter.mode):
                break
            entry.queue.popleft()
            self._grant(entry, waiter.tid, waiter.mode)
            waiter.callback()
        if entry.idle:
            del self._locks[obj]

    # -------------------------------------------------- ends of txns

    def commit_child(self, child: TID) -> None:
        """Moss inheritance: the parent retains the child's locks."""
        parent = child.parent
        if parent is None:
            raise ValueError("commit_child on a top-level transaction")
        for obj in list(self._locks):
            entry = self._locks[obj]
            self._inherit(entry, child, parent)
            self._pump(obj)

    def _inherit(self, entry: _LockEntry, child: TID, parent: TID) -> None:
        for table in (entry.holders, entry.retainers):
            mode = table.pop(child, None)
            if mode is None:
                continue
            existing = entry.retainers.get(parent)
            if existing is None or (existing is LockMode.READ
                                    and mode is LockMode.WRITE):
                entry.retainers[parent] = mode

    def abort_subtree(self, tid: TID) -> None:
        """Drop every lock held/retained by ``tid`` or its descendants."""
        for obj in list(self._locks):
            entry = self._locks[obj]
            for table in (entry.holders, entry.retainers):
                stale = [t for t in table
                         if t == tid or tid.is_ancestor_of(t)]
                for t in stale:
                    del table[t]
            entry.queue = deque(w for w in entry.queue
                                if not (w.tid == tid
                                        or tid.is_ancestor_of(w.tid)))
            self._pump(obj)

    def release_family(self, family: str) -> None:
        """Top-level commit/abort: the whole family's locks go away."""
        for obj in list(self._locks):
            entry = self._locks[obj]
            for table in (entry.holders, entry.retainers):
                stale = [t for t in table if t.family == family]
                for t in stale:
                    del table[t]
            entry.queue = deque(w for w in entry.queue
                                if w.tid.family != family)
            self._pump(obj)

    # ------------------------------------------------------- inspection

    def holders_of(self, obj: str) -> Dict[TID, LockMode]:
        entry = self._locks.get(obj)
        return dict(entry.holders) if entry else {}

    def retainers_of(self, obj: str) -> Dict[TID, LockMode]:
        entry = self._locks.get(obj)
        return dict(entry.retainers) if entry else {}

    def waiting_on(self, obj: str) -> List[TID]:
        entry = self._locks.get(obj)
        return [w.tid for w in entry.queue] if entry else []

    def locked_objects(self) -> List[str]:
        return sorted(self._locks)

    def holds(self, obj: str, tid: TID, mode: Optional[LockMode] = None) -> bool:
        held = self._locks.get(obj)
        if held is None:
            return False
        got = held.holders.get(tid)
        if got is None:
            return False
        return mode is None or got is mode or got is LockMode.WRITE


class WouldBlock(RuntimeError):
    """acquire() without a callback would have had to wait."""
