"""Data servers: recoverable objects behind a message interface.

A data server "manages" one or more objects (paper §2): it does storage
layout, implements the advertised operations, serialises access by
locking, and participates in commitment.  The first time it processes an
operation on behalf of a transaction it notifies the local transaction
manager that it is joining (paper Figure 1, event 4).  Updates report
the old and new value of the object to the disk manager, "logged as late
as possible" (event 5).

Message interface (all on the server's request port):

=================  =====================================================
kind               effect
=================  =====================================================
``operation``      read or write one object under a lock
``prepare``        vote YES / READ_ONLY / NO; report the max update LSN
``drop_locks``     top-level commit: release the family's locks
``abort``          undo a (sub)transaction subtree, drop its locks
``commit_child``   Moss inheritance: parent retains the child's locks
``peek``           non-transactional read (tests/examples)
=================  =====================================================
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, Generator, List, Optional, Set, Tuple

from repro.config import CostModel
from repro.core.outcomes import Vote
from repro.core.tid import TID
from repro.log.records import update_record
from repro.mach.ipc import IpcFabric
from repro.mach.message import Message
from repro.mach.ports import Port
from repro.mach.site import Site
from repro.mach.threads import CThreadsPool
from repro.servers.diskman import DiskManager
from repro.servers.lockmgr import LockManager, LockMode
from repro.sim.events import SimEvent
from repro.sim.kernel import Kernel
from repro.sim.process import Sleep, Wait
from repro.sim.tracing import Tracer


class DataServer:
    """One data server process (with a small handler thread pool)."""

    def __init__(self, kernel: Kernel, site: Site, name: str,
                 fabric: IpcFabric, diskman: DiskManager, cost: CostModel,
                 tracer: Tracer, tranman_port: Optional[Port] = None,
                 threads: int = 4,
                 initial_objects: Optional[Dict[str, Any]] = None,
                 read_only_optimization: bool = True):
        self.kernel = kernel
        self.site = site
        self.name = name
        # Ablation toggle: vote YES even when read-only, forcing full
        # phase-two participation (paper §4.2, question 2).
        self.read_only_optimization = read_only_optimization
        self.fabric = fabric
        self.diskman = diskman
        self.cost = cost
        self.tracer = tracer
        self.tranman_port = tranman_port

        self.values: Dict[str, Any] = dict(initial_objects or {})
        self.locks = LockManager()
        # Per-object undo stacks: (tid, old_value), newest last.
        self._undo: Dict[str, List[Tuple[TID, Any]]] = {}
        self._writes: Dict[TID, List[str]] = {}
        self._reads: Dict[TID, Set[str]] = {}
        self._joined: Set[TID] = set()
        self._max_update_lsn: Dict[TID, int] = {}
        self._min_update_lsn: Dict[TID, int] = {}
        # Test hook: force the next prepare for a TID to vote NO.
        self.refuse_next_prepare: Set[TID] = set()

        self.port = site.create_port(name)
        self.pool = CThreadsPool(
            kernel, self.port, self._handle, size=threads,
            name=f"{site.name}/{name}",
            spawn=lambda body, nm: site.spawn(body, nm))
        self.operations = 0

    # --------------------------------------------------------- dispatch

    def _handle(self, msg: Message) -> Generator[Any, Any, None]:
        obs = self.tracer.obs
        if obs is not None and obs.keep:
            sid = obs.begin_cpu(self.kernel.now, "server", self.site.name,
                                msg)
            yield from self.site.consume_cpu(self.cost.server_service_cpu)
            obs.end(sid, self.kernel.now)
        else:
            if obs is not None:
                obs.count_cpu()
            yield from self.site.consume_cpu(self.cost.server_service_cpu)
        kind = msg.kind
        if kind == "operation":
            yield from self._op(msg)
        elif kind == "prepare":
            self._prepare(msg)
        elif kind == "drop_locks":
            self._drop_locks(msg)
        elif kind == "abort":
            yield from self._abort(msg)
        elif kind == "commit_child":
            self._commit_child(msg)
        elif kind == "peek":
            self.fabric.reply(msg, msg.reply(
                "peek_ok", value=self.values.get(msg.body["object"])))
        else:
            raise ValueError(f"{self.name}: unknown message kind {kind!r}")

    # ------------------------------------------------------- operations

    def _op(self, msg: Message) -> Generator[Any, Any, None]:
        tid = TID.parse(msg.body["tid"])
        op = msg.body["op"]
        obj = msg.body["object"]
        self.operations += 1
        if tid not in self._joined:
            self._join(tid)
        # "read_update" is SELECT-FOR-UPDATE: a read under a write lock,
        # avoiding the classic read-then-upgrade deadlock.
        mode = (LockMode.WRITE if op in ("write", "read_update")
                else LockMode.READ)
        granted = yield from self._lock(obj, tid, mode)
        if not granted:
            # Lock-wait timeout: this transaction is the deadlock (or
            # starvation) victim; the application is expected to abort.
            self.tracer.record(self.kernel.now, "server.lock_timeout",
                               site=self.site.name, object=obj,
                               tid=str(tid))
            self.fabric.reply(msg, msg.reply("op_failed",
                                             reason="lock timeout"))
            return
        yield Sleep(self.cost.data_access_write if op == "write"
                    else self.cost.data_access_read)
        if op in ("read", "read_update"):
            self._reads.setdefault(tid, set()).add(obj)
            self.fabric.reply(msg, msg.reply("op_ok",
                                             value=self.values.get(obj)))
            return
        if op != "write":
            raise ValueError(f"unknown operation {op!r}")
        old = self.values.get(obj)
        new = msg.body["value"]
        self._undo.setdefault(obj, []).append((tid, old))
        self.values[obj] = new
        self._writes.setdefault(tid, []).append(obj)
        # Event 5: report old and new value to the disk manager; the
        # record is logged lazily.
        record = self.diskman.append(update_record(
            str(tid), self.site.name, self.name, obj, old, new))
        self._max_update_lsn[tid] = max(
            self._max_update_lsn.get(tid, 0), record.lsn or 0)
        self._min_update_lsn.setdefault(tid, record.lsn or 0)
        self.diskman.touch_page(self.name, obj, new, record.lsn or 0)
        self.fabric.reply(msg, msg.reply("op_ok", value=new))

    def _join(self, tid: TID) -> None:
        """Notify the local TranMan we are taking part (event 4).

        Sent as a one-way message: it is off the operation's critical
        path, and port FIFO order guarantees the TranMan sees the join
        before any later commit request from the application.
        """
        self._joined.add(tid)
        if self.tranman_port is not None:
            join = Message(kind="join", body={"tid": str(tid),
                                              "server": self.name})
            self.fabric.send(self.tranman_port, join, flavour="oneway",
                             sender_site=self.site.name)
        self.tracer.record(self.kernel.now, "server.join", site=self.site.name,
                           server=self.name, tid=str(tid))

    def _lock(self, obj: str, tid: TID,
              mode: LockMode) -> Generator[Any, Any, bool]:
        """Acquire a lock; False on lock-wait timeout (victim)."""
        obs = self.tracer.obs
        if obs is not None:
            now = self.kernel.now
            obs.add(now, now + self.cost.get_lock,
                    "lock.get", site=self.site.name, tid=tid, object=obj)
        yield Sleep(self.cost.get_lock)
        granted = SimEvent(self.kernel, name=f"{self.name}.lock.{obj}",
                           ignore_retrigger=True)
        if self.locks.acquire(obj, tid, mode,
                              on_grant=lambda: granted.trigger(True)):
            return True
        self.tracer.record(self.kernel.now, "server.lock_wait",
                           site=self.site.name, object=obj, tid=str(tid))
        wait_sid = None
        if obs is not None:
            wait_sid = obs.begin(self.kernel.now, "lock.wait",
                                 site=self.site.name, tid=tid, object=obj)
        from repro.sim.events import any_of, timeout_event

        # Stagger the timeout deterministically per waiter, so two
        # deadlocked transactions never give up in the same instant and
        # one of them survives as the winner.
        self._wait_seq = getattr(self, "_wait_seq", 0) + 1
        digest = hashlib.sha256(
            f"{self.name}:{tid}:{self._wait_seq}".encode()).digest()
        stagger = 0.75 + 0.5 * (digest[0] / 255.0)
        winner = yield Wait(any_of(
            self.kernel,
            [granted, timeout_event(self.kernel,
                                    self.cost.lock_wait_timeout * stagger)],
            name=f"{self.name}.lockwait"))
        if obs is not None:
            obs.end(wait_sid, self.kernel.now)
        index, __ = winner
        if index == 0:
            return True
        # Timed out: withdraw from the queue (unless granted in the
        # same instant — then we keep it).
        if not self.locks.cancel_wait(obj, tid):
            return True
        return False

    # ------------------------------------------------------- commitment

    def _prepare(self, msg: Message) -> None:
        tid = TID.parse(msg.body["tid"])
        family_writes = [t for t in self._writes
                         if t.family == tid.family and self._writes[t]]
        if tid in self.refuse_next_prepare:
            self.refuse_next_prepare.discard(tid)
            vote = Vote.NO
        elif family_writes or not self.read_only_optimization:
            vote = Vote.YES
        else:
            vote = Vote.READ_ONLY
        max_lsn = max((self._max_update_lsn.get(t, 0) for t in family_writes),
                      default=0)
        self.tracer.record(self.kernel.now, "server.prepare",
                           site=self.site.name, server=self.name,
                           vote=vote.value)
        self.fabric.reply(msg, msg.reply("prepare_ok", vote=vote.value,
                                         max_lsn=max_lsn))

    def _drop_locks(self, msg: Message) -> None:
        """Top-level commit: event 11, 'drop the locks held by the
        transaction'.  Values already reflect the updates."""
        tid = TID.parse(msg.body["tid"])
        self.locks.release_family(tid.family)
        self._forget_family(tid.family, keep_values=True)
        obs = self.tracer.obs
        if obs is not None:
            obs.instant(self.kernel.now, "server.drop_locks",
                        site=self.site.name, tid=tid, server=self.name)
        if msg.reply_to is not None:
            self.fabric.reply(msg, msg.reply("drop_locks_ok"))

    def _abort(self, msg: Message) -> Generator[Any, Any, None]:
        """Undo the subtree rooted at tid and release its locks."""
        tid = TID.parse(msg.body["tid"])
        yield Sleep(self.cost.drop_lock)
        self.undo_subtree(tid)
        if tid.is_top_level:
            self.locks.release_family(tid.family)
            self._forget_family(tid.family, keep_values=True)
        else:
            self.locks.abort_subtree(tid)
        self.tracer.record(self.kernel.now, "server.abort",
                           site=self.site.name, server=self.name, tid=str(tid))
        if msg.reply_to is not None:
            self.fabric.reply(msg, msg.reply("abort_ok"))

    def undo_subtree(self, tid: TID) -> None:
        """Restore old values for writes by ``tid`` or descendants, in
        reverse order (correct even when interleaved with ancestors)."""
        for obj, stack in self._undo.items():
            keep: List[Tuple[TID, Any]] = []
            for writer, old in reversed(stack):
                if writer == tid or tid.is_ancestor_of(writer):
                    self.values[obj] = old
                else:
                    keep.append((writer, old))
            keep.reverse()
            self._undo[obj] = keep
        for t in list(self._writes):
            if t == tid or tid.is_ancestor_of(t):
                del self._writes[t]
                self._max_update_lsn.pop(t, None)
                self._min_update_lsn.pop(t, None)
        for t in list(self._reads):
            if t == tid or tid.is_ancestor_of(t):
                del self._reads[t]

    def _commit_child(self, msg: Message) -> None:
        child = TID.parse(msg.body["tid"])
        parent = child.parent
        if parent is None:
            raise ValueError("commit_child for a top-level transaction")
        self.locks.commit_child(child)
        # The child's writes become the parent's for undo purposes: keep
        # the entries (they carry the child's TID, which remains a
        # descendant of every ancestor — subtree undo still finds them).
        if msg.reply_to is not None:
            self.fabric.reply(msg, msg.reply("commit_child_ok"))

    def _forget_family(self, family: str, keep_values: bool) -> None:
        for table in (self._writes, self._reads, self._max_update_lsn,
                      self._min_update_lsn):
            for t in [t for t in table if t.family == family]:
                del table[t]
        for obj in list(self._undo):
            self._undo[obj] = [(t, old) for t, old in self._undo[obj]
                               if t.family != family]
            if not self._undo[obj]:
                del self._undo[obj]
        self._joined = {t for t in self._joined if t.family != family}

    # ------------------------------------------------------- inspection

    def peek(self, obj: str) -> Any:
        """Direct committed-value read for tests (no message round trip)."""
        return self.values.get(obj)

    def committed_view(self) -> Dict[str, Any]:
        """Object values with all uncommitted writes backed out — what a
        fuzzy checkpoint must record.

        Objects whose committed value is None (never-committed creations
        of in-flight transactions) are omitted: "absent" and "None" are
        the same observable state through the read API.
        """
        view = dict(self.values)
        for obj, stack in self._undo.items():
            if stack:
                # The oldest undo entry's old-value is the committed one.
                view[obj] = stack[0][1]
        return {obj: value for obj, value in view.items()
                if value is not None or obj not in self._undo}

    def oldest_active_lsn(self) -> int:
        """First LSN of any in-flight transaction's updates (0 if none);
        the log must be retained from here for recovery to see them."""
        if not self._min_update_lsn:
            return 0
        return min(self._min_update_lsn.values())

    def load_state(self, values: Dict[str, Any]) -> None:
        """Install recovered object values after a restart."""
        self.values = dict(values)
