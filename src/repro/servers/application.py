"""Application processes: the public face of the transaction interface.

An application "initiates a transaction by getting a transaction
identifier from the transaction manager and then performs data
manipulation operations by making synchronous inter-process procedure
calls to any number of data servers, local or remote ...  Eventually,
the application orders the transaction manager to either commit or
abort" (paper §2).

:class:`Application` provides those calls as process-body coroutines;
:class:`TransactionHandle` adds a small convenience wrapper so examples
read naturally::

    txn = yield from app.begin()
    yield from app.write(txn, "accounts", "alice", 90)
    outcome = yield from app.commit(txn)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Generator, List, Optional

from repro.config import CostModel
from repro.core.outcomes import Outcome, ProtocolKind, TwoPhaseVariant
from repro.core.tid import TID
from repro.mach.ipc import DeadCallError, IpcFabric
from repro.mach.message import Message
from repro.mach.ports import Port
from repro.mach.site import Site
from repro.servers.comman import CommunicationManager
from repro.sim.kernel import Kernel
from repro.sim.tracing import Tracer


class TransactionAborted(Exception):
    """Raised by operations/commit when the transaction cannot proceed."""

    def __init__(self, tid: TID, reason: str = ""):
        super().__init__(f"{tid} aborted{': ' + reason if reason else ''}")
        self.tid = tid
        self.reason = reason


@dataclass
class TxnRecord:
    """Client-side log of one transaction (used by benchmarks)."""

    tid: TID
    began_at: float
    commit_called_at: Optional[float] = None
    committed_at: Optional[float] = None
    outcome: Optional[Outcome] = None
    operations: int = 0

    @property
    def latency_ms(self) -> Optional[float]:
        if self.committed_at is None:
            return None
        return self.committed_at - self.began_at

    @property
    def commit_latency_ms(self) -> Optional[float]:
        """Commit-call to return: the transaction-management phase only."""
        if self.committed_at is None or self.commit_called_at is None:
            return None
        return self.committed_at - self.commit_called_at


class Application:
    """One application's connection to Camelot on its site."""

    def __init__(self, kernel: Kernel, site: Site, fabric: IpcFabric,
                 comman: CommunicationManager, tranman_port: Port,
                 cost: CostModel, tracer: Tracer, name: str = "app",
                 keep_history: bool = True):
        self.kernel = kernel
        self.site = site
        self.fabric = fabric
        self.comman = comman
        self.tranman_port = tranman_port
        self.cost = cost
        self.tracer = tracer
        self.name = name
        # ``keep_history=False`` is the streaming mode: per-transaction
        # records are dropped once the transaction completes, so a
        # million-transaction open-loop run holds O(in-flight) records
        # instead of O(total).  Outcome tallies stay exact either way.
        self.keep_history = keep_history
        self.history: List[TxnRecord] = []
        self.committed = 0
        self.aborted = 0
        self._records: Dict[TID, TxnRecord] = {}

    # ------------------------------------------------------ txn control

    def begin(self, parent: Optional[TID] = None,
              protocol: ProtocolKind = ProtocolKind.TWO_PHASE
              ) -> Generator[Any, Any, TID]:
        """Get a transaction identifier (paper Figure 1, event 2)."""
        msg = Message(kind="begin_transaction",
                      body={"protocol": protocol.value})
        if parent is not None:
            msg.body["parent"] = str(parent)
        reply = yield from self.fabric.call(self.tranman_port, msg,
                                            sender_site=self.site.name,
                                            reply_flavour="immediate")
        if reply.kind != "begin_ok":
            raise RuntimeError(f"begin failed: {reply.body.get('reason')}")
        tid = TID.parse(reply.body["tid"])
        record = TxnRecord(tid=tid, began_at=self.kernel.now)
        self._records[tid] = record
        if self.keep_history:
            self.history.append(record)  # lint: bounded(config-gated by keep_history)
        return tid

    def commit(self, tid: TID,
               protocol: Optional[ProtocolKind] = None,
               variant: TwoPhaseVariant = TwoPhaseVariant.OPTIMIZED,
               quorum_policy: str = "majority"
               ) -> Generator[Any, Any, Outcome]:
        """Commit-transaction: blocks until the protocol completes.

        The protocol kind is an argument of the call, exactly as in
        Camelot (§3.3); it defaults to whatever ``begin`` declared.
        ``quorum_policy`` ("majority" or "commit_weighted") selects the
        non-blocking protocol's replication quorums.
        """
        msg = Message(kind="commit_transaction",
                      body={"tid": str(tid), "variant": variant.value,
                            "quorum_policy": quorum_policy})
        if protocol is not None:
            msg.body["protocol"] = protocol.value
        pre_record = self._records.get(tid)
        if pre_record is not None:
            pre_record.commit_called_at = self.kernel.now
        reply = yield from self.fabric.call(self.tranman_port, msg,
                                            sender_site=self.site.name)
        outcome = Outcome(reply.body.get("outcome", Outcome.ABORTED.value)) \
            if reply.kind in ("commit_ok", "commit_aborted") else Outcome.ABORTED
        record = self._records.get(tid)
        if record is not None:
            record.committed_at = self.kernel.now
            record.outcome = outcome
            if outcome is Outcome.COMMITTED:
                self.committed += 1
            else:
                self.aborted += 1
            if not self.keep_history:
                self._records.pop(tid, None)
            obs = self.tracer.obs
            if obs is not None:
                # Whole-transaction and commit-phase envelopes, recorded
                # post-hoc from the client-side timestamps.
                obs.add(record.began_at, record.committed_at, "txn",
                        site=self.site.name, tid=str(tid),
                        outcome=outcome.value)
                if record.commit_called_at is not None:
                    obs.add(record.commit_called_at, record.committed_at,
                            "txn.commit", site=self.site.name, tid=str(tid))
        if reply.kind == "commit_failed":
            raise TransactionAborted(tid, reply.body.get("reason", ""))
        return outcome

    def abort(self, tid: TID) -> Generator[Any, Any, Outcome]:
        msg = Message(kind="abort_transaction", body={"tid": str(tid)})
        reply = yield from self.fabric.call(self.tranman_port, msg,
                                            sender_site=self.site.name)
        record = self._records.get(tid)
        if record is not None:
            record.committed_at = self.kernel.now
            record.outcome = Outcome.ABORTED
            self.aborted += 1
            if not self.keep_history:
                self._records.pop(tid, None)
        if reply.kind == "abort_failed":
            raise TransactionAborted(tid, reply.body.get("reason", ""))
        return Outcome.ABORTED

    # ------------------------------------------------------- operations

    def operation(self, service: str, op: str, obj: str, tid: TID,
                  value: Any = None, timeout: Optional[float] = None
                  ) -> Generator[Any, Any, Any]:
        """One data operation; every operation explicitly lists its TID."""
        body = {"tid": str(tid), "op": op, "object": obj}
        if op == "write":
            body["value"] = value
        msg = Message(kind="operation", body=body,
                      trans={"tid": str(tid)})
        record = self._records.get(tid)
        if record is not None:
            record.operations += 1
        try:
            reply = yield from self.comman.call_service(service, msg,
                                                        timeout=timeout)
        except DeadCallError:
            reply = None
        if reply is None:
            # The paper's rule: an unresponsive operation means the
            # invoker should initiate the abort protocol.
            yield from self.abort(tid)
            raise TransactionAborted(tid, f"operation on {service} timed out")
        if reply.kind == "op_failed":
            # Lock-wait timeout at the server: we are the deadlock
            # victim; abort and let the caller retry a fresh transaction.
            yield from self.abort(tid)
            raise TransactionAborted(tid, reply.body.get("reason", ""))
        return reply.body.get("value")

    def read(self, tid: TID, service: str, obj: str,
             timeout: Optional[float] = None) -> Generator[Any, Any, Any]:
        result = yield from self.operation(service, "read", obj, tid,
                                           timeout=timeout)
        return result

    def read_for_update(self, tid: TID, service: str, obj: str,
                        timeout: Optional[float] = None
                        ) -> Generator[Any, Any, Any]:
        """Read under a WRITE lock (SELECT FOR UPDATE): the idiom for a
        read-modify-write without the read-then-upgrade deadlock."""
        result = yield from self.operation(service, "read_update", obj, tid,
                                           timeout=timeout)
        return result

    def write(self, tid: TID, service: str, obj: str, value: Any,
              timeout: Optional[float] = None) -> Generator[Any, Any, Any]:
        result = yield from self.operation(service, "write", obj, tid,
                                           value=value, timeout=timeout)
        return result

    # ------------------------------------------------------- workloads

    def minimal_transaction(self, services: List[str], op: str = "write",
                            obj: str = "x",
                            protocol: ProtocolKind = ProtocolKind.TWO_PHASE,
                            variant: TwoPhaseVariant = TwoPhaseVariant.OPTIMIZED
                            ) -> Generator[Any, Any, TxnRecord]:
        """The paper's 'minimal transaction': one small operation at a
        single server at each site, then commit."""
        tid = yield from self.begin(protocol=protocol)
        record = self._records[tid]
        for service in services:
            if op == "write":
                yield from self.write(tid, service, obj, self.kernel.now)
            else:
                yield from self.read(tid, service, obj)
        yield from self.commit(tid, protocol=protocol, variant=variant)
        return record

    def latencies_ms(self) -> List[float]:
        return [r.latency_ms for r in self.history
                if r.latency_ms is not None]

    def commit_latencies_ms(self) -> List[float]:
        return [r.commit_latency_ms for r in self.history
                if r.commit_latency_ms is not None]

    def committed_count(self) -> int:
        """Committed transactions so far (exact in streaming mode too)."""
        return self.committed
