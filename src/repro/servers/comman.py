"""The communication manager (ComMan).

Applications and data servers use the ComMan exactly as a non-Camelot
program uses the NetMsgServer — same forwarding, same name service —
but the ComMan additionally *spies* on messages in flight (paper §3.1):

- when a request with a transaction identifier leaves a site, the ComMan
  records the destination site in the local TranMan's descriptor;
- when a **response** leaves a site, the ComMan appends the list of
  sites used to generate it; the ComMan at the destination strips that
  list and merges it with lists from previous responses.

If every operation responds, the site that began the transaction
eventually learns the identity of every participant — those are the
subordinates at commit time.  If an operation fails to respond, the
caller initiates the abort protocol, which tolerates incomplete
knowledge.

Cost model (paper §4.1, reproduced exactly): a Camelot remote RPC costs
28.5 ms = 19.1 (NetMsgServer↔NetMsgServer RPC) + 2 x 1.5 (extra
ComMan-NetMsgServer IPC) + 2 x 3.2 (ComMan CPU at each site, i.e.
1.6 ms per traversal, two traversals per site).  "The very high
processing time within communication managers is due to unusually
inefficient coding" — faithfully reproduced as a constant.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.config import CostModel
from repro.core.tid import TID
from repro.mach.ipc import IpcFabric
from repro.mach.message import Message
from repro.mach.netmsgserver import NetMsgServer
from repro.mach.site import Site
from repro.mach.threads import CThreadsPool
from repro.sim.kernel import Kernel
from repro.sim.process import Sleep
from repro.sim.tracing import Tracer


class CommunicationManager:
    """One site's ComMan: interposed RPC transport plus name service."""

    def __init__(self, kernel: Kernel, site: Site, fabric: IpcFabric,
                 nms: NetMsgServer, cost: CostModel, tracer: Tracer,
                 threads: int = 8):
        self.kernel = kernel
        self.site = site
        self.fabric = fabric
        self.nms = nms
        self.cost = cost
        self.tracer = tracer
        # Set by system assembly once the TranMan exists (mutual refs).
        self.tranman = None
        self.calls = 0
        # Inbound port for requests forwarded from remote ComMans.
        self.port = site.create_port("comman")
        self.pool = CThreadsPool(
            kernel, self.port, self._serve_inbound, size=threads,
            name=f"{site.name}/comman",
            spawn=lambda body, nm: site.spawn(body, nm))

    # ------------------------------------------------------ client side

    def lookup(self, service: str) -> Generator[Any, Any, tuple]:
        """Name service facade (paper Figure 1, event 1)."""
        result = yield from self.nms.lookup(service)
        return result

    def call_service(self, service: str, msg: Message,
                     timeout: Optional[float] = None
                     ) -> Generator[Any, Any, Optional[Message]]:
        """Synchronous call to a (possibly remote) service.

        Local destinations bypass the ComMan machinery entirely — a
        local operation is a plain 3 ms server IPC, as the paper charges
        it.  Remote destinations take the interposed path.
        """
        dest_site, dest_port = self.nms.directory.lookup(service)
        if dest_site == self.site.name:
            response = yield from self.fabric.call(
                dest_port, msg, sender_site=self.site.name,
                timeout=timeout)
            return response
        response = yield from self._remote_call(dest_site, service, msg, timeout)
        return response

    def _remote_call(self, dest_site: str, service: str, msg: Message,
                     timeout: Optional[float]
                     ) -> Generator[Any, Any, Optional[Message]]:
        self.calls += 1
        self.tracer.record(self.kernel.now, "comman.call", site=self.site.name,
                           dst=dest_site)
        tid = self._tid_of(msg)
        if tid is not None and self.tranman is not None:
            # Request-side spying: this transaction now spans dest_site.
            self.tranman.note_remote_site(tid, dest_site)
            msg.trans.setdefault("tid", str(tid))
            msg.trans["origin_site"] = self.site.name
        # ComMan CPU (outbound traversal) + the extra ComMan->NMS IPC.
        yield from self.site.consume_cpu(self.cost.comman_cpu_per_call / 2.0)
        yield Sleep(self.cost.local_ipc)
        dest_comman_port = self.nms.directory.lookup(f"comman@{dest_site}")[1]
        envelope = Message(kind="comman_forward",
                           body={"_target_service": service,
                                 "_inner_kind": msg.kind,
                                 "_inner_body": dict(msg.body)},
                           trans=dict(msg.trans))
        response = yield from self.nms.remote_call(dest_site, dest_comman_port,
                                                   envelope, timeout=timeout)
        if response is None:
            self.tracer.record(self.kernel.now, "comman.timeout",
                               site=self.site.name, dst=dest_site)
            return None
        # NMS->ComMan return IPC + inbound traversal CPU.
        yield Sleep(self.cost.local_ipc)
        yield from self.site.consume_cpu(self.cost.comman_cpu_per_call / 2.0)
        self._merge_spied_sites(response)
        return response

    def _merge_spied_sites(self, response: Message) -> None:
        tid = self._tid_of(response)
        sites = response.trans.pop("sites_used", None)
        if tid is None or sites is None or self.tranman is None:
            return
        self.tranman.note_remote_sites(tid, [s for s in sites
                                             if s != self.site.name])
        self.tracer.record(self.kernel.now, "comman.spied",
                           site=self.site.name, tid=str(tid),
                           sites=list(sites))

    # ------------------------------------------------------ server side

    def _serve_inbound(self, msg: Message) -> Generator[Any, Any, None]:
        """A request arrived from a remote ComMan: deliver it to the
        target server on this site, then send the response back with the
        spied site list attached."""
        yield from self.site.consume_cpu(self.cost.comman_cpu_per_call / 2.0)
        service = msg.body.get("_target_service")
        if service is None:
            raise ValueError("inbound ComMan message without _target_service")
        __, dest_port = self.nms.directory.lookup(service)
        inner = Message(kind=msg.body["_inner_kind"],
                        body=dict(msg.body["_inner_body"]),
                        trans=dict(msg.trans))
        # The ComMan-server hops on this side are inside the measured
        # 19.1 ms NetMsgServer leg — priced "immediate" so the total RPC
        # lands exactly on the paper's 28.5 ms accounting.
        response = yield from self.fabric.call(dest_port, inner,
                                               flavour="immediate",
                                               sender_site=self.site.name)
        yield from self.site.consume_cpu(self.cost.comman_cpu_per_call / 2.0)
        out = Message(kind=response.kind, body=dict(response.body),
                      trans=dict(response.trans))
        tid = self._tid_of(msg)
        if tid is not None and self.tranman is not None:
            known = self.tranman.known_sites(tid)
            out.trans["tid"] = str(tid)
            out.trans["sites_used"] = sorted(known | {self.site.name})
        self.fabric.reply(msg, out, flavour="immediate")

    @staticmethod
    def _tid_of(msg: Message) -> Optional[TID]:
        raw = msg.trans.get("tid") or msg.body.get("tid")
        if raw is None:
            return None
        return TID.parse(raw)
