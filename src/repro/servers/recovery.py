"""The recovery process: log analysis after a failure.

Paper §2: "After a failure (of server, site, or disk) or an abort, the
recovery process reads the log and instructs servers how to undo or redo
updates of interrupted transactions."

This module is deliberately split in two:

- :func:`analyze` is a *pure* function from the durable log to a
  :class:`RecoveryPlan` — exhaustively unit-testable;
- the system assembly layer applies the plan: installs redone object
  values in servers, seeds the TranMan's tombstones/pledges, and adopts
  reconstructed protocol machines (a prepared 2PC subordinate resumes
  its inquiry; an in-doubt non-blocking participant spawns a takeover; a
  committed-but-unacknowledged coordinator resumes notifications).

Redo policy: server data segments are rebuilt from the log alone
(redo-only, from update records of transactions whose top level
committed at this site, excluding updates under an aborted subtree).
Updates of still-in-doubt transactions are *pending redo*: applied only
once the reconstructed protocol machines resolve the outcome.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

from repro.core.nonblocking import NbSubordinate, NbSubState, NbTakeover
from repro.core.outcomes import Outcome, Vote
from repro.core.paxoscommit import PcCandidate, PcLeader, PcParticipant
from repro.core.quorum import QuorumSpec
from repro.core.tid import TID
from repro.core.twophase import TwoPhaseCoordinator, TwoPhaseSubordinate
from repro.log.records import LogRecord, RecordKind


@dataclass
class InDoubt:
    """One transaction whose outcome this site does not know."""

    tid: TID
    protocol: str            # "two_phase" | "non_blocking" | "paxos_commit"
    coordinator: str
    sites: List[str] = field(default_factory=list)
    quorum: Optional[Dict[str, int]] = None
    replicated: bool = False
    decision_data: Optional[Dict[str, Any]] = None
    pledged: bool = False
    # Paxos Commit only: the acceptor set, and whether this site's RM
    # prepared (False = acceptor duties only, e.g. a read-only RM).
    acceptors: List[str] = field(default_factory=list)
    prepared: bool = True


@dataclass
class UnackedCommit:
    """A coordinator commit record with no end record: someone may still
    be waiting for the commit notice."""

    tid: TID
    protocol: str
    pending_subordinates: List[str] = field(default_factory=list)
    acceptors: List[str] = field(default_factory=list)


@dataclass
class RecoveryPlan:
    """Everything the assembly layer needs to resurrect a site."""

    site: str
    # server name -> {object: committed value at the last checkpoint}
    base_values: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    # server name -> {object: recovered committed value} (applied on top
    # of base_values)
    redo_values: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    # tid-string -> outcome known from the log
    tombstones: Dict[str, Outcome] = field(default_factory=dict)
    # tid-strings with durable abort pledges
    pledges: Set[str] = field(default_factory=set)
    in_doubt: List[InDoubt] = field(default_factory=list)
    unacked_commits: List[UnackedCommit] = field(default_factory=list)
    # tid-string -> [(server, object, value)] applied if it resolves to
    # committed later
    pending_redo: Dict[str, List[Tuple[str, str, Any]]] = field(
        default_factory=dict)


def analyze(site: str, records: Iterable[LogRecord]) -> RecoveryPlan:
    """Pure log analysis: build the recovery plan for one site."""
    plan = RecoveryPlan(site=site)
    updates: List[LogRecord] = []
    prepares: Dict[str, LogRecord] = {}
    replications: Dict[str, LogRecord] = {}
    commits: Set[str] = set()
    coord_commits: Dict[str, LogRecord] = {}
    aborts: Set[str] = set()          # any aborted tid (incl. subtrees)
    ends: Set[str] = set()

    for record in records:
        kind = record.kind
        if kind is RecordKind.CHECKPOINT:
            # Records are in LSN order, so the last checkpoint wins; its
            # committed view is the base recovery builds on, and its
            # tombstones are the decided outcomes whose commit/abort
            # records the truncation reclaimed.
            plan.base_values = {
                s: dict(v)
                for s, v in record.payload["server_values"].items()}
            for tid_str, outcome in record.payload.get(
                    "tombstones", {}).items():
                plan.tombstones.setdefault(tid_str, Outcome(outcome))
        elif kind is RecordKind.UPDATE:
            updates.append(record)
        elif kind is RecordKind.PREPARE:
            prepares[record.tid] = record
        elif kind is RecordKind.REPLICATION:
            replications[record.tid] = record
        elif kind is RecordKind.COMMIT:
            commits.add(record.tid)
        elif kind is RecordKind.COORD_COMMIT:
            coord_commits[record.tid] = record
        elif kind is RecordKind.ABORT:
            aborts.add(record.tid)
        elif kind is RecordKind.ABORT_PLEDGE:
            plan.pledges.add(record.tid)
        elif kind is RecordKind.END:
            ends.add(record.tid)

    committed_top = commits | set(coord_commits)
    for tid_str in committed_top:
        plan.tombstones[tid_str] = Outcome.COMMITTED
    for tid_str in aborts:
        # Abort tombstones matter for top-level transactions; subtree
        # abort records only filter redo below.
        if TID.parse(tid_str).is_top_level and tid_str not in committed_top:
            plan.tombstones[tid_str] = Outcome.ABORTED

    aborted_tids = {TID.parse(t) for t in aborts}

    def under_aborted_subtree(writer: TID) -> bool:
        return any(a == writer or a.is_ancestor_of(writer)
                   for a in aborted_tids)

    # ----------------------------------------------------------- redo
    for record in updates:
        writer = TID.parse(record.tid)
        top = str(writer.top_level)
        if under_aborted_subtree(writer):
            continue
        server = record.payload["server"]
        obj = record.payload["object"]
        new = record.payload["new"]
        if top in committed_top:
            plan.redo_values.setdefault(server, {})[obj] = new
        elif top in prepares and top not in aborts:
            plan.pending_redo.setdefault(top, []).append((server, obj, new))

    # ------------------------------------------------------- in doubt
    def acceptor_state(tid_str: str) -> Optional[Dict[str, Any]]:
        rec = replications.get(tid_str)
        if rec is None or not rec.payload.get("paxos"):
            return None
        return {"promised": rec.payload.get("promised", 0),
                "accepted": rec.payload.get("accepted", [])}

    for tid_str, record in prepares.items():
        if tid_str in committed_top or tid_str in aborts or tid_str in ends:
            continue
        payload = record.payload
        if "acceptors" in payload:
            # Paxos Commit: the prepare record is also the ballot-0
            # acceptance of this RM's own instance (co-location).
            plan.in_doubt.append(InDoubt(
                tid=TID.parse(tid_str),
                protocol="paxos_commit",
                coordinator=payload.get("coordinator", ""),
                sites=list(payload.get("sites", [])),
                acceptors=list(payload["acceptors"]),
                decision_data=acceptor_state(tid_str),
                replicated=tid_str in replications,
            ))
            continue
        is_nb = "sites" in payload
        entry = InDoubt(
            tid=TID.parse(tid_str),
            protocol="non_blocking" if is_nb else "two_phase",
            coordinator=payload.get("coordinator", ""),
            sites=list(payload.get("sites", [])),
            quorum=payload.get("quorum_sizes"),
            replicated=tid_str in replications,
            pledged=tid_str in plan.pledges,
        )
        if entry.replicated:
            entry.decision_data = replications[tid_str].payload.get(
                "decision_data")
        plan.in_doubt.append(entry)

    # A Paxos acceptor record with no prepare record: this site's RM
    # never voted YES (read-only, or never reached), but its acceptor
    # made durable promises a quorum may have counted — those duties
    # must survive the crash even though the RM side has nothing to say.
    for tid_str, record in replications.items():
        payload = record.payload
        if not payload.get("paxos") or tid_str in prepares:
            continue
        if tid_str in committed_top or tid_str in aborts or tid_str in ends:
            continue
        plan.in_doubt.append(InDoubt(
            tid=TID.parse(tid_str),
            protocol="paxos_commit",
            coordinator=payload.get("leader", ""),
            sites=list(payload.get("sites", [])),
            acceptors=list(payload.get("acceptors", [])),
            decision_data=acceptor_state(tid_str),
            replicated=True,
            prepared=False,
        ))

    # --------------------------------------------- unacked coordinator
    for tid_str, record in coord_commits.items():
        if tid_str in ends:
            continue
        subs = list(record.payload.get("subordinates", []))
        if record.payload.get("protocol") == "paxos_commit":
            plan.unacked_commits.append(
                UnackedCommit(tid=TID.parse(tid_str),
                              protocol="paxos_commit",
                              pending_subordinates=subs,
                              acceptors=list(
                                  record.payload.get("acceptors", []))))
        elif subs:
            plan.unacked_commits.append(
                UnackedCommit(tid=TID.parse(tid_str), protocol="two_phase",
                              pending_subordinates=subs))
    # Non-blocking: a (lazy) commit record without an end record means
    # notify-phase acks may be missing; resume notification via takeover.
    for tid_str in commits:
        if tid_str in ends or tid_str in coord_commits:
            continue
        record = prepares.get(tid_str)
        if record is None or "sites" not in record.payload:
            continue  # plain 2PC subordinate commit: nothing owed
        if "acceptors" in record.payload:
            # Paxos participant: its commit tombstone answers the
            # leader's retransmitted outcome; nothing to spawn.
            continue
        plan.unacked_commits.append(
            UnackedCommit(tid=TID.parse(tid_str), protocol="non_blocking",
                          pending_subordinates=[
                              s for s in record.payload["sites"]
                              if s != site]))

    return plan


def build_machines(plan: RecoveryPlan, site: str,
                   protocol_timeout_ms: float = 1500.0) -> List[Tuple[Any, List[Any]]]:
    """Turn the plan's in-doubt/unacked entries into (machine,
    resume-effects) pairs for :meth:`TransactionManager.adopt_recovered_machine`."""
    out: List[Tuple[Any, List[Any]]] = []
    for entry in plan.in_doubt:
        if entry.protocol == "two_phase":
            sub = TwoPhaseSubordinate.recovered(
                entry.tid, site, entry.coordinator,
                outcome_timeout_ms=protocol_timeout_ms)
            out.append((sub, sub.resume_inquiry()))
            continue
        if entry.protocol == "paxos_commit":
            acc = entry.decision_data or {}
            pc = PcParticipant.recovered(
                entry.tid, site, entry.coordinator, entry.sites,
                entry.acceptors,
                promised=int(acc.get("promised", 0)),
                accepted=acc.get("accepted", ()),
                prepared=entry.prepared,
                protocol_timeout_ms=protocol_timeout_ms)
            out.append((pc, pc.resume_inquiry()))
            continue
        quorum = QuorumSpec.from_dict(entry.quorum) if entry.quorum else \
            QuorumSpec.majority(max(1, len(entry.sites)))
        # Participant machine reflecting durable state...
        sub = NbSubordinate(entry.tid, site, entry.coordinator, entry.sites,
                            quorum, outcome_timeout_ms=protocol_timeout_ms)
        sub.vote = Vote.YES
        if entry.pledged:
            sub.state = NbSubState.PLEDGED
            own_status = "abort_pledged"
        elif entry.replicated:
            sub.state = NbSubState.REPLICATED
            sub.decision_data = entry.decision_data
            own_status = "replicated"
        else:
            sub.state = NbSubState.PREPARED
            own_status = "prepared"
        out.append((sub, []))
        # ...plus a takeover to actually resolve it.
        takeover = NbTakeover(entry.tid, site, entry.sites, quorum,
                              own_status=own_status,
                              own_decision_data=entry.decision_data,
                              poll_timeout_ms=protocol_timeout_ms / 2,
                              notify_timeout_ms=protocol_timeout_ms)
        out.append((takeover, takeover.start()))
    for entry in plan.unacked_commits:
        if entry.protocol == "two_phase":
            coord = TwoPhaseCoordinator.recovered(
                entry.tid, site, entry.pending_subordinates,
                ack_timeout_ms=protocol_timeout_ms)
            out.append((coord, coord.resume_notifications()))
        elif entry.protocol == "paxos_commit":
            # The decision is durable, only notifications remain.  A
            # crashed leader resumes as a leader; a crashed *winning
            # candidate* at a non-acceptor site may not wear the leader
            # hat (leaders must belong to the acceptor set), so it
            # resumes its notify phase as a candidate instead.
            subs = [s for s in entry.pending_subordinates if s != site]
            if site in entry.acceptors:
                leader = PcLeader.recovered(
                    entry.tid, site, subs, entry.acceptors,
                    notify_timeout_ms=protocol_timeout_ms)
                out.append((leader, leader.resume_notifications()))
            else:
                cand = PcCandidate.resume_decision(
                    entry.tid, site, subs, entry.acceptors,
                    sites=[site] + subs,
                    notify_timeout_ms=protocol_timeout_ms)
                out.append((cand, cand.start()))
        else:
            sites = [site] + [s for s in entry.pending_subordinates]
            takeover = NbTakeover(entry.tid, site, sites,
                                  QuorumSpec.majority(len(sites)),
                                  own_status="committed",
                                  poll_timeout_ms=protocol_timeout_ms / 2,
                                  notify_timeout_ms=protocol_timeout_ms)
            out.append((takeover, takeover.start()))
    return out
