"""Multi-process demo cluster: real processes, real ``kill -9``.

Each site is one OS process (``python -m repro.live site``) with its own
WAL file; the driver talks to sites over their TCP control channel and
crashes them with ``SIGKILL`` — no cooperation, no cleanup, exactly the
fail-stop model the paper's recovery story assumes.

Deterministic crash windows: a site launched with ``--hold <token>``
completes the fsync for that force but *suppresses* the continuation —
the precise state a crash between the disk write and the protocol's
next step leaves behind.  The driver polls ``status`` until the hold
registers, then SIGKILLs the process, so "crashed right after forcing
the prepare record" is a scripted, repeatable event rather than a race.

Two scripted demos double as the CI ``live-smoke`` assertions:

- :func:`demo_two_phase_subordinate_kill` — subordinate dies
  mid-prepare; coordinator times out and aborts; the restarted
  subordinate recovers in-doubt from its real WAL and resolves by
  inquiry.
- :func:`demo_paxos_leader_kill` — the Paxos Commit *leader* dies after
  durably deciding but before telling anyone; the remaining F+1=2
  acceptors elect candidates and commit without it; the restarted
  leader finds its decision in the WAL and finishes notification.
  Consistency across all three sites is asserted.
"""

from __future__ import annotations

import os
import signal
import socket
import subprocess
import sys
import time
from typing import Any, Dict, List, Optional, Sequence

from repro.live.codec import FrameDecoder, encode_control_frame
from repro.live.ports import clear_port_file, wait_port_file

CONTROL_TIMEOUT_S = 5.0
POLL_S = 0.05


class ClusterError(RuntimeError):
    pass


# ----------------------------------------------------------- control IO


def control(run_dir: str, site: str, payload: Dict[str, Any],
            timeout_s: float = CONTROL_TIMEOUT_S) -> Dict[str, Any]:
    """One synchronous control round-trip with a site process."""
    port = wait_port_file(run_dir, site, timeout_s=timeout_s)
    with socket.create_connection(("127.0.0.1", port),
                                  timeout=timeout_s) as sock:
        sock.settimeout(timeout_s)
        sock.sendall(encode_control_frame(payload))
        decoder = FrameDecoder()
        while True:
            data = sock.recv(65536)
            if not data:
                raise ClusterError(f"{site}: connection closed mid-control")
            frames = decoder.feed(data)
            if frames:
                return frames[0][1]


def wait_until(predicate, timeout_s: float, what: str) -> None:
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(POLL_S)
    raise ClusterError(f"timed out after {timeout_s}s waiting for {what}")


# ------------------------------------------------------------ processes


def spawn_site(run_dir: str, site: str,
               hold: Sequence[str] = (),
               votes: Sequence[str] = ()) -> subprocess.Popen:
    """Launch one LiveSite process; returns once its port is published."""
    clear_port_file(run_dir, site)
    cmd = [sys.executable, "-m", "repro.live", "site",
           "--name", site, "--dir", run_dir]
    for token in hold:
        cmd += ["--hold", token]
    for vote in votes:
        cmd += ["--vote", vote]
    env = dict(os.environ)
    src = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(cmd, env=env)
    try:
        wait_port_file(run_dir, site, timeout_s=10.0)
    except TimeoutError as exc:
        proc.kill()
        raise ClusterError(f"site {site} never published its port") from exc
    return proc


def kill9(proc: subprocess.Popen) -> None:
    proc.send_signal(signal.SIGKILL)
    proc.wait()


def stop_site(run_dir: str, site: str, proc: subprocess.Popen) -> None:
    try:
        control(run_dir, site, {"cmd": "stop"}, timeout_s=2.0)
    except (ClusterError, OSError, TimeoutError):
        pass
    try:
        proc.wait(timeout=5.0)
    except subprocess.TimeoutExpired:
        proc.kill()
        proc.wait()


def _status(run_dir: str, site: str) -> Dict[str, Any]:
    return control(run_dir, site, {"cmd": "status"})


def _outcome_at(run_dir: str, site: str, tid: str) -> Optional[str]:
    status = _status(run_dir, site)
    return status["tombstones"].get(tid) or status["completions"].get(tid)


# ---------------------------------------------------------------- demos


def demo_two_phase_subordinate_kill(run_dir: str,
                                    log: Any = print) -> Dict[str, str]:
    """Kill a 2PC subordinate mid-prepare; recover it from its real WAL.

    Returns the final per-site outcome map (all "aborted").
    """
    sites = ["alpha", "beta", "gamma"]
    procs: Dict[str, subprocess.Popen] = {}
    try:
        # gamma will wedge right after fsyncing its prepare record.
        procs["alpha"] = spawn_site(run_dir, "alpha")
        procs["beta"] = spawn_site(run_dir, "beta")
        procs["gamma"] = spawn_site(run_dir, "gamma",
                                    hold=["2pc.prepare_force"])
        log("cluster up: alpha beta gamma "
            "(gamma holds 2pc.prepare_force)")
        begun = control(run_dir, "alpha",
                        {"cmd": "begin", "protocol": "2pc",
                         "subs": ["beta", "gamma"]})
        tid = begun["tid"]
        log(f"alpha began 2PC transaction {tid}")
        wait_until(lambda: _status(run_dir, "gamma")["held"],
                   10.0, "gamma to reach the prepare-force hold")
        kill9(procs.pop("gamma"))
        log("gamma SIGKILLed with a durable prepare record and "
            "no vote sent")
        # Coordinator's vote timeout fires -> presumed abort.
        wait_until(lambda: _outcome_at(run_dir, "alpha", tid) == "aborted",
                   20.0, "alpha to time out and abort")
        log(f"alpha aborted {tid} after vote timeout")
        procs["gamma"] = spawn_site(run_dir, "gamma")
        log("gamma restarted; recovering from its WAL")
        wait_until(lambda: _outcome_at(run_dir, "gamma", tid) == "aborted",
                   20.0, "recovered gamma to resolve by inquiry")
        status = _status(run_dir, "gamma")
        if not status["recovered"]:
            raise ClusterError("gamma did not run recovery at boot")
        outcomes = {s: _outcome_at(run_dir, s, tid) for s in sites}
        log(f"outcomes: {outcomes}")
        for s in ("alpha", "gamma"):
            if outcomes[s] != "aborted":
                raise ClusterError(f"{s} resolved {tid} to {outcomes[s]!r}, "
                                   "expected aborted")
        if outcomes["beta"] not in (None, "aborted"):
            raise ClusterError(f"beta disagrees: {outcomes['beta']!r}")
        return {s: o for s, o in outcomes.items() if o is not None}
    finally:
        for site, proc in procs.items():
            stop_site(run_dir, site, proc)


def demo_paxos_leader_kill(run_dir: str, log: Any = print) -> Dict[str, str]:
    """Kill the Paxos Commit leader post-decision; the cluster stays live.

    F=1 with 3 acceptors: the two surviving acceptors are a quorum, so
    the surviving RMs' candidates finish the commit without the leader.
    The restarted leader finds its durable decision and completes
    notification.  Returns the per-site outcome map (all "committed").
    """
    sites = ["alpha", "beta", "gamma"]
    procs: Dict[str, subprocess.Popen] = {}
    try:
        # alpha (leader) wedges after fsyncing the decision record,
        # before sending any PcOutcome.
        procs["alpha"] = spawn_site(run_dir, "alpha", hold=["pc.decide"])
        procs["beta"] = spawn_site(run_dir, "beta")
        procs["gamma"] = spawn_site(run_dir, "gamma")
        log("cluster up: alpha beta gamma (alpha holds pc.decide)")
        begun = control(run_dir, "alpha",
                        {"cmd": "begin", "protocol": "paxos",
                         "subs": ["beta", "gamma"]})
        tid = begun["tid"]
        log(f"alpha began Paxos Commit transaction {tid}")
        wait_until(lambda: _status(run_dir, "alpha")["held"],
                   10.0, "alpha to reach the decide-force hold")
        kill9(procs.pop("alpha"))
        log("alpha (leader) SIGKILLed: decision durable, nobody told")
        # Participants time out, run elections, and commit without alpha.
        for s in ("beta", "gamma"):
            wait_until(
                lambda s=s: _outcome_at(run_dir, s, tid) == "committed",
                30.0, f"{s} to commit via election (leaderless)")
        log("beta and gamma committed by quorum election — "
            "non-blocking at F=1 despite a dead leader")
        procs["alpha"] = spawn_site(run_dir, "alpha")
        log("alpha restarted; recovering from its WAL")
        wait_until(lambda: _outcome_at(run_dir, "alpha", tid) == "committed",
                   20.0, "recovered alpha to finish its commit")
        status = _status(run_dir, "alpha")
        if not status["recovered"]:
            raise ClusterError("alpha did not run recovery at boot")
        outcomes = {s: _outcome_at(run_dir, s, tid) for s in sites}
        log(f"outcomes: {outcomes}")
        for s in sites:
            if outcomes[s] != "committed":
                raise ClusterError(f"{s} resolved {tid} to {outcomes[s]!r}, "
                                   "expected committed")
        return {s: str(o) for s, o in outcomes.items()}
    finally:
        for site, proc in procs.items():
            stop_site(run_dir, site, proc)


def demo_happy_path(run_dir: str, log: Any = print) -> List[str]:
    """No failures: one commit per protocol family across 3 processes."""
    procs: Dict[str, subprocess.Popen] = {}
    tids: List[str] = []
    try:
        for s in ("alpha", "beta", "gamma"):
            procs[s] = spawn_site(run_dir, s)
        log("cluster up: alpha beta gamma")
        for coordinator, protocol in (("alpha", "2pc"), ("beta", "nb"),
                                      ("gamma", "paxos")):
            subs = [s for s in ("alpha", "beta", "gamma")
                    if s != coordinator]
            begun = control(run_dir, coordinator,
                            {"cmd": "begin", "protocol": protocol,
                             "subs": subs})
            tid = begun["tid"]
            wait_until(
                lambda: _outcome_at(run_dir, coordinator, tid) == "committed",
                20.0, f"{protocol} transaction {tid} to commit")
            log(f"{protocol}: {tid} committed (coordinator {coordinator})")
            tids.append(tid)
        return tids
    finally:
        for site, proc in procs.items():
            stop_site(run_dir, site, proc)
