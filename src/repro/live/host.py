"""The effect interpreter shared by the simulated and live harnesses.

:class:`SiteHost` hosts the unmodified sans-IO protocol machines
(:mod:`repro.core.twophase` / ``nonblocking`` / ``paxoscommit``) and
interprets their effects through a small :class:`Substrate` interface —
send a datagram, append/force the WAL, arm a timer.  The simulator
harness (:mod:`repro.live.simhost`) plugs the deterministic kernel +
token-ring LAN into that interface; the live harness
(:mod:`repro.live.site`) plugs asyncio TCP + an fsync-backed WAL file.
Everything above the interface — effect execution order, the stateless
protocol edge, takeover spawning, machine bookkeeping — is this one
class, so the conformance harness compares *substrates*, never two
reimplementations of the host.

Execution discipline (what makes transcripts comparable): each site
processes one input at a time.  An input (message, timer, durability
notice) runs its machine to quiescence — including inline waits for
log forces and the scripted local prepare — before the next queued
input is dispatched, exactly like the simulator TranMan's generator
``_execute`` loop.  Within one effect batch, a ForceLog's continuation
effects run before the batch's remaining effects (depth-first), again
matching ``TransactionManager._execute``.

The host itself is pure sans-IO: no asyncio, no sockets, no clock.  The
``live-io-fence`` lint rule would allow them here, but keeping the
interpreter substrate-blind is the whole point.

Scope vs the full simulator: there are no data servers behind a live
site, so ``LocalPrepare`` resolves to a scripted vote (YES unless
configured) and ``LocalCommit``/``LocalAbort`` are traced no-ops; and a
site that recovered from a non-empty WAL answers prepares for unknown
transactions conservatively (vote NO / stay silent), as the TranMan
does once a crash has destroyed volatile family state.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Sequence, Set, Tuple

from repro.config import CostModel
from repro.core.effects import (
    CancelTimer,
    Complete,
    Effect,
    Forget,
    ForceLog,
    LazySendDatagram,
    LocalAbort,
    LocalCommit,
    LocalPrepare,
    MulticastDatagram,
    SendDatagram,
    StartTakeover,
    StartTimer,
    Trace,
    WriteLog,
)
from repro.core.messages import (
    AbortNotice,
    CommitAck,
    CommitNotice,
    FamilyAbort,
    FamilyAbortAck,
    InquiryResponse,
    NbAbortJoin,
    NbAbortJoinAck,
    NbOutcome,
    NbOutcomeAck,
    NbPrepare,
    NbReplicate,
    NbReplicateAck,
    NbStateReport,
    NbStateRequest,
    NbVote,
    NestedCommit,
    PcOutcome,
    PcOutcomeAck,
    PcP1a,
    PcP1b,
    PcP2a,
    PcPhase2b,
    PcPrepare,
    PcVote,
    PrepareRequest,
    TxnInquiry,
    VoteResponse,
)
from repro.core.nonblocking import NbCoordinator, NbSubordinate, NbTakeover
from repro.core.outcomes import Outcome, ProtocolKind, TwoPhaseVariant, Vote
from repro.core.paxoscommit import PcCandidate, PcLeader, PcParticipant
from repro.core.quorum import QuorumSpec
from repro.core.tid import TID, TidGenerator
from repro.core.twophase import TwoPhaseCoordinator, TwoPhaseSubordinate
from repro.log.records import LogRecord, RecordKind, abort_pledge_record
from repro.servers.recovery import RecoveryPlan, build_machines

# Mirrors tranman.PIGGYBACK_SWEEP_MS: the cadence at which lazily queued
# (piggybacked) datagrams and the lazy WAL tail get flushed.
SWEEP_MS = 50.0

# Same dedup memory as DatagramService.
DEDUP_WINDOW = 4096

_STALE_RESPONSES = (VoteResponse, NbVote, CommitAck, NbReplicateAck,
                    NbAbortJoinAck, NbOutcomeAck, NbStateReport,
                    FamilyAbortAck, InquiryResponse, PcPhase2b, PcP1b,
                    PcOutcomeAck)

_TAKEOVER_ROUTED = (NbStateReport, NbReplicateAck, NbAbortJoinAck,
                    NbOutcomeAck, PcP1b, PcOutcomeAck)


class Substrate:
    """What a harness must provide; see module docstring.

    Timer handles are opaque; ``start_timer``/``schedule`` delays are in
    protocol milliseconds (virtual for the simulator, real for live).
    """

    def send(self, dst: str, message: Any) -> None:
        raise NotImplementedError

    def append(self, record: LogRecord) -> int:
        raise NotImplementedError

    def force(self, lsn: int, done: Callable[[], None]) -> None:
        raise NotImplementedError

    def force_tail(self) -> None:
        raise NotImplementedError

    def watch_durable(self, lsn: int, fn: Callable[[], None]) -> None:
        raise NotImplementedError

    def start_timer(self, delay_ms: float, fn: Callable[[], None]) -> Any:
        raise NotImplementedError

    def cancel_timer(self, handle: Any) -> None:
        raise NotImplementedError

    def trace(self, kind: str, detail: Dict[str, Any]) -> None:
        raise NotImplementedError


def build_coordinator(protocol: str, tid: TID, site: str,
                      subordinates: Sequence[str], cost: CostModel,
                      variant: TwoPhaseVariant = TwoPhaseVariant.OPTIMIZED
                      ) -> Any:
    """The coordinator machine the TranMan would build (``_commit``)."""
    subs = sorted(s for s in subordinates if s != site)
    kind = ProtocolKind(protocol) if protocol not in ("2pc", "nb", "paxos") \
        else {"2pc": ProtocolKind.TWO_PHASE,
              "nb": ProtocolKind.NON_BLOCKING,
              "paxos": ProtocolKind.PAXOS_COMMIT}[protocol]
    if kind is ProtocolKind.NON_BLOCKING:
        return NbCoordinator(
            tid, site, subs, quorum=QuorumSpec.majority(len(subs) + 1),
            use_multicast=False,
            vote_timeout_ms=cost.protocol_timeout,
            repl_timeout_ms=cost.protocol_timeout,
            notify_timeout_ms=cost.protocol_timeout)
    if kind is ProtocolKind.PAXOS_COMMIT:
        all_sites = [site] + subs
        n_acceptors = (len(all_sites) if len(all_sites) % 2
                       else len(all_sites) - 1)
        return PcLeader(
            tid, site, subs, acceptors=all_sites[:n_acceptors],
            quorum=QuorumSpec.paxos(n_acceptors),
            vote_timeout_ms=cost.protocol_timeout,
            notify_timeout_ms=cost.protocol_timeout)
    return TwoPhaseCoordinator(
        tid, site, subs, variant=variant, use_multicast=False,
        vote_timeout_ms=cost.protocol_timeout,
        ack_timeout_ms=cost.protocol_timeout)


class SiteHost:
    """One site's machines + effect interpreter over a substrate."""

    def __init__(self, site: str, substrate: Substrate, cost: CostModel,
                 votes: Optional[Dict[str, Vote]] = None,
                 hold_force_tokens: Sequence[str] = (),
                 prepare_delay_ms: float = 0.0):
        self.site = site
        self.substrate = substrate
        self.cost = cost
        self.scripted_votes = dict(votes or {})
        self.hold_force_tokens = set(hold_force_tokens)
        self.prepare_delay_ms = prepare_delay_ms

        self.tid_gen = TidGenerator(site)
        self.machines: Dict[TID, Any] = {}
        self.takeovers: Dict[TID, Any] = {}
        self.tombstones: Dict[str, Outcome] = {}
        self.pledges: Set[str] = set()
        self.read_only_votes: Set[str] = set()
        self.completions: Dict[str, Outcome] = {}
        self.held: List[str] = []
        self.duplicates = 0
        # A host that recovered from a non-empty WAL lost volatile state
        # in a crash: prepares for unknown transactions are refused.
        self.conservative = False
        self.on_complete: Optional[Callable[[TID, Outcome], None]] = None

        self._timers: Dict[Tuple[Any, str], Any] = {}
        self._lazy: Dict[str, List[Any]] = {}
        self._seen: Dict[str, Set[str]] = {}
        self._seen_order: Dict[str, List[str]] = {}
        # Input queue + effect-frame stack (see module docstring).
        self._inbox: Deque[Tuple[Any, ...]] = deque()
        self._frames: List[Tuple[Any, Any]] = []
        self._waiting = False
        self._active = False
        self._sweep_handle: Any = None

    # ------------------------------------------------------- lifecycle

    def start_sweeps(self) -> None:
        """Arm the periodic piggyback/WAL-tail flush (re-arms itself)."""
        self._sweep_handle = self.substrate.start_timer(SWEEP_MS, self._sweep)

    def stop_sweeps(self) -> None:
        if self._sweep_handle is not None:
            self.substrate.cancel_timer(self._sweep_handle)
            self._sweep_handle = None

    def _sweep(self) -> None:
        self.substrate.force_tail()
        for dst in list(self._lazy):
            self._flush_lazy(dst)
        self._sweep_handle = self.substrate.start_timer(SWEEP_MS, self._sweep)

    @property
    def idle(self) -> bool:
        return (not self.machines and not self.takeovers and not self._lazy
                and not self._frames and not self._inbox
                and not self._waiting)

    # ----------------------------------------------------- driver API

    def begin_commit(self, protocol: str, subordinates: Sequence[str],
                     tid: Optional[TID] = None,
                     variant: TwoPhaseVariant = TwoPhaseVariant.OPTIMIZED
                     ) -> TID:
        """Start commitment as coordinator; returns the transaction id."""
        if tid is None:
            tid = self.tid_gen.new_top_level()
        machine = build_coordinator(protocol, tid, self.site, subordinates,
                                    self.cost, variant)
        self.machines[tid] = machine
        self._inbox.append(("effects", machine, machine.start()))
        self._pump()
        return tid

    def recover_from_plan(self, plan: RecoveryPlan) -> None:
        """Adopt a recovery plan built from the durable WAL prefix."""
        for tid_str, outcome in plan.tombstones.items():
            self.tombstones[tid_str] = outcome
        self.pledges |= set(plan.pledges)
        self.conservative = True
        for machine, resume in build_machines(
                plan, self.site, protocol_timeout_ms=self.cost.protocol_timeout):
            if isinstance(machine, (NbTakeover, PcCandidate)):
                self.takeovers[machine.tid] = machine
            else:
                self.machines[machine.tid] = machine
            self._inbox.append(("effects", machine, list(resume)))
        self._pump()

    # -------------------------------------------------------- inbound

    def deliver(self, src: str, message: Any) -> None:
        """One datagram from the substrate (dedup mirror of the sim)."""
        key = getattr(message, "dedup_key", None)
        if key is not None and self._is_duplicate(src, key):
            self.duplicates += 1
            return
        self._inbox.append(("msg", src, message))
        self._pump()

    def _is_duplicate(self, src: str, key: str) -> bool:
        seen = self._seen.setdefault(src, set())
        order = self._seen_order.setdefault(src, [])
        if key in seen:
            return True
        seen.add(key)  # lint: bounded(DEDUP_WINDOW entries per peer)
        order.append(key)  # lint: bounded(DEDUP_WINDOW entries per peer)
        if len(order) > DEDUP_WINDOW:
            seen.discard(order.pop(0))
        return False

    # --------------------------------------------------------- engine

    def _pump(self) -> None:
        if self._active or self._waiting:
            return
        self._active = True
        try:
            while True:
                if self._frames:
                    machine, frame = self._frames[-1]
                    effect = next(frame, None)
                    if effect is None:
                        self._frames.pop()
                        continue
                    self._apply(machine, effect)
                    if self._waiting:
                        return
                    continue
                if self._inbox:
                    self._dispatch(self._inbox.popleft())
                    continue
                return
        finally:
            self._active = False

    def _push(self, machine: Any, effects: Sequence[Effect]) -> None:
        if effects:
            self._frames.append((machine, iter(effects)))

    def _dispatch(self, item: Tuple[Any, ...]) -> None:
        kind = item[0]
        if kind == "msg":
            _, src, message = item
            self._route(message)
        elif kind == "call":
            _, machine, method, args = item
            if method == "on_timer" and not self._machine_live(machine):
                return
            self._push(machine, getattr(machine, method)(*args) or [])
        elif kind == "effects":
            _, machine, effects = item
            self._push(machine, effects)

    def _machine_live(self, machine: Any) -> bool:
        tid = getattr(machine, "tid", None)
        if tid is None:
            return False
        return (self.machines.get(tid) is machine
                or self.takeovers.get(tid) is machine)

    # ----------------------------------------------- effect execution

    def _apply(self, machine: Any, effect: Effect) -> None:
        if isinstance(effect, SendDatagram):
            self._flush_lazy(effect.dst)  # piggyback opportunity
            self.substrate.send(effect.dst, effect.message)
        elif isinstance(effect, MulticastDatagram):
            for dst in effect.dsts:
                self.substrate.send(dst, effect.message)
        elif isinstance(effect, LazySendDatagram):
            if effect.dst == self.site:
                self.substrate.send(effect.dst, effect.message)
            else:
                self._lazy.setdefault(effect.dst, []).append(effect.message)  # lint: bounded(flushed every sweep)
        elif isinstance(effect, ForceLog):
            lsn = self.substrate.append(effect.record)
            self._note_membership(effect.record)
            self._waiting = True
            self.substrate.force(
                lsn, lambda: self._force_done(machine, effect.token))
        elif isinstance(effect, WriteLog):
            lsn = self.substrate.append(effect.record)
            self._note_membership(effect.record)
            if effect.token is not None:
                token = effect.token
                self.substrate.watch_durable(
                    lsn, lambda: self._enqueue_call(machine, "on_log_durable",
                                                    token))
        elif isinstance(effect, LocalPrepare):
            # Async like the TranMan's data-server round trip: the rest
            # of this effect batch (e.g. a leader's prepare sends) runs
            # now; the vote re-enters via the inbox when it resolves.
            tid = effect.tid
            self.substrate.start_timer(
                self.prepare_delay_ms,
                lambda: self._local_prepared(machine, tid))
        elif isinstance(effect, (LocalCommit, LocalAbort)):
            kind = "commit" if isinstance(effect, LocalCommit) else "abort"
            self.substrate.trace(f"live.local_{kind}",
                                 {"tid": str(effect.tid)})
        elif isinstance(effect, Complete):
            self._complete(effect)
        elif isinstance(effect, Forget):
            self._forget(machine, effect.tid)
        elif isinstance(effect, StartTimer):
            key = (machine, effect.token)
            existing = self._timers.pop(key, None)
            if existing is not None:
                self.substrate.cancel_timer(existing)
            token = effect.token
            self._timers[key] = self.substrate.start_timer(  # lint: bounded(per live machine timer tokens)
                effect.delay_ms, lambda: self._fire_timer(machine, token))
        elif isinstance(effect, CancelTimer):
            handle = self._timers.pop((machine, effect.token), None)
            if handle is not None:
                self.substrate.cancel_timer(handle)
        elif isinstance(effect, StartTakeover):
            self._start_takeover(effect.tid)
        elif isinstance(effect, Trace):
            detail = {k: v for k, v in effect.detail.items() if k != "site"}
            self.substrate.trace(effect.kind, detail)
        else:
            raise ValueError(f"unknown effect {effect!r}")

    def _force_done(self, machine: Any, token: str) -> None:
        self._waiting = False
        if token in self.hold_force_tokens:
            # Deterministic kill window: the record is durable but the
            # machine never re-enters — exactly the state a crash
            # between fsync and continuation would leave behind.
            self.held.append(token)
            self.substrate.trace("live.force_held", {"token": token})
        else:
            self._push(machine, machine.on_log_forced(token) or [])
        self._pump()

    def _local_prepared(self, machine: Any, tid: TID) -> None:
        vote = self.scripted_votes.get(self.site, Vote.YES)
        if vote is Vote.READ_ONLY:
            self.read_only_votes.add(str(tid))  # lint: bounded(demo-scale host, no retire log)
        self.substrate.trace("live.local_prepared",
                             {"tid": str(tid), "vote": vote.value})
        self._enqueue_call(machine, "on_local_prepared", vote)

    def _enqueue_call(self, machine: Any, method: str, *args: Any) -> None:
        self._inbox.append(("call", machine, method, args))
        self._pump()

    def _fire_timer(self, machine: Any, token: str) -> None:
        self._timers.pop((machine, token), None)
        self._enqueue_call(machine, "on_timer", token)

    def _flush_lazy(self, dst: str) -> None:
        queued = self._lazy.pop(dst, None)
        if not queued:
            return
        for message in queued:
            self.substrate.send(dst, message)

    def _note_membership(self, record: LogRecord) -> None:
        if record.kind is RecordKind.ABORT_PLEDGE:
            self.pledges.add(record.tid)  # lint: bounded(demo-scale host, no retire log)
            sub = self.machines.get(TID.parse(record.tid))
            if isinstance(sub, NbSubordinate):
                sub.note_local_pledge()
        elif record.kind is RecordKind.REPLICATION:
            sub = self.machines.get(TID.parse(record.tid))
            if isinstance(sub, NbSubordinate):
                sub.note_local_replication()

    def _complete(self, effect: Complete) -> None:
        tid_str = str(effect.tid)
        self.tombstones[tid_str] = effect.outcome  # lint: bounded(demo-scale host, no retire log)
        self.completions[tid_str] = effect.outcome  # lint: bounded(demo-scale host, no retire log)
        self.substrate.trace("live.complete",
                             {"tid": tid_str, "outcome": effect.outcome.value})
        if self.on_complete is not None:
            self.on_complete(effect.tid, effect.outcome)

    def _forget(self, machine: Any, tid: TID) -> None:
        outcome = getattr(machine, "outcome", None)
        if outcome is not None:
            self.tombstones[str(tid)] = outcome  # lint: bounded(demo-scale host, no retire log)
        if self.machines.get(tid) is machine:
            del self.machines[tid]
        if self.takeovers.get(tid) is machine:
            del self.takeovers[tid]
        for key in [k for k in self._timers if k[0] is machine]:
            self.substrate.cancel_timer(self._timers.pop(key))

    def _start_takeover(self, tid: TID) -> None:
        if tid in self.takeovers:
            return
        sub = self.machines.get(tid)
        if isinstance(sub, (PcParticipant, PcLeader)):
            candidate = PcCandidate(
                tid, self.site, sub.sites, sub.acceptors, sub.quorum,
                poll_timeout_ms=self.cost.protocol_timeout / 2,
                notify_timeout_ms=self.cost.protocol_timeout)
            self.takeovers[tid] = candidate
            self.substrate.trace("live.takeover",
                                 {"tid": str(tid), "status": "paxos_election"})
            self._push(candidate, candidate.start())
            return
        if not isinstance(sub, NbSubordinate):
            return
        status, data = sub.status_report()
        takeover = NbTakeover(tid, self.site, sub.sites, sub.quorum,
                              own_status=status, own_decision_data=data,
                              poll_timeout_ms=self.cost.protocol_timeout / 2,
                              notify_timeout_ms=self.cost.protocol_timeout)
        self.takeovers[tid] = takeover
        self.substrate.trace("live.takeover",
                             {"tid": str(tid), "status": status})
        self._push(takeover, takeover.start())

    # ------------------------------------------------ message routing

    def _route(self, pmsg: Any) -> None:
        """Mirror of ``TransactionManager._on_datagram``."""
        tid: TID = pmsg.tid
        takeover = self.takeovers.get(tid)
        if takeover is not None and isinstance(pmsg, _TAKEOVER_ROUTED):
            self._push(takeover, takeover.on_message(pmsg) or [])
            return
        machine = self.machines.get(tid)
        if isinstance(pmsg, PcPhase2b) and pmsg.ballot != 0 \
                and takeover is not None:
            self._push(takeover, takeover.on_message(pmsg) or [])
            return
        if isinstance(pmsg, (NbOutcome, PcOutcome)):
            handled = False
            if machine is not None:
                self._push(machine, machine.on_message(pmsg) or [])
                handled = True
            if takeover is not None:
                self._push(takeover, takeover.on_message(pmsg) or [])
                handled = True
            if not handled:
                self._stateless(pmsg)
            return
        if machine is not None:
            self._push(machine, machine.on_message(pmsg) or [])
            return
        self._stateless(pmsg)

    def _spawn(self, machine: Any, effects: Sequence[Effect]) -> None:
        self.machines[machine.tid] = machine
        self._push(machine, effects)

    def _stateless(self, pmsg: Any) -> None:
        """Protocol edge for transactions with no live machine here.

        Mirrors ``TransactionManager._stateless`` with two deliberate
        deltas (documented in DESIGN.md §11): a fresh live site accepts
        any prepare (there is no application to have "begun" the
        transaction first), and a crash-recovered site refuses unknown
        transactions exactly as the TranMan's destroyed family state
        makes it do.
        """
        tid: TID = pmsg.tid
        tomb = self.tombstones.get(str(tid))
        timeout = self.cost.protocol_timeout
        if isinstance(pmsg, PrepareRequest):
            if tomb is Outcome.COMMITTED:
                self.substrate.send(pmsg.sender,
                                    CommitAck(tid=tid, sender=self.site))
            elif str(tid) in self.read_only_votes:
                self.substrate.send(pmsg.sender, VoteResponse(
                    tid=tid, sender=self.site, vote=Vote.READ_ONLY))
            elif tomb is Outcome.ABORTED or self.conservative:
                self.substrate.send(pmsg.sender, VoteResponse(
                    tid=tid, sender=self.site, vote=Vote.NO))
            else:
                sub = TwoPhaseSubordinate(tid, self.site, pmsg.sender,
                                          variant=pmsg.variant,
                                          outcome_timeout_ms=timeout)
                self._spawn(sub, sub.start())
        elif isinstance(pmsg, NbPrepare):
            if tomb is Outcome.COMMITTED:
                self.substrate.send(pmsg.sender,
                                    NbOutcomeAck(tid=tid, sender=self.site))
            elif str(tid) in self.read_only_votes:
                self.substrate.send(pmsg.sender, NbVote(
                    tid=tid, sender=self.site, vote=Vote.READ_ONLY))
            elif tomb is Outcome.ABORTED or (
                    self.conservative and str(tid) not in self.pledges):
                self.substrate.send(pmsg.sender, NbVote(
                    tid=tid, sender=self.site, vote=Vote.NO))
            else:
                sub = NbSubordinate(tid, self.site, pmsg.sender,
                                    list(pmsg.sites), pmsg.quorum,
                                    outcome_timeout_ms=timeout,
                                    already_pledged=str(tid) in self.pledges)
                self._spawn(sub, sub.start())
        elif isinstance(pmsg, CommitNotice):
            if tomb is Outcome.COMMITTED:
                self.substrate.send(pmsg.sender,
                                    CommitAck(tid=tid, sender=self.site))
        elif isinstance(pmsg, AbortNotice):
            pass  # nothing known, nothing to do (presumed abort)
        elif isinstance(pmsg, TxnInquiry):
            outcome = tomb if tomb is not None else Outcome.ABORTED
            self.substrate.send(pmsg.sender, InquiryResponse(
                tid=tid, sender=self.site, outcome=outcome))
        elif isinstance(pmsg, NbReplicate):
            self._stateless_replicate(pmsg, tomb)
        elif isinstance(pmsg, NbAbortJoin):
            self._stateless_abort_join(pmsg, tomb)
        elif isinstance(pmsg, NbStateRequest):
            if tomb is Outcome.COMMITTED:
                status = "committed"
            elif tomb is Outcome.ABORTED:
                status = "aborted"
            elif str(tid) in self.pledges:
                status = "abort_pledged"
            else:
                status = "no_state"
            self.substrate.send(pmsg.sender, NbStateReport(
                tid=tid, sender=self.site, status=status, round=pmsg.round))
        elif isinstance(pmsg, NbOutcome):
            self._check_tombstone(tid, tomb, pmsg.outcome)
            self.substrate.send(pmsg.sender,
                                NbOutcomeAck(tid=tid, sender=self.site))
        elif isinstance(pmsg, PcPrepare):
            self._stateless_prepare_pc(pmsg, tomb)
        elif isinstance(pmsg, (PcVote, PcP1a, PcP2a)):
            self._stateless_pc_acceptor(pmsg, tomb)
        elif isinstance(pmsg, PcOutcome):
            self._check_tombstone(tid, tomb, pmsg.outcome)
            self.substrate.send(pmsg.sender,
                                PcOutcomeAck(tid=tid, sender=self.site))
        elif isinstance(pmsg, (NestedCommit, FamilyAbort)):
            # Nested transactions and the family abort protocol need the
            # application/server layer the live host does not carry.
            if isinstance(pmsg, FamilyAbort):
                self.substrate.send(pmsg.sender,
                                    FamilyAbortAck(tid=tid, sender=self.site))
        elif isinstance(pmsg, _STALE_RESPONSES):
            pass  # stale response to a machine that already finished
        else:
            raise ValueError(f"unhandled datagram payload {pmsg!r}")

    def _check_tombstone(self, tid: TID, tomb: Optional[Outcome],
                         outcome: Outcome) -> None:
        if tomb is not None and tomb is not outcome:
            raise AssertionError(
                f"{tid}: outcome {outcome} conflicts with tombstone "
                f"{tomb} at {self.site}")

    def _stateless_replicate(self, pmsg: NbReplicate,
                             tomb: Optional[Outcome]) -> None:
        tid = pmsg.tid
        if str(tid) in self.pledges or tomb is Outcome.ABORTED:
            self.substrate.send(pmsg.sender, NbReplicateAck(
                tid=tid, sender=self.site, ok=False))
            return
        if tomb is Outcome.COMMITTED:
            self.substrate.send(pmsg.sender, NbReplicateAck(
                tid=tid, sender=self.site, ok=True))
            return
        helper = NbSubordinate.helper(
            tid, self.site, pmsg,
            outcome_timeout_ms=self.cost.protocol_timeout)
        self.machines[tid] = helper
        self._push(helper, helper.on_message(pmsg) or [])

    def _stateless_abort_join(self, pmsg: NbAbortJoin,
                              tomb: Optional[Outcome]) -> None:
        tid = pmsg.tid
        if tomb is Outcome.COMMITTED:
            self.substrate.send(pmsg.sender, NbAbortJoinAck(
                tid=tid, sender=self.site, ok=False))
            return
        if str(tid) in self.pledges or tomb is Outcome.ABORTED:
            self.substrate.send(pmsg.sender, NbAbortJoinAck(
                tid=tid, sender=self.site, ok=True))
            return
        # Durable pledge: force it, then acknowledge — via a one-shot
        # effect frame so the force waits inline like every other force.
        record = abort_pledge_record(str(tid), self.site)
        pledge_machine = _PledgeAck(self.site, pmsg)
        self._push(pledge_machine,
                   [ForceLog(record, _PledgeAck.TOKEN)])

    def _stateless_prepare_pc(self, pmsg: PcPrepare,
                              tomb: Optional[Outcome]) -> None:
        tid = pmsg.tid
        if tomb is Outcome.COMMITTED:
            self.substrate.send(pmsg.sender,
                                PcOutcomeAck(tid=tid, sender=self.site))
            return
        if str(tid) in self.read_only_votes:
            targets = [a for a in pmsg.acceptors if a != self.site]
            if pmsg.sender not in targets:
                targets.append(pmsg.sender)
            for dst in targets:
                self.substrate.send(dst, PcVote(
                    tid=tid, sender=self.site, vote=Vote.READ_ONLY,
                    leader=pmsg.sender, sites=pmsg.sites,
                    acceptors=pmsg.acceptors))
            return
        if tomb is Outcome.ABORTED:
            self.substrate.send(pmsg.sender, PcOutcome(
                tid=tid, sender=self.site, outcome=Outcome.ABORTED))
            return
        if self.conservative:
            # We may have voted READ_ONLY (volatile) before the crash; an
            # RM must never propose two ballot-0 values.  Stay silent and
            # let the leader's timeout or an election resolve us.
            return
        sub = PcParticipant(tid, self.site, pmsg.sender,
                            list(pmsg.sites), list(pmsg.acceptors),
                            QuorumSpec.paxos(len(pmsg.acceptors)),
                            protocol_timeout_ms=self.cost.protocol_timeout)
        self._spawn(sub, sub.start())

    def _stateless_pc_acceptor(self, pmsg: Any,
                               tomb: Optional[Outcome]) -> None:
        tid = pmsg.tid
        if tomb is not None:
            self.substrate.send(pmsg.sender, PcOutcome(
                tid=tid, sender=self.site, outcome=tomb))
            return
        if self.site not in pmsg.acceptors:
            return  # stale / misrouted: we owe no acceptor duties
        if not self.conservative:
            # Acceptor traffic overtook the leader's PcPrepare (votes
            # come from third-party RMs, so TCP FIFO does not order
            # them): spawn the full participant, then deliver.
            sub = PcParticipant(tid, self.site,
                                pmsg.leader or pmsg.sender,
                                list(pmsg.sites), list(pmsg.acceptors),
                                QuorumSpec.paxos(len(pmsg.acceptors)),
                                protocol_timeout_ms=self.cost.protocol_timeout)
            self.machines[tid] = sub
            self._push(sub, (sub.start() or []) + (sub.on_message(pmsg) or []))
            return
        sub = PcParticipant.recovered(
            tid, self.site, leader=pmsg.leader or pmsg.sender,
            sites=list(pmsg.sites), acceptors=list(pmsg.acceptors),
            prepared=False,
            protocol_timeout_ms=self.cost.protocol_timeout)
        self.machines[tid] = sub
        self.substrate.trace("live.acceptor_rebuilt",
                             {"tid": str(tid),
                              "kind_of": type(pmsg).__name__})
        self._push(sub, sub.on_message(pmsg) or [])


class _PledgeAck:
    """One-shot pseudo-machine: ack an NbAbortJoin once the pledge forced."""

    TOKEN = "live.pledge_force"

    def __init__(self, site: str, request: NbAbortJoin):
        self.tid = request.tid
        self._site = site
        self._request = request

    def on_log_forced(self, token: str) -> List[Effect]:
        if token != self.TOKEN:
            return []
        return [SendDatagram(self._request.sender, NbAbortJoinAck(
            tid=self._request.tid, sender=self._site, ok=True))]
