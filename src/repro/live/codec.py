"""Wire codec: versioned, length-prefixed, CRC-checked frames.

Frame layout (all integers big-endian)::

    magic    4 bytes   b"RPRO"
    version  1 byte    1
    kind     1 byte    1 = protocol message, 2 = control (cluster driver)
    length   4 bytes   payload byte count (<= MAX_PAYLOAD)
    crc32    4 bytes   CRC-32 of the payload bytes
    payload  N bytes   canonical JSON

A protocol-message payload is an envelope ``{"src": <site>, "msg":
{...}}`` where ``msg`` serialises one :mod:`repro.core.messages`
dataclass; the ``type`` key names the class and every other key is a
field.  Control payloads are free-form JSON dicts used by the cluster
driver (begin/status/transcript/stop).

The decoder is incremental (feed it arbitrary chunks) and *strict*: a
bad magic, unknown version, oversized length, CRC mismatch, or
undecodable payload raises :class:`FrameError` with a ``cause`` tag.  A
``LiveSite`` never lets that propagate — it drops the connection and
counts the drop by cause, mirroring ``Lan.drop_counts()``.

The same ``message_to_dict`` serialisation (sorted keys, compact
separators) is what the conformance harness canonicalizes transcripts
with, so "what went on the wire" and "what the transcript says" cannot
drift apart.
"""

from __future__ import annotations

import dataclasses
import json
import struct
import zlib
from enum import Enum
from typing import Any, Callable, Dict, List, Tuple

from repro.core.messages import ANY_MESSAGE
from repro.core.outcomes import Outcome, TwoPhaseVariant, Vote
from repro.core.quorum import QuorumSpec
from repro.core.tid import TID

MAGIC = b"RPRO"
VERSION = 1
KIND_MESSAGE = 1
KIND_CONTROL = 2
MAX_PAYLOAD = 256 * 1024

_HEADER = struct.Struct(">4sBBII")
HEADER_SIZE = _HEADER.size

_REGISTRY = {cls.__name__: cls for cls in ANY_MESSAGE}


class FrameError(Exception):
    """A frame violated the wire contract; ``cause`` tags the reason."""

    def __init__(self, cause: str, detail: str = ""):
        super().__init__(f"{cause}: {detail}" if detail else cause)
        self.cause = cause


# ---------------------------------------------------- message <-> dict


def _encode_value(value: Any) -> Any:
    if isinstance(value, TID):
        return str(value)
    if isinstance(value, QuorumSpec):
        return value.to_dict()
    if isinstance(value, Enum):
        return value.value
    if isinstance(value, (tuple, list)):
        return [_encode_value(v) for v in value]
    if isinstance(value, dict):
        return {k: _encode_value(v) for k, v in value.items()}
    return value


def _tuple_str(value: Any) -> Tuple[str, ...]:
    return tuple(str(v) for v in value)


def _tuple_pairs(value: Any) -> Tuple[Tuple[str, str], ...]:
    return tuple((str(a), str(b)) for a, b in value)


def _tuple_acceptances(value: Any) -> Tuple[Tuple[str, int, str], ...]:
    return tuple((str(i), int(b), str(v)) for i, b, v in value)


# Field names are consistent across every message class, so decode
# dispatches on name; anything unlisted passes through as plain JSON.
_FIELD_DECODERS: Dict[str, Callable[[Any], Any]] = {
    "tid": TID.parse,
    "variant": TwoPhaseVariant,
    "vote": Vote,
    "outcome": Outcome,
    "quorum": lambda v: None if v is None else QuorumSpec.from_dict(v),
    "sites": _tuple_str,
    "acceptors": _tuple_str,
    "known_sites": _tuple_str,
    "votes": _tuple_pairs,
    "values": _tuple_pairs,
    "accepted": _tuple_acceptances,
}


def message_to_dict(msg: Any) -> Dict[str, Any]:
    """One protocol-message dataclass as a JSON-ready dict."""
    out: Dict[str, Any] = {"type": type(msg).__name__}
    for f in dataclasses.fields(msg):
        out[f.name] = _encode_value(getattr(msg, f.name))
    return out


def message_from_dict(data: Dict[str, Any]) -> Any:
    type_name = data.get("type")
    cls = _REGISTRY.get(type_name)
    if cls is None:
        raise FrameError("type", f"unknown message type {type_name!r}")
    kwargs: Dict[str, Any] = {}
    try:
        for f in dataclasses.fields(cls):
            if f.name not in data:
                continue
            decode = _FIELD_DECODERS.get(f.name, lambda v: v)
            kwargs[f.name] = decode(data[f.name])
        return cls(**kwargs)
    except FrameError:
        raise
    except Exception as exc:
        raise FrameError("fields", f"{type_name}: {exc}") from exc


def canonical_json(value: Any) -> str:
    """Canonical serialisation shared by codec and conformance."""
    return json.dumps(_encode_value(value), sort_keys=True,
                      separators=(",", ":"))


# ------------------------------------------------------------- frames


def encode_frame(kind: int, payload: Dict[str, Any]) -> bytes:
    body = canonical_json(payload).encode("utf-8")
    if len(body) > MAX_PAYLOAD:
        raise FrameError("oversize", f"{len(body)} byte payload")
    return _HEADER.pack(MAGIC, VERSION, kind, len(body),
                        zlib.crc32(body)) + body


def encode_message_frame(src: str, msg: Any) -> bytes:
    return encode_frame(KIND_MESSAGE, {"src": src,
                                       "msg": message_to_dict(msg)})


def encode_control_frame(payload: Dict[str, Any]) -> bytes:
    return encode_frame(KIND_CONTROL, payload)


def decode_message_payload(payload: Dict[str, Any]) -> Tuple[str, Any]:
    """Envelope dict -> (src site, protocol message)."""
    src = payload.get("src")
    body = payload.get("msg")
    if not isinstance(src, str) or not isinstance(body, dict):
        raise FrameError("envelope", "message frame missing src/msg")
    return src, message_from_dict(body)


class FrameDecoder:
    """Incremental frame parser; raises :class:`FrameError` on garbage.

    After an error the stream position is unrecoverable (length-prefixed
    framing cannot resynchronise), so callers must drop the connection.
    """

    def __init__(self, max_payload: int = MAX_PAYLOAD):
        self._buf = bytearray()
        self._max_payload = max_payload

    def feed(self, data: bytes) -> List[Tuple[int, Dict[str, Any]]]:
        self._buf.extend(data)
        frames: List[Tuple[int, Dict[str, Any]]] = []
        while True:
            if len(self._buf) < HEADER_SIZE:
                return frames
            magic, version, kind, length, crc = _HEADER.unpack_from(self._buf)
            if magic != MAGIC:
                raise FrameError("magic", magic.hex())
            if version != VERSION:
                raise FrameError("version", str(version))
            if kind not in (KIND_MESSAGE, KIND_CONTROL):
                raise FrameError("kind", str(kind))
            if length > self._max_payload:
                raise FrameError("oversize", f"{length} byte payload")
            if len(self._buf) < HEADER_SIZE + length:
                return frames
            body = bytes(self._buf[HEADER_SIZE:HEADER_SIZE + length])
            del self._buf[:HEADER_SIZE + length]
            if zlib.crc32(body) != crc:
                raise FrameError("crc", "payload checksum mismatch")
            try:
                payload = json.loads(body.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise FrameError("json", str(exc)) from exc
            if not isinstance(payload, dict):
                raise FrameError("json", "payload is not an object")
            frames.append((kind, payload))

    @property
    def buffered(self) -> int:
        """Bytes awaiting a complete frame (a torn tail if the peer dies)."""
        return len(self._buf)
