"""CLI for the live deployment mode.

Subcommands::

    python -m repro.live site --name alpha --dir /tmp/run
        One LiveSite process (used by the cluster driver; runs until a
        control "stop" or SIGTERM).

    python -m repro.live conformance [--dir DIR]
        Run the scripted scenario under the simulated LAN and under live
        loopback TCP; assert byte-identical transcripts.

    python -m repro.live demo {happy,2pc-kill,paxos-leader-kill} [--dir DIR]
        Multi-process demos with real kill -9 crash windows.

    python -m repro.live smoke
        Everything CI's live-smoke job runs: conformance + both kill
        demos.  Exits nonzero on any failure.
"""

from __future__ import annotations

import argparse
import asyncio
import signal
import sys
import tempfile
import time
from typing import Optional

from repro.core.outcomes import Vote


def _run_site(args: argparse.Namespace) -> int:
    from repro.live.site import LiveSite

    votes = {}
    for spec in args.vote:
        site_name, _, value = spec.partition("=")
        votes[site_name] = Vote(value)

    async def main() -> None:
        site = LiveSite(args.name, args.dir,
                        wire_ms=args.wire_ms,
                        force_floor_ms=args.force_floor_ms,
                        prepare_ms=args.prepare_ms,
                        votes=votes,
                        hold_force_tokens=tuple(args.hold))
        loop = asyncio.get_running_loop()
        loop.add_signal_handler(
            signal.SIGTERM, lambda: asyncio.ensure_future(site.stop()))
        await site.start()
        print(f"[{args.name}] serving on 127.0.0.1:{site.port} "
              f"(wal={site.wal.path}, recovered={site.recovered})",
              flush=True)
        await site.serve_until_stopped()

    asyncio.run(main())
    return 0


def _run_conformance(run_dir: Optional[str]) -> int:
    from repro.live.conformance import run_conformance

    started = time.monotonic()
    if run_dir is None:
        with tempfile.TemporaryDirectory(prefix="repro-live-") as tmp:
            report = run_conformance(tmp)
    else:
        report = run_conformance(run_dir)
    print(report.summary())
    print(f"({time.monotonic() - started:.1f}s)")
    return 0 if report.match else 1


def _run_demo(name: str, run_dir: Optional[str]) -> int:
    from repro.live.cluster import (
        ClusterError,
        demo_happy_path,
        demo_paxos_leader_kill,
        demo_two_phase_subordinate_kill,
    )

    demos = {"happy": demo_happy_path,
             "2pc-kill": demo_two_phase_subordinate_kill,
             "paxos-leader-kill": demo_paxos_leader_kill}
    demo = demos[name]

    def run(directory: str) -> int:
        try:
            demo(directory)
        except ClusterError as exc:
            print(f"demo {name} FAILED: {exc}", file=sys.stderr)
            return 1
        print(f"demo {name} OK")
        return 0

    if run_dir is None:
        with tempfile.TemporaryDirectory(prefix="repro-live-") as tmp:
            return run(tmp)
    return run(run_dir)


def _run_smoke() -> int:
    started = time.monotonic()
    failures = 0
    with tempfile.TemporaryDirectory(prefix="repro-smoke-conf-") as tmp:
        failures += _run_conformance(tmp)
    for demo in ("2pc-kill", "paxos-leader-kill"):
        with tempfile.TemporaryDirectory(prefix=f"repro-smoke-{demo}-") as tmp:
            failures += _run_demo(demo, tmp)
    elapsed = time.monotonic() - started
    print(f"live smoke: {'FAILED' if failures else 'OK'} in {elapsed:.1f}s")
    return 1 if failures else 0


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.live",
                                     description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_site = sub.add_parser("site", help="run one LiveSite process")
    p_site.add_argument("--name", required=True)
    p_site.add_argument("--dir", required=True,
                        help="run directory (WALs + port files)")
    p_site.add_argument("--hold", action="append", default=[],
                        metavar="TOKEN",
                        help="wedge after fsyncing this force token "
                             "(deterministic crash window)")
    p_site.add_argument("--vote", action="append", default=[],
                        metavar="SITE=VOTE",
                        help="scripted local-prepare vote")
    p_site.add_argument("--wire-ms", type=float, default=0.0)
    p_site.add_argument("--force-floor-ms", type=float, default=0.0)
    p_site.add_argument("--prepare-ms", type=float, default=0.0)

    p_conf = sub.add_parser("conformance",
                            help="sim vs live transcript equality")
    p_conf.add_argument("--dir", default=None)

    p_demo = sub.add_parser("demo", help="multi-process kill -9 demos")
    p_demo.add_argument("name",
                        choices=["happy", "2pc-kill", "paxos-leader-kill"])
    p_demo.add_argument("--dir", default=None)

    sub.add_parser("smoke", help="conformance + kill demos (CI)")

    args = parser.parse_args(argv)
    if args.command == "site":
        return _run_site(args)
    if args.command == "conformance":
        return _run_conformance(args.dir)
    if args.command == "demo":
        return _run_demo(args.name, args.dir)
    return _run_smoke()


if __name__ == "__main__":
    sys.exit(main())
