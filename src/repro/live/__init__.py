"""Live-wire deployment mode: the sans-IO machines over real IO.

Every commit protocol in this repo — presumed-abort 2PC, the
non-blocking quorum protocol, and Paxos Commit — is a pure
effect-emitting state machine (:mod:`repro.core`).  The simulator
interprets their effects over a modelled LAN and disk; this package
interprets the *same* effects over asyncio TCP sockets and a real
fsync-backed write-ahead log file, without touching a line of protocol
logic:

- :mod:`repro.live.codec` — versioned, length-prefixed, CRC-checked
  frames carrying :mod:`repro.core.messages` on the wire;
- :mod:`repro.live.walfile` — an on-disk WAL whose ``force`` is a real
  ``fsync``, readable by :func:`repro.servers.recovery.analyze`;
- :mod:`repro.live.host` — the substrate-agnostic effect interpreter
  shared by the simulated and the live harness;
- :mod:`repro.live.site` — ``LiveSite``: one process hosting machines
  behind TCP transport, the WAL, and crash recovery;
- :mod:`repro.live.conformance` — runs one scripted scenario under the
  simulated LAN and under live loopback sockets and asserts the two
  canonicalized protocol transcripts are byte-identical;
- :mod:`repro.live.cluster` — multi-process demo cluster with
  deterministic ``kill -9`` windows and restart-with-recovery.

``python -m repro.live --help`` for the CLI.

This is the **only** package allowed to import asyncio/socket or call
``os.fsync`` — the ``live-io-fence`` lint rule keeps it that way, so
``repro.core``/``repro.sim`` stay provably sans-IO.
"""
