"""Scripted scenarios and canonical transcripts for conformance runs.

A :class:`Scenario` is a deterministic list of "site X begins commitment
of a transaction over protocol P" steps plus the pacing knobs each
substrate needs.  Both harnesses execute the same scenario object; the
:class:`Transcript` each produces is canonicalized to per-site-pair FIFO
message sequences and compared byte for byte.

Why per-pair FIFO is the right canonical form: TCP (live) and the
jitter-free LAN model (sim) both preserve order *within* a (src, dst)
pair but neither promises a global interleaving across pairs, and the
sans-IO machines only ever observe per-sender order.  Canonicalizing to
the per-pair sequences compares exactly what the protocols can depend
on and nothing the substrate is allowed to vary.

Pacing: the conformance scenario zeroes the simulator's jitter and
gives the live substrate artificial per-hop latency floors
(``wire_ms``/``force_floor_ms``) large enough to dominate real fsync
and event-loop noise, so the one genuinely timing-dependent ordering in
the scenario (a Paxos acceptor hearing two RMs' votes) resolves the
same way on both substrates.  DESIGN.md §11 spells out what this does
and does not prove.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.config import CostModel
from repro.core.outcomes import TwoPhaseVariant, Vote
from repro.live.codec import canonical_json, message_to_dict


class Transcript:
    """Every datagram a harness put on the wire, in send order."""

    def __init__(self) -> None:
        self.entries: List[Tuple[str, str, Any]] = []

    def record(self, src: str, dst: str, message: Any) -> None:
        self.entries.append((src, dst, message))  # lint: bounded(scenario-scale run)

    def pair_sequences(self) -> Dict[str, List[Dict[str, Any]]]:
        """Per ``"src->dst"`` pair, the FIFO sequence of messages."""
        pairs: Dict[str, List[Dict[str, Any]]] = {}
        for src, dst, message in self.entries:
            data = (message.data if isinstance(message, _Raw)
                    else message_to_dict(message))
            pairs.setdefault(f"{src}->{dst}", []).append(data)
        return pairs

    def canonical_bytes(self) -> bytes:
        """The byte string conformance compares (sorted pairs, FIFO within)."""
        return canonical_json(self.pair_sequences()).encode("utf-8")

    def from_dicts(self, pairs: Dict[str, List[Dict[str, Any]]]) -> None:
        """Load entries from a remote site's serialized pair sequences."""
        for pair, messages in pairs.items():
            src, dst = pair.split("->", 1)
            for message in messages:
                self.entries.append((src, dst, _Raw(message)))


class _Raw:
    """A message already in dict form (from a remote site's status)."""

    def __init__(self, data: Dict[str, Any]):
        self.data = data


def merge_pair_sequences(per_site: Sequence[Dict[str, List[Dict[str, Any]]]]
                         ) -> Dict[str, List[Dict[str, Any]]]:
    """Combine per-site transcripts: each pair has exactly one sender, so
    sequences never interleave across sources."""
    merged: Dict[str, List[Dict[str, Any]]] = {}
    for pairs in per_site:
        for pair, messages in pairs.items():
            merged.setdefault(pair, []).extend(messages)
    return merged


@dataclass
class ScenarioStep:
    at_ms: float                       # offset from scenario start
    site: str                          # coordinator
    protocol: str                      # "2pc" | "nb" | "paxos"
    subordinates: Tuple[str, ...]
    variant: TwoPhaseVariant = TwoPhaseVariant.OPTIMIZED


@dataclass
class Scenario:
    sites: Tuple[str, ...]
    steps: Tuple[ScenarioStep, ...]
    cost: CostModel
    horizon_ms: float                  # sim run length / live settle deadline
    votes: Dict[str, Vote] = field(default_factory=dict)
    # Simulated-substrate pacing.
    sim_prepare_ms: float = 5.0
    # Live-substrate pacing: artificial latency floors that dominate real
    # IO jitter so races resolve as they do under the model.
    live_wire_ms: float = 40.0
    live_force_floor_ms: float = 20.0
    live_prepare_ms: float = 10.0


def conformance_cost() -> CostModel:
    """The paper's cost model with every random term zeroed."""
    return replace(CostModel(),
                   datagram_jitter_base=0.0,
                   datagram_jitter_per_load=0.0,
                   datagram_send_jitter=0.0)


def conformance_scenario() -> Scenario:
    """One scripted commit per protocol family over a 3-site cluster.

    Steps are spaced far enough apart that each transaction completes
    (machines forgotten, acks flushed) before the next begins, on both
    substrates; each family gets a different coordinator so all sites
    exercise both roles.
    """
    sites = ("alpha", "beta", "gamma")
    steps = (
        ScenarioStep(0.0, "alpha", "2pc", ("beta", "gamma")),
        ScenarioStep(1200.0, "beta", "nb", ("alpha", "gamma")),
        ScenarioStep(2400.0, "gamma", "paxos", ("alpha", "beta")),
    )
    return Scenario(sites=sites, steps=steps, cost=conformance_cost(),
                    horizon_ms=4000.0)


def run_scenario_steps(scenario: Scenario, hosts: Dict[str, Any],
                       at: Callable[[float, Callable[[], None]], Any]) -> None:
    """Schedule each step's ``begin_commit`` via the harness's timer."""
    for step in scenario.steps:
        def fire(s: ScenarioStep = step) -> None:
            hosts[s.site].begin_commit(s.protocol, list(s.subordinates),
                                       variant=s.variant)
        at(step.at_ms, fire)


def scenario_to_dict(scenario: Scenario) -> Dict[str, Any]:
    """Wire form for shipping a scenario to LiveSite processes."""
    return {
        "sites": list(scenario.sites),
        "steps": [{"at_ms": s.at_ms, "site": s.site, "protocol": s.protocol,
                   "subordinates": list(s.subordinates),
                   "variant": s.variant.value} for s in scenario.steps],
        "horizon_ms": scenario.horizon_ms,
        "votes": {site: vote.value for site, vote in scenario.votes.items()},
        "sim_prepare_ms": scenario.sim_prepare_ms,
        "live_wire_ms": scenario.live_wire_ms,
        "live_force_floor_ms": scenario.live_force_floor_ms,
        "live_prepare_ms": scenario.live_prepare_ms,
    }


def scenario_from_dict(data: Dict[str, Any],
                       cost: Optional[CostModel] = None) -> Scenario:
    steps = tuple(
        ScenarioStep(at_ms=float(s["at_ms"]), site=s["site"],
                     protocol=s["protocol"],
                     subordinates=tuple(s["subordinates"]),
                     variant=TwoPhaseVariant(s.get("variant", "optimized")))
        for s in data["steps"])
    return Scenario(
        sites=tuple(data["sites"]), steps=steps,
        cost=cost if cost is not None else conformance_cost(),
        horizon_ms=float(data["horizon_ms"]),
        votes={site: Vote(v) for site, v in data.get("votes", {}).items()},
        sim_prepare_ms=float(data.get("sim_prepare_ms", 5.0)),
        live_wire_ms=float(data.get("live_wire_ms", 40.0)),
        live_force_floor_ms=float(data.get("live_force_floor_ms", 20.0)),
        live_prepare_ms=float(data.get("live_prepare_ms", 10.0)))
