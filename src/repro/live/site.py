"""``LiveSite``: one transaction-manager site over real sockets + disk.

A LiveSite owns an asyncio TCP server, a :class:`~repro.live.walfile.FileWal`,
and a :class:`~repro.live.host.SiteHost` interpreting the sans-IO
machines' effects over them.  Peers are discovered through the port-file
handshake (:mod:`repro.live.ports`): every outbound connection attempt
re-reads the peer's port file, so a site that was ``kill -9``-ed and
restarted on a fresh ephemeral port is found without any coordinator.

Delivery discipline: TCP already gives per-connection FIFO; a single
inbound *delay line* (one FIFO queue + one drainer task) preserves
receipt order across senders while adding the scenario's ``wire_ms``
latency floor, and a second delay line paces force completions by
``force_floor_ms``.  Those floors are what lets the conformance harness
compare live transcripts byte-for-byte against the simulator: they
dominate real fsync and event-loop jitter, so causally-unordered races
resolve the same way on both substrates.  Demo clusters run with both
floors at zero.

Robustness contract (satellite: codec hardening): a malformed,
truncated, oversized, or CRC-failing frame NEVER crashes the site — the
connection is dropped and the event counted per cause in
``frame_drops``, mirroring ``Lan.drop_counts()``.
"""

from __future__ import annotations

import asyncio
import os
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from repro.config import CostModel
from repro.core.outcomes import TwoPhaseVariant, Vote
from repro.log.records import LogRecord
from repro.servers.recovery import analyze
from repro.live.codec import (
    KIND_CONTROL,
    KIND_MESSAGE,
    FrameDecoder,
    FrameError,
    decode_message_payload,
    encode_control_frame,
    encode_message_frame,
)
from repro.live.host import SiteHost, Substrate
from repro.live.ports import bind_server_socket, clear_port_file, \
    read_port_file, write_port_file
from repro.live.scenario import Transcript
from repro.live.walfile import FileWal

# Outbound connection patience: how long a sender retries reaching a
# peer (re-reading its port file each attempt) before dropping a frame.
CONNECT_TIMEOUT_S = 8.0
CONNECT_POLL_S = 0.1


class _DelayLine:
    """FIFO queue + single drainer: order-preserving paced callbacks.

    asyncio's own timer heap does not promise FIFO for equal deadlines,
    so pacing via ``call_later`` per event could reorder same-instant
    deliveries.  A deque drained by one task cannot.
    """

    def __init__(self, floor_ms: float):
        self.floor_s = floor_ms / 1000.0
        self._queue: Deque[Tuple[float, Callable[[], None]]] = deque()
        self._wake = asyncio.Event()
        self._task: Optional[asyncio.Task] = None

    def start(self) -> None:
        self._task = asyncio.get_running_loop().create_task(self._drain())

    def stop(self) -> None:
        if self._task is not None:
            self._task.cancel()
            self._task = None

    def put(self, fn: Callable[[], None]) -> None:
        due = asyncio.get_running_loop().time() + self.floor_s
        self._queue.append((due, fn))
        self._wake.set()

    @property
    def pending(self) -> int:
        return len(self._queue)

    async def _drain(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            if not self._queue:
                self._wake.clear()
                await self._wake.wait()
                continue
            due, fn = self._queue.popleft()
            delay = due - loop.time()
            if delay > 0:
                await asyncio.sleep(delay)
            fn()


class LiveSubstrate(Substrate):
    """The real-IO substrate behind one site's :class:`SiteHost`."""

    def __init__(self, site: str, port_dir: str, wal: FileWal,
                 wire_ms: float, force_floor_ms: float):
        self.site = site
        self.port_dir = port_dir
        self.wal = wal
        self.host: Optional[SiteHost] = None
        self.transcript = Transcript()
        self.traces: List[Tuple[str, Dict[str, Any]]] = []
        self.inbound = _DelayLine(wire_ms)
        self.forces = _DelayLine(force_floor_ms)
        self.frame_drops: Dict[str, int] = {}
        self._out_queues: Dict[str, asyncio.Queue] = {}
        self._out_tasks: Dict[str, asyncio.Task] = {}
        self._writers: Dict[str, asyncio.StreamWriter] = {}

    def start(self) -> None:
        self.inbound.start()
        self.forces.start()

    def stop(self) -> None:
        self.inbound.stop()
        self.forces.stop()
        for task in self._out_tasks.values():
            task.cancel()
        for writer in self._writers.values():
            try:
                writer.close()
            except Exception:
                pass
        self._out_tasks.clear()
        self._writers.clear()

    def count_drop(self, cause: str) -> None:
        self.frame_drops[cause] = self.frame_drops.get(cause, 0) + 1

    def drop_counts(self) -> Dict[str, int]:
        """Per-cause dropped-input counters (cf. ``Lan.drop_counts``)."""
        out = dict(self.frame_drops)
        out["total"] = sum(self.frame_drops.values())
        return out

    # ----------------------------------------------------------- wire

    def send(self, dst: str, message: Any) -> None:
        self.transcript.record(self.site, dst, message)
        if dst == self.site:
            # Loopback without the wire floor, like the simulator's
            # post_soon self-delivery.
            asyncio.get_running_loop().call_soon(self._deliver_self, message)
            return
        queue = self._out_queues.get(dst)
        if queue is None:
            queue = asyncio.Queue()
            self._out_queues[dst] = queue
            self._out_tasks[dst] = asyncio.get_running_loop().create_task(
                self._sender_loop(dst, queue))
        queue.put_nowait(encode_message_frame(self.site, message))

    def _deliver_self(self, message: Any) -> None:
        if self.host is not None:
            self.host.deliver(self.site, message)

    def deliver_inbound(self, src: str, message: Any) -> None:
        """Frame received: deliver through the paced FIFO delay line."""
        self.inbound.put(lambda: self.host.deliver(src, message)
                         if self.host is not None else None)

    async def _connect(self, dst: str) -> Optional[asyncio.StreamWriter]:
        loop = asyncio.get_running_loop()
        deadline = loop.time() + CONNECT_TIMEOUT_S
        while loop.time() < deadline:
            port = read_port_file(self.port_dir, dst)
            if port is not None:
                try:
                    _, writer = await asyncio.open_connection(
                        "127.0.0.1", port)
                    return writer
                except OSError:
                    pass  # stale port file (peer died); re-read and retry
            await asyncio.sleep(CONNECT_POLL_S)
        return None

    async def _sender_loop(self, dst: str, queue: asyncio.Queue) -> None:
        while True:
            frame = await queue.get()
            sent = False
            for _ in range(2):
                writer = self._writers.get(dst)
                if writer is None or writer.is_closing():
                    writer = await self._connect(dst)
                    if writer is None:
                        break
                    self._writers[dst] = writer
                try:
                    writer.write(frame)
                    await writer.drain()
                    sent = True
                    break
                except (OSError, ConnectionError):
                    try:
                        writer.close()
                    except Exception:
                        pass
                    self._writers.pop(dst, None)
            if not sent:
                # Peer stayed unreachable past the connect budget: drop,
                # like the LAN model's dead-site drop.  Protocol
                # timeouts / recovery own redelivery semantics.
                self.count_drop("dead")

    # ------------------------------------------------------------ wal

    def append(self, record: LogRecord) -> int:
        lsn = self.wal.append(record).lsn
        assert lsn is not None
        return lsn

    def force(self, lsn: int, done: Callable[[], None]) -> None:
        # fsync NOW — the record must be durable before anything that
        # follows it (that is the whole point of a force, and what the
        # kill-window choreography relies on); only the *completion*
        # callback is paced.
        ready = self.wal.force(lsn)
        self.forces.put(lambda: self._force_done(ready, done))

    @staticmethod
    def _force_done(ready: List[Callable[[], None]],
                    done: Callable[[], None]) -> None:
        for fn in ready:
            fn()
        done()

    def force_tail(self) -> None:
        if self.wal.last_lsn <= self.wal.durable_lsn:
            return
        ready = self.wal.force(None)
        self.forces.put(lambda: self._fire_watches(ready))

    @staticmethod
    def _fire_watches(ready: List[Callable[[], None]]) -> None:
        for fn in ready:
            fn()

    def watch_durable(self, lsn: int, fn: Callable[[], None]) -> None:
        self.wal.watch_durable(lsn, fn)

    # ---------------------------------------------------------- timers

    def start_timer(self, delay_ms: float, fn: Callable[[], None]) -> Any:
        return asyncio.get_running_loop().call_later(delay_ms / 1000.0, fn)

    def cancel_timer(self, handle: Any) -> None:
        handle.cancel()

    def trace(self, kind: str, detail: Dict[str, Any]) -> None:
        self.traces.append((kind, detail))  # lint: bounded(demo-scale run)


class LiveSite:
    """One site: TCP server + WAL + host, embeddable or standalone.

    The conformance harness runs several LiveSites on one event loop
    (real loopback TCP between them); ``python -m repro.live site`` runs
    exactly one per OS process for the kill -9 demos.
    """

    def __init__(self, site: str, run_dir: str, cost: Optional[CostModel] = None,
                 wire_ms: float = 0.0, force_floor_ms: float = 0.0,
                 prepare_ms: float = 0.0,
                 votes: Optional[Dict[str, Vote]] = None,
                 hold_force_tokens: Tuple[str, ...] = (),
                 fsync: bool = True):
        self.site = site
        self.run_dir = run_dir
        os.makedirs(run_dir, exist_ok=True)
        self.cost = cost if cost is not None else CostModel()
        self.wal = FileWal(os.path.join(run_dir, f"{site}.wal"), fsync=fsync)
        self.substrate = LiveSubstrate(site, run_dir, self.wal,
                                       wire_ms, force_floor_ms)
        self.host = SiteHost(site, self.substrate, self.cost, votes=votes,
                             hold_force_tokens=hold_force_tokens,
                             prepare_delay_ms=prepare_ms)
        self.substrate.host = self.host
        self.recovered = False
        self.port: Optional[int] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._stopping = asyncio.Event()

    # -------------------------------------------------------- lifecycle

    async def start(self) -> None:
        """Recover from the WAL, start serving, publish our port."""
        self.substrate.start()
        records = self.wal.recovered_records
        if records:
            plan = analyze(self.site, records)
            self.host.recover_from_plan(plan)
            self.recovered = True
        sock = bind_server_socket()
        self.port = sock.getsockname()[1]
        self._server = await asyncio.start_server(self._on_connection,
                                                  sock=sock)
        write_port_file(self.run_dir, self.site, self.port)
        self.host.start_sweeps()

    async def stop(self) -> None:
        self.host.stop_sweeps()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self.substrate.stop()
        clear_port_file(self.run_dir, self.site)
        self.wal.close()
        self._stopping.set()

    async def serve_until_stopped(self) -> None:
        await self._stopping.wait()

    @property
    def settled(self) -> bool:
        """No protocol work in flight anywhere in this site."""
        return (self.host.idle and self.substrate.inbound.pending == 0
                and self.substrate.forces.pending == 0
                and all(q.empty() for q in self.substrate._out_queues.values()))

    # ------------------------------------------------------ connections

    async def _on_connection(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        decoder = FrameDecoder()
        try:
            while True:
                data = await reader.read(65536)
                if not data:
                    break
                try:
                    frames = decoder.feed(data)
                except FrameError as exc:
                    # Never let wire garbage near the machines: count
                    # and sever (framing cannot resynchronise).
                    self.substrate.count_drop(exc.cause)
                    break
                for kind, payload in frames:
                    if kind == KIND_MESSAGE:
                        self._on_message_frame(payload)
                    else:
                        response = await self._handle_control(payload)
                        writer.write(encode_control_frame(response))
                        await writer.drain()
        except (OSError, ConnectionError):
            pass  # peer vanished mid-read; drops are the sender's story
        except asyncio.CancelledError:
            pass  # loop teardown with the connection still open
        finally:
            try:
                writer.close()
            except Exception:
                pass

    def _on_message_frame(self, payload: Dict[str, Any]) -> None:
        try:
            src, message = decode_message_payload(payload)
        except FrameError as exc:
            self.substrate.count_drop(exc.cause)
            return
        self.substrate.deliver_inbound(src, message)

    # ---------------------------------------------------------- control

    async def _handle_control(self, payload: Dict[str, Any]
                              ) -> Dict[str, Any]:
        cmd = payload.get("cmd")
        if cmd == "ping":
            return {"ok": True, "site": self.site, "pid": os.getpid()}
        if cmd == "begin":
            tid = self.host.begin_commit(
                payload["protocol"], list(payload["subs"]),
                variant=TwoPhaseVariant(payload.get("variant", "optimized")))
            return {"ok": True, "tid": str(tid)}
        if cmd == "status":
            return self._status()
        if cmd == "transcript":
            return {"ok": True,
                    "pairs": self.substrate.transcript.pair_sequences()}
        if cmd == "hold":
            self.host.hold_force_tokens = set(payload.get("tokens", []))
            return {"ok": True}
        if cmd == "stop":
            asyncio.get_running_loop().call_soon(
                lambda: asyncio.ensure_future(self.stop()))
            return {"ok": True}
        return {"ok": False, "error": f"unknown command {cmd!r}"}

    def _status(self) -> Dict[str, Any]:
        return {
            "ok": True,
            "site": self.site,
            "pid": os.getpid(),
            "idle": self.settled,
            "machines": sorted(str(t) for t in self.host.machines),
            "takeovers": sorted(str(t) for t in self.host.takeovers),
            "completions": {t: o.value
                            for t, o in self.host.completions.items()},
            "tombstones": {t: o.value
                           for t, o in self.host.tombstones.items()},
            "held": list(self.host.held),
            "drops": self.substrate.drop_counts(),
            "duplicates": self.host.duplicates,
            "recovered": self.recovered,
            "conservative": self.host.conservative,
            "wal_durable": self.wal.durable_lsn,
        }
