"""The simulated substrate: :class:`SiteHost` over kernel + LAN model.

This is the conformance baseline.  The same effect interpreter that the
live harness uses runs here over the deterministic discrete-event
kernel, the token-ring :class:`repro.net.lan.Lan`, and an in-memory WAL
whose forces complete after the modelled ``log_force`` latency.  A
scenario executed here produces the reference transcript that the live
loopback run must match byte for byte.

Jitter is zeroed for conformance runs (see
:func:`repro.live.scenario.conformance_cost`): the point of the
comparison is protocol-transcript equality, and random per-message
jitter would make the *simulated* ordering the arbitrary one.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.config import CostModel
from repro.core.outcomes import Vote
from repro.log.records import LogRecord
from repro.net.lan import Lan
from repro.sim.kernel import Kernel, Timer
from repro.sim.rng import RngStreams
from repro.sim.tracing import NullTracer
from repro.live.host import SiteHost, Substrate
from repro.live.scenario import Scenario, Transcript, run_scenario_steps


class MemoryWal:
    """The simulator-side WAL: FileWal's contract without the file."""

    def __init__(self) -> None:
        self.records: List[LogRecord] = []
        self._next_lsn = 1
        self._durable_lsn = 0
        self._watches: List[Tuple[int, Callable[[], None]]] = []

    @property
    def durable_lsn(self) -> int:
        return self._durable_lsn

    @property
    def last_lsn(self) -> int:
        return self._next_lsn - 1

    def append(self, record: LogRecord) -> LogRecord:
        record.lsn = self._next_lsn
        self._next_lsn += 1
        self.records.append(record)  # lint: bounded(scenario-scale run)
        return record

    def force(self, lsn: Optional[int] = None) -> List[Callable[[], None]]:
        target = self.last_lsn if lsn is None else lsn
        if target > self._durable_lsn:
            self._durable_lsn = target
        ready = [fn for watch_lsn, fn in self._watches
                 if watch_lsn <= self._durable_lsn]
        self._watches = [(watch_lsn, fn) for watch_lsn, fn in self._watches
                         if watch_lsn > self._durable_lsn]
        return ready

    def watch_durable(self, lsn: int, fn: Callable[[], None]) -> None:
        if lsn <= self._durable_lsn:
            fn()
            return
        self._watches.append((lsn, fn))


class SimSubstrate(Substrate):
    """Substrate implementation over the discrete-event kernel."""

    def __init__(self, site: str, kernel: Kernel, lan: Lan, cost: CostModel,
                 transcript: Transcript):
        self.site = site
        self.kernel = kernel
        self.lan = lan
        self.cost = cost
        self.transcript = transcript
        self.wal = MemoryWal()
        self.host: Optional[SiteHost] = None  # wired by build_sim_cluster
        self.peers: Dict[str, "SimSubstrate"] = {}
        self.traces: List[Tuple[str, Dict[str, Any]]] = []
        self.alive = True  # Lan liveness probe

    # ----------------------------------------------------------- wire

    def send(self, dst: str, message: Any) -> None:
        self.transcript.record(self.site, dst, message)
        if dst == self.site:
            # Self-delivery loops back off the wire, like the
            # DatagramService's post_soon loopback.
            self.kernel.post_soon(self._deliver_self, message)
            return
        peer = self.peers[dst]
        self.lan.unicast(self.site, dst, message,
                         lambda payload: peer.host.deliver(self.site, payload)
                         if peer.host is not None else None)

    def _deliver_self(self, message: Any) -> None:
        if self.host is not None:
            self.host.deliver(self.site, message)

    # ------------------------------------------------------------ wal

    def append(self, record: LogRecord) -> int:
        lsn = self.wal.append(record).lsn
        assert lsn is not None
        return lsn

    def force(self, lsn: int, done: Callable[[], None]) -> None:
        self.kernel.post(self.cost.log_force, self._force_done, lsn, done)

    def _force_done(self, lsn: int, done: Callable[[], None]) -> None:
        for fn in self.wal.force(lsn):
            fn()
        done()

    def force_tail(self) -> None:
        if self.wal.last_lsn <= self.wal.durable_lsn:
            return
        lsn = self.wal.last_lsn
        self.kernel.post(self.cost.log_force, self._tail_done, lsn)

    def _tail_done(self, lsn: int) -> None:
        for fn in self.wal.force(lsn):
            fn()

    def watch_durable(self, lsn: int, fn: Callable[[], None]) -> None:
        self.wal.watch_durable(lsn, fn)

    # ---------------------------------------------------------- timers

    def start_timer(self, delay_ms: float, fn: Callable[[], None]) -> Timer:
        return self.kernel.schedule(delay_ms, fn)

    def cancel_timer(self, handle: Any) -> None:
        handle.cancel()

    def trace(self, kind: str, detail: Dict[str, Any]) -> None:
        self.traces.append((kind, detail))  # lint: bounded(scenario-scale run)


def build_sim_cluster(sites: List[str], cost: CostModel,
                      votes: Optional[Dict[str, Vote]] = None,
                      prepare_ms: float = 5.0
                      ) -> Tuple[Kernel, Dict[str, SiteHost], Transcript]:
    """A kernel, one wired SiteHost per site, and the shared transcript."""
    kernel = Kernel()
    lan = Lan(kernel, cost, RngStreams(0), NullTracer())
    transcript = Transcript()
    substrates: Dict[str, SimSubstrate] = {}
    hosts: Dict[str, SiteHost] = {}
    for site in sites:
        sub = SimSubstrate(site, kernel, lan, cost, transcript)
        lan.register_site(site, sub)
        substrates[site] = sub
    for site, sub in substrates.items():
        sub.peers = substrates
        host = SiteHost(site, sub, cost, votes=votes,
                        prepare_delay_ms=prepare_ms)
        sub.host = host
        hosts[site] = host
    return kernel, hosts, transcript


def run_sim_scenario(scenario: Scenario) -> Transcript:
    """Execute the scenario on the simulated substrate; return transcript."""
    cost = scenario.cost
    kernel, hosts, transcript = build_sim_cluster(
        list(scenario.sites), cost, votes=scenario.votes,
        prepare_ms=scenario.sim_prepare_ms)
    for host in hosts.values():
        host.start_sweeps()
    run_scenario_steps(
        scenario, hosts,
        at=lambda delay_ms, fn: kernel.schedule(delay_ms, fn))
    kernel.run(until=scenario.horizon_ms)
    for host in hosts.values():
        host.stop_sweeps()
    return transcript
