"""A real on-disk write-ahead log with the simulator WAL's semantics.

Mirrors :class:`repro.log.wal.WriteAheadLog`'s contract — ``append``
assigns an LSN to a volatile record, ``force(lsn)`` makes the prefix up
to ``lsn`` durable, durability watches fire once their LSN is covered —
but durability here is a genuine ``os.fsync`` on a file the
:mod:`repro.servers.recovery` discriminators can read back after
``kill -9``.

File layout: a 5-byte header (magic ``RWAL`` + version) followed by
records, each ``length(4) | crc32(4) | canonical-JSON(LogRecord.to_dict)``.
Loading tolerates a torn tail — a crash mid-write leaves a partial or
CRC-failing final record, which is exactly the not-yet-durable suffix
the simulator's crash model also discards.  Opening for write truncates
the file back to the valid prefix so new appends never follow garbage.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from typing import Callable, List, Optional, Tuple

from repro.log.records import LogRecord

WAL_MAGIC = b"RWAL"
WAL_VERSION = 1
_HEADER = WAL_MAGIC + bytes([WAL_VERSION])
_REC = struct.Struct(">II")


def _scan(data: bytes) -> Tuple[List[LogRecord], int]:
    """Parse the durable prefix; returns (records, valid byte length)."""
    records: List[LogRecord] = []
    if len(data) < len(_HEADER) or data[:4] != WAL_MAGIC:
        return records, 0
    pos = len(_HEADER)
    while True:
        if pos + _REC.size > len(data):
            break
        length, crc = _REC.unpack_from(data, pos)
        end = pos + _REC.size + length
        if end > len(data):
            break  # torn tail: record cut short by the crash
        body = data[pos + _REC.size:end]
        if zlib.crc32(body) != crc:
            break  # torn tail: partially written payload
        try:
            records.append(LogRecord.from_dict(json.loads(body)))
        except (ValueError, KeyError):
            break
        pos = end
    return records, pos


def read_records(path: str) -> List[LogRecord]:
    """Durable records at ``path`` (recovery's view after a crash)."""
    try:
        with open(path, "rb") as fh:
            data = fh.read()
    except FileNotFoundError:
        return []
    records, _ = _scan(data)
    return records


class FileWal:
    """One site's on-disk WAL.

    All methods are synchronous; the live substrate calls them from the
    event loop (record payloads are tiny, and force latency *is* the
    durability cost the paper measures).  ``fsync=False`` trades real
    durability for speed in harnesses that never crash-test.
    """

    def __init__(self, path: str, fsync: bool = True):
        self.path = path
        self._fsync = fsync
        existing = b""
        try:
            with open(path, "rb") as fh:
                existing = fh.read()
        except FileNotFoundError:
            pass
        records, valid = _scan(existing)
        self._durable_count = len(records)
        self._recovered = list(records)
        self._file = open(path, "r+b" if existing else "w+b")
        if valid < len(_HEADER):
            # Fresh file, or a header so mangled nothing was readable:
            # start over with a clean header.
            self._file.truncate(0)
            self._file.seek(0)
            self._file.write(_HEADER)
            self._file.flush()
            valid = len(_HEADER)
        self._file.truncate(valid)
        self._file.seek(valid)
        # LSNs restart at the durable count: recovery only ever sees the
        # durable prefix, so dense renumbering is invisible across runs.
        for i, record in enumerate(self._recovered, start=1):
            record.lsn = i
        self._next_lsn = self._durable_count + 1
        self._volatile: List[LogRecord] = []
        self._durable_lsn = self._durable_count
        self._watches: List[Tuple[int, Callable[[], None]]] = []

    # ------------------------------------------------------------ api

    @property
    def recovered_records(self) -> List[LogRecord]:
        """The durable prefix found at open (input to recovery analysis)."""
        return list(self._recovered)

    @property
    def durable_lsn(self) -> int:
        return self._durable_lsn

    @property
    def last_lsn(self) -> int:
        return self._next_lsn - 1

    def append(self, record: LogRecord) -> LogRecord:
        record.lsn = self._next_lsn
        self._next_lsn += 1
        self._volatile.append(record)
        return record

    def force(self, lsn: Optional[int] = None) -> List[Callable[[], None]]:
        """Make the prefix up to ``lsn`` (default: everything) durable.

        Returns the durability watches that became satisfied; the caller
        fires them (after any completion pacing it applies).
        """
        target = self.last_lsn if lsn is None else lsn
        wrote = False
        while self._volatile and self._volatile[0].lsn is not None \
                and self._volatile[0].lsn <= target:
            record = self._volatile.pop(0)
            body = json.dumps(record.to_dict(), sort_keys=True,
                              separators=(",", ":")).encode("utf-8")
            self._file.write(_REC.pack(len(body), zlib.crc32(body)) + body)
            self._durable_lsn = record.lsn
            wrote = True
        if wrote:
            self._file.flush()
            if self._fsync:
                os.fsync(self._file.fileno())
        ready = [fn for watch_lsn, fn in self._watches
                 if watch_lsn <= self._durable_lsn]
        self._watches = [(watch_lsn, fn) for watch_lsn, fn in self._watches
                         if watch_lsn > self._durable_lsn]
        return ready

    def watch_durable(self, lsn: int, fn: Callable[[], None]) -> None:
        """Run ``fn`` once ``lsn`` is durable (immediately if it already is)."""
        if lsn <= self._durable_lsn:
            fn()
            return
        self._watches.append((lsn, fn))

    def close(self) -> None:
        self._file.close()
