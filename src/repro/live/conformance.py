"""Conformance: the simulator and the live wire must tell one story.

:func:`run_conformance` executes the same scripted scenario (one commit
per protocol family, see :func:`repro.live.scenario.conformance_scenario`)
twice —

1. on the **simulated** substrate: discrete-event kernel, jitter-free
   LAN model, modelled force latency;
2. on the **live** substrate: several :class:`~repro.live.site.LiveSite`
   instances on one event loop, talking real loopback TCP through the
   frame codec, forcing a real fsync-backed WAL file each —

and asserts the two canonicalized transcripts (per site-pair FIFO
message sequences) are **byte-identical**.  Because both harnesses share
the :class:`~repro.live.host.SiteHost` effect interpreter, a mismatch
can only mean the live substrate delivered, ordered, or serialised
something differently than the model — exactly the class of bug this
harness exists to catch.  DESIGN.md §11 discusses what this does and
does not prove.
"""

from __future__ import annotations

import asyncio
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.core.outcomes import Outcome
from repro.live.scenario import (
    Scenario,
    Transcript,
    conformance_scenario,
    merge_pair_sequences,
    run_scenario_steps,
)
from repro.live.simhost import run_sim_scenario
from repro.live.site import LiveSite

# Grace periods for the live run: how long past the last step we keep
# polling for quiescence, and how long a site must *stay* quiescent
# (catches frames still in flight between two idle-looking sites).
SETTLE_DEADLINE_EXTRA_S = 20.0
SETTLE_GRACE_S = 0.4
SETTLE_POLL_S = 0.05


@dataclass
class ConformanceReport:
    match: bool
    sim_bytes: bytes
    live_bytes: bytes
    sim_pairs: Dict[str, List[Dict[str, Any]]]
    live_pairs: Dict[str, List[Dict[str, Any]]]
    live_completions: Dict[str, Dict[str, str]]  # site -> tid -> outcome
    mismatches: List[str] = field(default_factory=list)

    def summary(self) -> str:
        if self.match:
            pairs = len(self.sim_pairs)
            msgs = sum(len(v) for v in self.sim_pairs.values())
            return (f"conformance OK: {msgs} messages over {pairs} "
                    f"site-pairs, transcripts byte-identical "
                    f"({len(self.sim_bytes)} bytes)")
        return "conformance FAILED:\n  " + "\n  ".join(self.mismatches)


def _diff_pairs(sim: Dict[str, List[Dict[str, Any]]],
                live: Dict[str, List[Dict[str, Any]]]) -> List[str]:
    out: List[str] = []
    for pair in sorted(set(sim) | set(live)):
        a, b = sim.get(pair, []), live.get(pair, [])
        if a == b:
            continue
        if len(a) != len(b):
            out.append(f"{pair}: sim sent {len(a)} messages, live {len(b)}")
        for i, (ma, mb) in enumerate(zip(a, b)):
            if ma != mb:
                out.append(f"{pair}[{i}]: sim {ma.get('type')}({ma}) != "
                           f"live {mb.get('type')}({mb})")
                break
    return out


async def run_live_scenario(scenario: Scenario, run_dir: str,
                            fsync: bool = True) -> ConformanceReport:
    """The live half: returns a report with ``sim_*`` fields empty."""
    os.makedirs(run_dir, exist_ok=True)
    sites: Dict[str, LiveSite] = {}
    for name in scenario.sites:
        sites[name] = LiveSite(
            name, run_dir, cost=scenario.cost,
            wire_ms=scenario.live_wire_ms,
            force_floor_ms=scenario.live_force_floor_ms,
            prepare_ms=scenario.live_prepare_ms,
            votes=dict(scenario.votes), fsync=fsync)
    for site in sites.values():
        await site.start()
    loop = asyncio.get_running_loop()
    start = loop.time()
    run_scenario_steps(
        scenario, {n: s.host for n, s in sites.items()},
        at=lambda ms, fn: loop.call_later(ms / 1000.0, fn))
    last_step_at = max((s.at_ms for s in scenario.steps), default=0.0)
    deadline = start + (scenario.horizon_ms / 1000.0) + SETTLE_DEADLINE_EXTRA_S
    # Quiesce: all steps fired, then every site stays settled for a grace
    # period (in-flight loopback frames land within it).
    while loop.time() < deadline:
        if loop.time() - start < last_step_at / 1000.0 + SETTLE_POLL_S:
            await asyncio.sleep(SETTLE_POLL_S)
            continue
        if all(s.settled for s in sites.values()):
            await asyncio.sleep(SETTLE_GRACE_S)
            if all(s.settled for s in sites.values()):
                break
        await asyncio.sleep(SETTLE_POLL_S)
    live_pairs = merge_pair_sequences(
        [s.substrate.transcript.pair_sequences() for s in sites.values()])
    completions = {name: {t: o.value for t, o in s.host.completions.items()}
                   for name, s in sites.items()}
    for site in sites.values():
        await site.stop()
    merged = Transcript()
    merged.from_dicts(live_pairs)
    return ConformanceReport(
        match=False, sim_bytes=b"", live_bytes=merged.canonical_bytes(),
        sim_pairs={}, live_pairs=live_pairs, live_completions=completions)


def run_conformance(run_dir: str, scenario: Optional[Scenario] = None,
                    fsync: bool = True) -> ConformanceReport:
    """Run both substrates over ``scenario`` and compare transcripts."""
    if scenario is None:
        scenario = conformance_scenario()
    sim_transcript = run_sim_scenario(scenario)
    sim_pairs = sim_transcript.pair_sequences()
    sim_bytes = sim_transcript.canonical_bytes()
    live = asyncio.run(run_live_scenario(scenario, run_dir, fsync=fsync))
    report = ConformanceReport(
        match=sim_bytes == live.live_bytes,
        sim_bytes=sim_bytes, live_bytes=live.live_bytes,
        sim_pairs=sim_pairs, live_pairs=live.live_pairs,
        live_completions=live.live_completions)
    if not report.match:
        report.mismatches = _diff_pairs(sim_pairs, live.live_pairs)
        if not report.mismatches:
            report.mismatches = ["transcripts differ but per-pair diff "
                                 "found nothing (ordering of pairs?)"]
    _check_outcomes(report, scenario)
    return report


def _check_outcomes(report: ConformanceReport, scenario: Scenario) -> None:
    """All scripted transactions must commit everywhere they ran."""
    for step in scenario.steps:
        for site, completions in report.live_completions.items():
            if site != step.site and site not in step.subordinates:
                continue
            outcomes = set(completions.values())
            if Outcome.ABORTED.value in outcomes:
                report.match = False
                report.mismatches.append(
                    f"live: site {site} aborted a scripted transaction")
                return
