"""Test-harness port hygiene for the live cluster.

Busy CI runners make fixed ports a flake factory, so:

- servers bind **ephemeral** ports (``port=0``) by default; when a
  caller insists on a specific port, :func:`bind_server_socket` retries
  around transient ``EADDRINUSE`` (a restarting site racing its
  predecessor's TIME_WAIT) before falling back to an ephemeral one;
- discovery runs over a **port-file handshake**: each site atomically
  publishes ``<dir>/<site>.port`` (write temp + ``os.replace``, so a
  reader never sees a half-written file), and peers re-read the file on
  every connection failure — a restarted site with a fresh port is
  found without any coordinator.
"""

from __future__ import annotations

import errno
import os
import socket
import time
from typing import Optional

# Retry cadence for explicit-port binds racing a TIME_WAIT predecessor.
BIND_ATTEMPTS = 10
BIND_RETRY_S = 0.1


def bind_server_socket(host: str = "127.0.0.1", port: int = 0,
                       attempts: int = BIND_ATTEMPTS) -> socket.socket:
    """A bound, listening-ready TCP socket.

    ``port=0`` asks the kernel for an ephemeral port (never collides).
    An explicit port is retried on ``EADDRINUSE`` and, if it stays
    busy, falls back to an ephemeral port — the port file tells peers
    where we actually landed, so a specific port is only ever a
    preference.
    """
    last_error: Optional[OSError] = None
    for attempt in range(max(1, attempts)):
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        try:
            sock.bind((host, port))
            return sock
        except OSError as exc:
            sock.close()
            if exc.errno != errno.EADDRINUSE or port == 0:
                raise
            last_error = exc
            if attempt + 1 < attempts:
                time.sleep(BIND_RETRY_S)
    # Preference unsatisfiable: take any free port instead of failing.
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    try:
        sock.bind((host, 0))
    except OSError:
        sock.close()
        raise last_error if last_error is not None else OSError("bind failed")
    return sock


def port_file(directory: str, site: str) -> str:
    return os.path.join(directory, f"{site}.port")


def write_port_file(directory: str, site: str, port: int) -> None:
    """Atomically publish this site's port for peer discovery."""
    os.makedirs(directory, exist_ok=True)
    path = port_file(directory, site)
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w", encoding="ascii") as fh:
        fh.write(f"{port}\n")
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


def clear_port_file(directory: str, site: str) -> None:
    try:
        os.unlink(port_file(directory, site))
    except FileNotFoundError:
        pass


def read_port_file(directory: str, site: str) -> Optional[int]:
    """The peer's published port, or None if not (validly) published yet."""
    try:
        with open(port_file(directory, site), "r", encoding="ascii") as fh:
            text = fh.read().strip()
    except FileNotFoundError:
        return None
    try:
        port = int(text)
    except ValueError:
        return None
    return port if 0 < port < 65536 else None


def wait_port_file(directory: str, site: str, timeout_s: float = 10.0,
                   poll_s: float = 0.05) -> int:
    """Block (wall clock) until the peer publishes; driver-side helper."""
    deadline = time.monotonic() + timeout_s
    while True:
        port = read_port_file(directory, site)
        if port is not None:
            return port
        if time.monotonic() >= deadline:
            raise TimeoutError(
                f"no port file for site {site!r} in {directory} "
                f"after {timeout_s}s")
        time.sleep(poll_s)
