"""Invariant oracles: read-only judges of a finished chaos run.

Each oracle is a function ``(OracleContext) -> list[Violation]``
registered under a stable name with :func:`oracle`.  Oracles run after
the simulation has settled and may read anything — the tracer, the
kernel clock, tranman tables, lock managers, stable stores — but must
never mutate simulation state (``repro.lint`` enforces this with the
``chaos-oracle-readonly`` rule).

Safety oracles (atomicity, durability of exposed decisions, heuristic
discipline, lock leakage) apply unconditionally.  Liveness-flavoured
clauses are guarded by what the run's end state makes provable:

- with every site up, the network whole, and loss off, everything must
  fully resolve (machines drained, outcome decided);
- under the non-blocking protocol with a dead *minority*, every live
  site must still decide — the paper's §5 claim — though machines
  notifying a dead peer may legitimately linger;
- a blocked two-phase commit with a dead coordinator is legal (§3.2),
  so no liveness is demanded there.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional

from repro.core.outcomes import Outcome
from repro.log.records import RecordKind

ORACLES: Dict[str, Callable[["OracleContext"], List["Violation"]]] = {}


def oracle(name: str):
    """Register an oracle under ``name`` (sorted order = run order)."""
    def register(fn):
        ORACLES[name] = fn
        fn.oracle_name = name
        return fn
    return register


@dataclass(frozen=True)
class Violation:
    """One invariant breach, attributable to one oracle."""

    oracle: str
    message: str
    site: Optional[str] = None

    def describe(self) -> str:
        where = f" @{self.site}" if self.site else ""
        return f"{self.oracle}{where}: {self.message}"

    def to_json(self) -> Dict[str, Any]:
        return {"oracle": self.oracle, "message": self.message,
                "site": self.site}

    @staticmethod
    def from_json(data: Dict[str, Any]) -> "Violation":
        return Violation(oracle=data["oracle"], message=data["message"],
                         site=data.get("site"))


@dataclass(frozen=True)
class OracleContext:
    """Read-only view of a settled run handed to every oracle."""

    system: Any          # CamelotSystem
    spec: Any            # ScenarioSpec
    schedule: Any        # FaultSchedule
    state: Dict[str, Any]

    # -------------------------------------------------- derived queries

    @property
    def tid(self) -> Optional[str]:
        return self.state.get("tid")

    def live_sites(self) -> List[str]:
        return [s for s in self.system.site_names()
                if self.system.runtime(s).site.alive]

    def dead_sites(self) -> List[str]:
        return [s for s in self.system.site_names()
                if not self.system.runtime(s).site.alive]

    @property
    def repaired(self) -> bool:
        """All sites up, no partition, loss off: full resolution is due."""
        return (not self.dead_sites()
                and not self.system.lan.partitioned
                and self.system.lan.loss_probability == 0.0)

    @property
    def connected(self) -> bool:
        return (not self.system.lan.partitioned
                and self.system.lan.loss_probability == 0.0)

    def tombstone(self, site: str) -> Optional[Outcome]:
        if self.tid is None:
            return None
        return self.system.tranman(site).tombstones.get(self.tid)

    def unresolved_machines(self, site: str) -> int:
        tranman = self.system.tranman(site)
        return len(tranman.machines) + len(tranman.takeovers)

    def decided(self) -> Dict[str, str]:
        """Every exposed decision for the chaos transaction, by source.

        Sources: ``tranman.complete`` trace events (the reply the
        application saw), non-blocking takeover decisions, each site's
        tombstone table (including sites that died holding one — a
        decision once exposed counts forever), and the application's own
        return value.
        """
        tid = self.tid
        out: Dict[str, str] = {}
        if tid is None:
            return out
        for event in self.system.tracer.of_kind("tranman.complete"):
            if event.detail.get("tid") == tid:
                out[f"complete@{event.site}"] = event.detail["outcome"]
        for event in self.system.tracer.of_kind("nb.takeover_decided"):
            if event.detail.get("tid") in (tid, None):
                out[f"takeover@{event.site}"] = event.detail["outcome"]
        for event in self.system.tracer.of_kind("pc.election_decided"):
            if event.detail.get("tid") in (tid, None):
                out[f"election@{event.site}"] = event.detail["outcome"]
        for site in self.system.site_names():
            tomb = self.system.tranman(site).tombstones.get(tid)
            if tomb is not None:
                out[f"tombstone@{site}"] = tomb.value
        app_outcome = self.state.get("outcome")
        if isinstance(app_outcome, Outcome):
            out["application"] = app_outcome.value
        return out

    def durable_kinds(self, site: str) -> List[RecordKind]:
        """Record kinds the site's stable log holds for the chaos txn."""
        tid = self.tid
        if tid is None:
            return []
        return [r.kind for r in self.system.stores.for_site(site).records()
                if r.tid == tid]

    def all_writes_done(self) -> bool:
        return len(self.state.get("written", ())) == len(self.spec.sites)


def run_oracles(ctx: OracleContext) -> List[Violation]:
    out: List[Violation] = []
    for name in sorted(ORACLES):
        out.extend(ORACLES[name](ctx))
    return out


# --------------------------------------------------------------- oracles


@oracle("atomicity")
def check_atomicity(ctx: OracleContext) -> List[Violation]:
    """No two sources ever expose different outcomes for the txn."""
    decided = ctx.decided()
    values = set(decided.values())
    if Outcome.COMMITTED.value in values and Outcome.ABORTED.value in values:
        detail = ", ".join(f"{src}={val}"
                           for src, val in sorted(decided.items()))
        return [Violation("atomicity",
                          f"split decision for {ctx.tid}: {detail}")]
    return []


@oracle("durability")
def check_durability(ctx: OracleContext) -> List[Violation]:
    """Committed effects survive crashes, restarts, and recovery."""
    out: List[Violation] = []
    if ctx.tid is None:
        return out
    expected = 9  # the workload's write value
    for site in ctx.live_sites():
        if ctx.tombstone(site) is Outcome.COMMITTED:
            value = ctx.system.server(f"server0@{site}").peek("x")
            if value != expected:
                out.append(Violation(
                    "durability",
                    f"site decided committed but x={value!r} "
                    f"(expected {expected})", site=site))
    if ctx.repaired and Outcome.COMMITTED.value in ctx.decided().values():
        # Fully repaired and committed somewhere: every written site
        # must expose the effects, however it crashed along the way.
        for site in ctx.system.site_names():
            value = ctx.system.server(f"server0@{site}").peek("x")
            if value != expected:
                out.append(Violation(
                    "durability",
                    f"transaction committed but x={value!r} after repair "
                    f"(expected {expected})", site=site))
    return out


@oracle("delayed-commit")
def check_delayed_commit(ctx: OracleContext) -> List[Violation]:
    """Delayed commit never needs a guess: no heuristics, and every
    durably-prepared site converges to the coordinator's outcome."""
    out: List[Violation] = []
    for kind in ("2pc.heuristic_resolve", "2pc.heuristic_damage"):
        count = ctx.system.tracer.count(kind)
        if count:
            out.append(Violation(
                "delayed-commit",
                f"{count} {kind} event(s): chaos scenarios must resolve "
                f"without heuristic decisions"))
    if ctx.spec.protocol != "2pc" or ctx.tid is None or not ctx.repaired:
        return out
    coordinator = ctx.spec.coordinator
    # Presumed abort: a coordinator with no durable decision answers
    # "aborted", so that is the reference outcome when no tombstone.
    reference = ctx.tombstone(coordinator) or Outcome.ABORTED
    for site in ctx.spec.sites:
        if site == coordinator:
            continue
        if RecordKind.PREPARE not in ctx.durable_kinds(site):
            continue
        tomb = ctx.tombstone(site)
        if tomb is None:
            out.append(Violation(
                "delayed-commit",
                f"durably prepared site still in doubt after full repair "
                f"(coordinator outcome {reference.value})", site=site))
        elif tomb is not reference:
            out.append(Violation(
                "delayed-commit",
                f"prepared site resolved {tomb.value} but the coordinator "
                f"decided {reference.value}", site=site))
    return out


@oracle("locks")
def check_lock_leakage(ctx: OracleContext) -> List[Violation]:
    """Once a live site has no protocol machine left, its data servers
    must hold no locks: whoever resolved the txn released them."""
    out: List[Violation] = []
    if ctx.tid is None:
        return out
    for site in ctx.live_sites():
        if ctx.unresolved_machines(site):
            continue  # still legitimately blocked / notifying
        for name in sorted(ctx.system.runtime(site).servers):
            held = ctx.system.server(name).locks.locked_objects()
            if held:
                out.append(Violation(
                    "locks",
                    f"{name} still holds locks {held} with no machine "
                    f"left to release them", site=site))
    return out


@oracle("resolution")
def check_resolution(ctx: OracleContext) -> List[Violation]:
    """Eventual resolution, where the end state makes it provable."""
    out: List[Violation] = []
    if ctx.tid is None or not ctx.connected:
        return out
    dead = ctx.dead_sites()
    if not dead:
        for site in ctx.live_sites():
            pending = ctx.unresolved_machines(site)
            if pending:
                out.append(Violation(
                    "resolution",
                    f"{pending} protocol machine(s) still alive after "
                    f"settle with every site up and the network whole",
                    site=site))
        if ctx.all_writes_done() and not ctx.decided():
            out.append(Violation(
                "resolution",
                "transaction reached the commit protocol but no site "
                "ever decided"))
        return out
    if ctx.spec.protocol in ("nb", "paxos") \
            and len(dead) * 2 < len(ctx.spec.sites) \
            and ctx.all_writes_done():
        # The §5 claim (and Paxos Commit's F-fault-tolerance): a live
        # majority always decides.  Machines notifying the dead
        # minority may linger; decisions may not.
        for site in ctx.live_sites():
            if ctx.tombstone(site) is None:
                out.append(Violation(
                    "resolution",
                    f"live site undecided despite a live majority under "
                    f"the {ctx.spec.protocol} protocol "
                    f"(dead: {sorted(dead)})",
                    site=site))
    return out


def violations_of(results: Iterable[Any]) -> List[Violation]:
    """Flatten the violations of many RunResults (CLI convenience)."""
    out: List[Violation] = []
    for result in results:
        out.extend(result.violations)
    return out
