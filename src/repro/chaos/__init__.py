"""Deterministic chaos exploration for the integrated Camelot system.

The paper's headline claims — delayed commit never violates atomicity
despite dropping locks before the commit record is durable (§3), and
the non-blocking protocol survives any single crash or partition (§5)
— are properties of the *whole* stack: LAN, WAL, recovery, and the
transaction manager together.  This package checks them mechanically:

- :mod:`repro.chaos.schedule` — fault schedules (crash / restart /
  partition / heal / loss) as replayable data, plus a seeded random
  generator;
- :mod:`repro.chaos.boundaries` — a :attr:`Kernel.monitor` probe that
  records every protocol-message arrival in a fault-free golden run and
  enumerates a crash of each site at each such boundary (systematic
  mode);
- :mod:`repro.chaos.scenario` — runs one full two/three-site scenario
  under a schedule and snapshots the end state;
- :mod:`repro.chaos.oracles` — read-only invariant checks (atomicity,
  durability, delayed-commit discipline, lock leakage, resolution);
- :mod:`repro.chaos.shrinker` — delta-debugs a failing schedule to a
  minimal fault sequence and writes a replayable JSON repro;
- :mod:`repro.chaos.bugs` — deliberately seeded protocol bugs used to
  prove the oracles have teeth.

Everything is seeded and runs on virtual time only; the same spec and
schedule always produce byte-identical traces (``python -m repro.chaos
--replay <file>`` re-executes a repro and verifies exactly that).
"""

from repro.chaos.bugs import BUGS, seeded_bug
from repro.chaos.boundaries import golden_boundaries, systematic_schedules
from repro.chaos.oracles import ORACLES, Violation, run_oracles
from repro.chaos.scenario import RunResult, ScenarioSpec, run_schedule
from repro.chaos.schedule import FaultEvent, FaultSchedule, random_schedule
from repro.chaos.shrinker import load_repro, shrink_schedule, write_repro

__all__ = [
    "BUGS",
    "FaultEvent",
    "FaultSchedule",
    "ORACLES",
    "RunResult",
    "ScenarioSpec",
    "Violation",
    "golden_boundaries",
    "load_repro",
    "random_schedule",
    "run_oracles",
    "run_schedule",
    "seeded_bug",
    "shrink_schedule",
    "systematic_schedules",
    "write_repro",
]
