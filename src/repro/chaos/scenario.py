"""Run one full scenario under a fault schedule and snapshot the end.

The scenario is the paper's minimal distributed write transaction (one
write per site, then commit) on a fresh :class:`CamelotSystem`, with the
schedule's faults injected while it runs.  The system then runs for a
settle period long enough for every bounded-retry mechanism to finish:
recovery redo watches, takeover retry caps, and the orphan sweep (whose
timeout, 30 s of virtual time, dominates — hence the default).

Everything is derived from the :class:`ScenarioSpec` alone: same spec +
same schedule -> byte-identical trace, which :func:`run_signature`
condenses into one hash for replay verification.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.chaos.bugs import seeded_bug
from repro.chaos.oracles import OracleContext, Violation, run_oracles
from repro.chaos.schedule import FaultSchedule
from repro.config import SystemConfig
from repro.core.outcomes import Outcome, ProtocolKind
from repro.mach.ipc import DeadCallError
from repro.servers.application import TransactionAborted
from repro.system import CamelotSystem

PROTOCOLS = {"2pc": ProtocolKind.TWO_PHASE, "nb": ProtocolKind.NON_BLOCKING,
             "paxos": ProtocolKind.PAXOS_COMMIT}

# Orphan sweep fires at most orphan_timeout + sweep interval (30 s +
# 7.5 s) after the transaction went idle; a few extra seconds cover the
# inquiry/redo polling that follows it.
DEFAULT_SETTLE_MS = 42_000.0


@dataclass(frozen=True)
class ScenarioSpec:
    """Everything needed to reproduce one chaos run."""

    protocol: str = "2pc"                    # key into PROTOCOLS
    sites: Tuple[str, ...] = ("a", "b", "c")
    seed: int = 0                            # SystemConfig seed
    settle_ms: float = DEFAULT_SETTLE_MS
    bug: Optional[str] = None                # key into chaos.bugs.BUGS

    def __post_init__(self) -> None:
        if self.protocol not in PROTOCOLS:
            raise ValueError(f"unknown protocol {self.protocol!r} "
                             f"(expected one of {sorted(PROTOCOLS)})")
        object.__setattr__(self, "sites", tuple(self.sites))

    @property
    def protocol_kind(self) -> ProtocolKind:
        return PROTOCOLS[self.protocol]

    @property
    def coordinator(self) -> str:
        return self.sites[0]

    def to_json(self) -> Dict[str, Any]:
        return {"protocol": self.protocol, "sites": list(self.sites),
                "seed": self.seed, "settle_ms": self.settle_ms,
                "bug": self.bug}

    @staticmethod
    def from_json(data: Dict[str, Any]) -> "ScenarioSpec":
        return ScenarioSpec(protocol=data["protocol"],
                            sites=tuple(data["sites"]),
                            seed=int(data["seed"]),
                            settle_ms=float(data["settle_ms"]),
                            bug=data.get("bug"))


@dataclass
class RunResult:
    """End-of-run snapshot: what the oracles saw and decided."""

    spec: ScenarioSpec
    schedule: FaultSchedule
    state: Dict[str, Any]
    violations: Tuple[Violation, ...]
    signature: str
    tombstones: Dict[str, Optional[str]] = field(default_factory=dict)
    end_time: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.violations


def build_system(spec: ScenarioSpec) -> CamelotSystem:
    return CamelotSystem(SystemConfig(
        sites={name: 1 for name in spec.sites}, seed=spec.seed))


def start_workload(system: CamelotSystem,
                   spec: ScenarioSpec) -> Dict[str, Any]:
    """Spawn the paper's minimal write transaction from the coordinator
    site; the returned dict fills in as the transaction progresses."""
    app = system.application(spec.coordinator)
    protocol = spec.protocol_kind
    state: Dict[str, Any] = {"written": []}

    def body():
        try:
            tid = yield from app.begin(protocol=protocol)
            state["tid"] = str(tid)
            for service in system.default_services():
                yield from app.write(tid, service, "x", 9)
                state["written"].append(service)
            outcome = yield from app.commit(tid, protocol=protocol)
            state["outcome"] = outcome
        except TransactionAborted:
            state["outcome"] = Outcome.ABORTED
        except (DeadCallError, RuntimeError) as exc:
            # The coordinator site died under the application mid-call;
            # the outcome (if any) lives only in the sites' tombstones.
            state["error"] = type(exc).__name__

    system.spawn(body(), name="chaos.txn")
    return state


def run_signature(system: CamelotSystem, state: Dict[str, Any]) -> str:
    """Condense a finished run into one hash for replay verification.

    Covers the full per-kind trace counters, the final virtual clock,
    and each site's tombstone for the chaos transaction — any scheduling
    or protocol divergence between two runs shows up here.
    """
    tid = state.get("tid")
    tombstones = {
        name: (lambda o: o.value if o is not None else None)(
            system.tranman(name).tombstones.get(tid)) if tid else None
        for name in system.site_names()}
    outcome = state.get("outcome")
    payload = {
        "now": round(system.kernel.now, 6),
        "counters": dict(sorted(system.tracer.counters.items())),
        "tombstones": tombstones,
        "outcome": outcome.value if isinstance(outcome, Outcome) else None,
        "error": state.get("error"),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def run_schedule(spec: ScenarioSpec, schedule: FaultSchedule) -> RunResult:
    """Execute one scenario under one fault schedule and judge it."""
    with seeded_bug(spec.bug):
        system = build_system(spec)
        state = start_workload(system, spec)
        schedule.apply(system.failures)
        try:
            system.run_for(schedule.horizon() + spec.settle_ms)
        except Exception as exc:
            # An in-sim assertion (e.g. a protocol-violation guard) is a
            # first-class finding: report it as a "crash" violation so
            # the shrinker and replay machinery work on it like any
            # oracle failure.  The partial run is still deterministic,
            # so its signature remains replayable.
            state["error"] = type(exc).__name__
            violations: Tuple[Violation, ...] = (Violation(
                oracle="crash",
                message=f"{type(exc).__name__}: {exc}"),)
        else:
            ctx = OracleContext(system=system, spec=spec, schedule=schedule,
                                state=state)
            violations = tuple(run_oracles(ctx))
        tid = state.get("tid")
        tombstones = {
            name: (lambda o: o.value if o is not None else None)(
                system.tranman(name).tombstones.get(tid)) if tid else None
            for name in system.site_names()}
        return RunResult(spec=spec, schedule=schedule, state=state,
                         violations=violations,
                         signature=run_signature(system, state),
                         tombstones=tombstones,
                         end_time=system.kernel.now)
