"""Shrink a failing fault schedule to its minimal core, then save it.

Greedy delta debugging (ddmin's one-at-a-time pass run to fixpoint):
repeatedly try dropping each fault event and keep any drop after which
the scenario still trips *some oracle that the original run tripped* —
matching on oracle names, not messages, so a shrink that turns "three
sites undecided" into "one site undecided" still counts as the same
failure.  Schedules here are a handful of events, so the quadratic pass
costs a few dozen re-runs at ~30 ms of wall clock each.

The minimal schedule is written as a *repro*: one canonical-JSON file
embedding the spec, the schedule, the violations observed, and the run
signature.  ``python -m repro.chaos --replay <file>`` re-executes it and
verifies the signature byte-for-byte — a repro is a deterministic test
case, not a log.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Set, Tuple

from repro.chaos.scenario import RunResult, ScenarioSpec, run_schedule
from repro.chaos.schedule import FaultSchedule
from repro.chaos.oracles import Violation

REPRO_FORMAT = "repro.chaos/1"


def _oracles_of(result: RunResult) -> Set[str]:
    return {v.oracle for v in result.violations}


def shrink_schedule(spec: ScenarioSpec, result: RunResult,
                    max_runs: int = 200) -> Tuple[FaultSchedule, RunResult]:
    """Minimise ``result.schedule`` while the same oracle(s) still fire.

    Returns the smallest schedule found and the run that certifies it.
    ``max_runs`` bounds the re-execution budget; on exhaustion the best
    schedule so far is returned (still a valid failing repro, possibly
    not minimal).
    """
    target = _oracles_of(result)
    if not target:
        raise ValueError("shrink_schedule needs a failing RunResult")
    best_schedule = result.schedule
    best_result = result
    runs = 0
    shrunk = True
    while shrunk and runs < max_runs:
        shrunk = False
        for index in range(len(best_schedule.events)):
            candidate = FaultSchedule(
                events=best_schedule.events[:index]
                + best_schedule.events[index + 1:],
                label=f"{best_schedule.label}/shrunk")
            attempt = run_schedule(spec, candidate)
            runs += 1
            if _oracles_of(attempt) & target:
                best_schedule, best_result = candidate, attempt
                shrunk = True
                break   # restart the pass over the smaller schedule
            if runs >= max_runs:
                break
    return best_schedule, best_result


# ---------------------------------------------------------------- repros


def repro_json(result: RunResult) -> Dict[str, Any]:
    return {
        "format": REPRO_FORMAT,
        "spec": result.spec.to_json(),
        "schedule": result.schedule.to_json(),
        "violations": [v.to_json() for v in result.violations],
        "signature": result.signature,
    }


def write_repro(path: str, result: RunResult) -> None:
    """Serialise a failing run as a replayable canonical-JSON repro."""
    blob = json.dumps(repro_json(result), sort_keys=True, indent=2)
    with open(path, "w") as fh:
        fh.write(blob + "\n")


def load_repro(path: str) -> Tuple[ScenarioSpec, FaultSchedule,
                                   Tuple[Violation, ...], str]:
    """Parse a repro file back into runnable pieces."""
    with open(path) as fh:
        data = json.load(fh)
    if data.get("format") != REPRO_FORMAT:
        raise ValueError(f"{path}: not a {REPRO_FORMAT} repro file")
    spec = ScenarioSpec.from_json(data["spec"])
    schedule = FaultSchedule.from_json(data["schedule"])
    violations = tuple(Violation.from_json(v) for v in data["violations"])
    return spec, schedule, violations, data["signature"]


def replay(path: str) -> Tuple[bool, RunResult, str]:
    """Re-execute a repro; report whether it reproduced byte-for-byte.

    Returns ``(reproduced, fresh_result, expected_signature)`` where
    ``reproduced`` requires both an identical run signature and a
    non-empty intersection with the recorded oracles (an empty recorded
    set — a hand-written "expect clean" repro — only needs the
    signature).
    """
    spec, schedule, violations, expected = load_repro(path)
    fresh = run_schedule(spec, schedule)
    same_signature = fresh.signature == expected
    recorded = {v.oracle for v in violations}
    same_failure = (not recorded) or bool(_oracles_of(fresh) & recorded)
    return same_signature and same_failure, fresh, expected
