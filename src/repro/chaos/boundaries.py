"""Systematic mode: crash every site at every message boundary.

Random schedules sample the fault space; systematic mode sweeps the part
of it that matters most for commit protocols — the instants at which a
protocol datagram arrives.  A fault-free *golden run* of the scenario is
executed first with a :class:`BoundaryMonitor` installed as the
:attr:`Kernel.monitor`; the monitor records the virtual time of every
:meth:`Lan._arrive` dispatch.  Each such boundary then spawns crash
schedules: for every site, one crash *at* the boundary (the kernel fires
same-time events in schedule order, and injector events are scheduled at
setup, so the crash lands *before* the delivery) and one just *after* it
(the site dies having processed the message but before anything later).
Every crash is paired with a restart so recovery runs too.

This is the deterministic analogue of the paper's failure analysis
(§3.2, §5): it reaches exactly the "crashed after the vote but before
the commit record" windows that the protocol arguments reason about.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.chaos.schedule import FaultEvent, FaultSchedule
from repro.net.lan import Lan

# Post-boundary crashes land this far after the arrival: past every
# same-instant callback, well before the next protocol step (~5 ms).
_EPSILON_MS = 0.01
_RESTART_AFTER_MS = 5_000.0


class BoundaryMonitor:
    """Kernel monitor that records every message-arrival instant."""

    def __init__(self) -> None:
        self.arrivals: List[Tuple[float, str]] = []   # (time, dst site)

    def on_schedule(self, seq: int) -> None:
        pass

    def before_fire(self, time, seq, fn, args) -> None:
        if getattr(fn, "__func__", None) is Lan._arrive:
            # args = (src, dst, payload, deliver)
            self.arrivals.append((round(time, 3), args[1]))  # lint: bounded(reset per exploration run)


def golden_boundaries(spec) -> List[float]:
    """Fault-free run of ``spec``; return its message-arrival times.

    Runs long enough to cover the whole commit protocol plus retries,
    then dedupes same-instant arrivals: a crash kills the whole site, so
    one boundary per instant is enough.
    """
    from repro.chaos.scenario import build_system, start_workload

    system = build_system(spec)
    monitor = BoundaryMonitor()
    system.kernel.monitor = monitor
    start_workload(system, spec)
    system.run_for(1_000.0)
    system.kernel.monitor = None
    return sorted({time for time, _dst in monitor.arrivals})


def systematic_schedules(spec, restart_after_ms: float = _RESTART_AFTER_MS,
                         max_boundaries: int = 0) -> List[FaultSchedule]:
    """Crash schedules for every (site, boundary, before/after) triple.

    ``max_boundaries`` > 0 caps the sweep (evenly thinned, endpoints
    kept) for quick smoke runs; 0 means exhaustive.
    """
    boundaries = golden_boundaries(spec)
    if max_boundaries and len(boundaries) > max_boundaries:
        step = (len(boundaries) - 1) / (max_boundaries - 1)
        boundaries = [boundaries[round(i * step)]
                      for i in range(max_boundaries)]
    out: List[FaultSchedule] = []
    for boundary in boundaries:
        for site in spec.sites:
            for offset, phase in ((0.0, "pre"), (_EPSILON_MS, "post")):
                crash_t = round(boundary + offset, 3)
                out.append(FaultSchedule(
                    events=(
                        FaultEvent(crash_t, "crash", site=site),
                        FaultEvent(round(crash_t + restart_after_ms, 3),
                                   "restart", site=site),
                    ),
                    label=f"systematic/{site}@{boundary:g}/{phase}"))
    return out
