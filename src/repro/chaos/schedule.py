"""Fault schedules: the unit of chaos exploration.

A :class:`FaultSchedule` is an ordered list of :class:`FaultEvent`
records — plain data, JSON-round-trippable, applied to a system through
its :class:`~repro.net.failures.FailureInjector`.  Schedules are what
the shrinker minimises and what a repro artifact replays, so they carry
no object references and no ambient state.

:func:`random_schedule` draws a schedule from a seeded
``random.Random``; the same ``(sites, seed)`` pair always yields the
same schedule.  Generated schedules may crash a site that is already
down or heal a network that is whole — the injector treats those as
traced no-ops, so generation needs no feasibility bookkeeping beyond
what makes schedules *interesting* (restarts prefer crashed sites,
repairs usually close the run so liveness oracles get to fire).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.net.failures import FailureInjector

# Kinds drawn by random_schedule.  This tuple is part of the seed
# contract — appending to it would reshuffle every historical seed's
# schedule — so composite/directed kinds live in EXTRA_KINDS instead.
KINDS = ("crash", "restart", "partition", "heal", "loss")
# Additional kinds for directed sweeps and hand-written schedules:
# ``crash_restart`` is the atomic crash-then-recover fault (the site
# comes back after ``delay`` and runs recovery mid-protocol);
# ``duplicate`` turns on network message duplication.
EXTRA_KINDS = ("crash_restart", "duplicate")
ALL_KINDS = KINDS + EXTRA_KINDS

# Default time-to-repair for crash_restart: long enough that every
# retry/takeover timer at the survivors has fired at least once.
DEFAULT_RESTART_DELAY_MS = 5_000.0


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault at one virtual instant."""

    time: float
    kind: str                                    # one of ALL_KINDS
    site: Optional[str] = None                   # crash / restart
    groups: Optional[Tuple[Tuple[str, ...], ...]] = None   # partition
    probability: Optional[float] = None          # loss / duplicate
    delay: Optional[float] = None                # crash_restart

    def __post_init__(self) -> None:
        if self.kind not in ALL_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.kind in ("crash", "restart", "crash_restart") \
                and not self.site:
            raise ValueError(f"{self.kind} event needs a site")
        if self.kind == "partition" and not self.groups:
            raise ValueError("partition event needs groups")
        if self.kind in ("loss", "duplicate") and self.probability is None:
            raise ValueError(f"{self.kind} event needs a probability")

    @property
    def restart_time(self) -> float:
        """When a crash_restart's site comes back (== time otherwise)."""
        if self.kind != "crash_restart":
            return self.time
        return self.time + (self.delay if self.delay is not None
                            else DEFAULT_RESTART_DELAY_MS)

    def describe(self) -> str:
        if self.kind in ("crash", "restart"):
            return f"t={self.time:g} {self.kind}({self.site})"
        if self.kind == "crash_restart":
            return (f"t={self.time:g} crash_restart({self.site}, "
                    f"back@{self.restart_time:g})")
        if self.kind == "partition":
            groups = "|".join(",".join(g) for g in self.groups or ())
            return f"t={self.time:g} partition({groups})"
        if self.kind == "loss":
            return f"t={self.time:g} loss(p={self.probability:g})"
        if self.kind == "duplicate":
            return f"t={self.time:g} duplicate(p={self.probability:g})"
        return f"t={self.time:g} heal"

    def to_json(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {"time": self.time, "kind": self.kind}
        if self.site is not None:
            data["site"] = self.site
        if self.groups is not None:
            data["groups"] = [list(g) for g in self.groups]
        if self.probability is not None:
            data["probability"] = self.probability
        if self.delay is not None:
            data["delay"] = self.delay
        return data

    @staticmethod
    def from_json(data: Dict[str, Any]) -> "FaultEvent":
        groups = data.get("groups")
        return FaultEvent(
            time=float(data["time"]),
            kind=data["kind"],
            site=data.get("site"),
            groups=(tuple(tuple(g) for g in groups)
                    if groups is not None else None),
            probability=data.get("probability"),
            delay=data.get("delay"),
        )


@dataclass(frozen=True)
class FaultSchedule:
    """An ordered fault sequence plus a human label for reports."""

    events: Tuple[FaultEvent, ...] = ()
    label: str = ""

    def __post_init__(self) -> None:
        ordered = tuple(sorted(self.events, key=lambda e: e.time))
        object.__setattr__(self, "events", ordered)

    def __len__(self) -> int:
        return len(self.events)

    def horizon(self) -> float:
        """Virtual time of the last injected action (0 when empty); a
        crash_restart's horizon is its restart instant."""
        if not self.events:
            return 0.0
        return max(e.restart_time for e in self.events)

    def describe(self) -> str:
        body = "; ".join(e.describe() for e in self.events) or "(no faults)"
        return f"[{self.label}] {body}" if self.label else body

    def apply(self, injector: FailureInjector) -> None:
        """Register every event with the injector's scheduler."""
        for event in self.events:
            if event.kind == "crash":
                injector.crash_at(event.time, event.site)
            elif event.kind == "restart":
                injector.restart_at(event.time, event.site)
            elif event.kind == "partition":
                injector.partition_at(event.time,
                                      [list(g) for g in event.groups])
            elif event.kind == "crash_restart":
                injector.crash_at(event.time, event.site)
                injector.restart_at(event.restart_time, event.site)
            elif event.kind == "heal":
                injector.heal_at(event.time)
            elif event.kind == "duplicate":
                injector.set_duplication_at(event.time, event.probability)
            else:
                injector.set_loss_at(event.time, event.probability)

    def to_json(self) -> Dict[str, Any]:
        return {"label": self.label,
                "events": [e.to_json() for e in self.events]}

    @staticmethod
    def from_json(data: Dict[str, Any]) -> "FaultSchedule":
        return FaultSchedule(
            events=tuple(FaultEvent.from_json(e) for e in data["events"]),
            label=data.get("label", ""))


# ------------------------------------------------------------ generation

# The 3-site write transaction's protocol activity spans roughly
# t=60..220 ms (operations, prepares, votes, commit, notices); faults
# drawn from this window land inside the commit protocol's crash
# windows rather than before or after anything interesting happens.
_FAULT_WINDOW = (60.0, 320.0)
_REPAIR_GAP = (800.0, 4_000.0)


def random_schedule(sites: Sequence[str], seed: int,
                    label: str = "") -> FaultSchedule:
    """Draw one seeded-random fault schedule over ``sites``.

    1-4 fault events inside the protocol window, then (usually) a
    repair tail — restart every crashed site, heal, switch loss off —
    so that most schedules end in a state where the liveness oracles
    apply.  About one in five schedules is left unrepaired: safety
    oracles must hold there too.
    """
    rng = random.Random(seed)
    sites = list(sites)
    events: List[FaultEvent] = []
    down: List[str] = []
    partitioned = False
    lossy = False
    t = _FAULT_WINDOW[0]
    for _ in range(rng.randint(1, 4)):
        t += rng.uniform(5.0, (_FAULT_WINDOW[1] - _FAULT_WINDOW[0]) / 2)
        t = round(t, 3)
        kind = rng.choice(KINDS)
        if kind == "crash":
            site = rng.choice(sites)
            events.append(FaultEvent(t, "crash", site=site))
            if site not in down:
                down.append(site)
        elif kind == "restart":
            site = rng.choice(down) if down else rng.choice(sites)
            events.append(FaultEvent(t, "restart", site=site))
            if site in down:
                down.remove(site)
        elif kind == "partition":
            cut = rng.randint(1, len(sites) - 1)
            members = rng.sample(sites, cut)
            rest = [s for s in sites if s not in members]
            events.append(FaultEvent(t, "partition",
                                     groups=(tuple(sorted(members)),
                                             tuple(sorted(rest)))))
            partitioned = True
        elif kind == "heal":
            events.append(FaultEvent(t, "heal"))
            partitioned = False
        else:
            p = round(rng.uniform(0.05, 0.35), 3)
            events.append(FaultEvent(t, "loss", probability=p))
            lossy = True
    if rng.random() < 0.8:
        # Repair tail: bring the world back so resolution must happen.
        t = max(t, _FAULT_WINDOW[1])
        if partitioned:
            t = round(t + rng.uniform(*_REPAIR_GAP), 3)
            events.append(FaultEvent(t, "heal"))
        if lossy:
            t = round(t + rng.uniform(*_REPAIR_GAP), 3)
            events.append(FaultEvent(t, "loss", probability=0.0))
        for site in down:
            t = round(t + rng.uniform(*_REPAIR_GAP), 3)
            events.append(FaultEvent(t, "restart", site=site))
    return FaultSchedule(events=tuple(events), label=label)


def random_schedules(sites: Sequence[str], seed: int,
                     count: int) -> List[FaultSchedule]:
    """``count`` independent schedules; schedule ``i`` depends only on
    ``(sites, seed, i)``, so sets are stable as ``count`` grows."""
    return [random_schedule(sites, seed * 1_000_003 + i,
                            label=f"random/{seed}/{i}")
            for i in range(count)]


def leader_failover_schedules(
        sites: Sequence[str],
        coordinator: Optional[str] = None,
        crash_times: Sequence[float] = (100.0, 130.0, 160.0, 200.0, 260.0),
        restart_delay_ms: float = DEFAULT_RESTART_DELAY_MS,
        duplicate_p: float = 0.25) -> List[FaultSchedule]:
    """The leader-failover sweep: kill the coordinator inside the commit
    window and let a backup finish the transaction.

    For each crash instant three schedules are produced: the leader dies
    for good (the survivors must elect and complete on their own), the
    leader crash-restarts (its recovery and the backup's election race),
    and the crash-restart under message duplication (every handler must
    be duplicate-safe while the failover runs).
    """
    sites = list(sites)
    leader = coordinator if coordinator is not None else sites[0]
    out: List[FaultSchedule] = []
    for t in crash_times:
        out.append(FaultSchedule(
            events=(FaultEvent(t, "crash", site=leader),),
            label=f"failover/dead@{t:g}"))
        out.append(FaultSchedule(
            events=(FaultEvent(t, "crash_restart", site=leader,
                               delay=restart_delay_ms),),
            label=f"failover/restart@{t:g}"))
        out.append(FaultSchedule(
            events=(FaultEvent(60.0, "duplicate",
                               probability=duplicate_p),
                    FaultEvent(t, "crash_restart", site=leader,
                               delay=restart_delay_ms)),
            label=f"failover/dup+restart@{t:g}"))
    return out
