"""CLI for deterministic chaos exploration.

Explore::

    PYTHONPATH=src python -m repro.chaos --protocol 2pc --schedules 50 --seed 7
    PYTHONPATH=src python -m repro.chaos --protocol nb --mode systematic

Replay a saved repro and verify byte-determinism::

    PYTHONPATH=src python -m repro.chaos --replay chaos-repros/repro-000.json

Exit status: 0 all schedules clean (or replay reproduced), 1 at least
one invariant violation (failing schedules are shrunk and written to
``--out``), 2 replay diverged or bad usage.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List

from repro.chaos.boundaries import systematic_schedules
from repro.chaos.scenario import (
    DEFAULT_SETTLE_MS,
    PROTOCOLS,
    RunResult,
    ScenarioSpec,
    run_schedule,
)
from repro.chaos.schedule import (
    FaultSchedule,
    leader_failover_schedules,
    random_schedules,
)
from repro.chaos.shrinker import replay, shrink_schedule, write_repro
from repro.chaos.bugs import BUGS

MAX_SHRINKS = 5   # shrinking re-runs the scenario many times; cap it


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.chaos",
        description="Deterministic fault exploration with invariant "
                    "oracles, shrinking, and replayable repros.")
    parser.add_argument("--protocol", choices=sorted(PROTOCOLS),
                        default="2pc", help="commit protocol under test")
    parser.add_argument("--schedules", type=int, default=50,
                        help="number of random schedules (default 50)")
    parser.add_argument("--seed", type=int, default=7,
                        help="base seed for random schedules (default 7)")
    parser.add_argument("--mode",
                        choices=("random", "systematic", "both", "failover"),
                        default="both",
                        help="schedule source (default both); failover "
                             "sweeps coordinator crashes and "
                             "crash-restarts through the commit window")
    parser.add_argument("--sites", default="a,b,c",
                        help="comma-separated site names (default a,b,c)")
    parser.add_argument("--settle", type=float, default=DEFAULT_SETTLE_MS,
                        help="virtual ms to run past the last fault "
                             f"(default {DEFAULT_SETTLE_MS:g})")
    parser.add_argument("--bug", choices=sorted(BUGS), default=None,
                        help="seed a deliberate protocol bug (oracle "
                             "self-test)")
    parser.add_argument("--max-boundaries", type=int, default=0,
                        help="cap the systematic boundary sweep "
                             "(0 = exhaustive)")
    parser.add_argument("--out", default="chaos-repros",
                        help="directory for shrunk repro files")
    parser.add_argument("--replay", metavar="FILE", default=None,
                        help="re-execute a saved repro and verify its "
                             "signature (ignores exploration options)")
    return parser


def _do_replay(path: str) -> int:
    reproduced, fresh, expected = replay(path)
    print(f"replay {path}")
    print(f"  schedule:  {fresh.schedule.describe()}")
    print(f"  signature: {fresh.signature}")
    for violation in fresh.violations:
        print(f"  violation: {violation.describe()}")
    if reproduced:
        print("  result: reproduced (signature and failure match)")
        return 0
    print(f"  result: DIVERGED (expected signature {expected})")
    return 2


def _explore(args: argparse.Namespace) -> int:
    sites = tuple(s for s in args.sites.split(",") if s)
    spec = ScenarioSpec(protocol=args.protocol, sites=sites,
                        settle_ms=args.settle, bug=args.bug)
    schedules: List[FaultSchedule] = []
    if args.mode in ("random", "both"):
        schedules += random_schedules(sites, args.seed, args.schedules)
    if args.mode in ("systematic", "both"):
        schedules += systematic_schedules(
            spec, max_boundaries=args.max_boundaries)
    if args.mode == "failover":
        schedules += leader_failover_schedules(sites, spec.coordinator)
    print(f"chaos: {len(schedules)} schedule(s), protocol={args.protocol}, "
          f"sites={','.join(sites)}, seed={args.seed}, mode={args.mode}"
          + (f", bug={args.bug}" if args.bug else ""))

    failures: List[RunResult] = []
    for schedule in schedules:
        result = run_schedule(spec, schedule)
        if not result.ok:
            failures.append(result)
            print(f"FAIL {schedule.describe()}")
            for violation in result.violations:
                print(f"     {violation.describe()}")
    if not failures:
        print(f"ok: {len(schedules)} schedule(s), no invariant violations")
        return 0

    print(f"{len(failures)} failing schedule(s); shrinking up to "
          f"{MAX_SHRINKS} and writing repros to {args.out}/")
    os.makedirs(args.out, exist_ok=True)
    for index, failure in enumerate(failures[:MAX_SHRINKS]):
        _, minimal = shrink_schedule(spec, failure)
        path = os.path.join(args.out, f"repro-{args.protocol}-{index:03d}.json")
        write_repro(path, minimal)
        print(f"  {path}: {len(minimal.schedule)} event(s) — "
              f"{minimal.schedule.describe()}")
    return 1


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.replay:
        return _do_replay(args.replay)
    return _explore(args)


if __name__ == "__main__":
    sys.exit(main())
