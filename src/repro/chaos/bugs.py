"""Deliberately seeded protocol bugs: proof the oracles have teeth.

A chaos harness that never fails proves nothing — maybe the system is
correct, maybe the oracles are blind.  Each entry in :data:`BUGS`
installs a subtle, realistic protocol mutation for the duration of one
run; the CI suite asserts that chaos exploration *with* the bug finds a
violation (and shrinks it to a tiny repro), while the stock system stays
clean.

Bugs are applied by monkey-patching a protocol method inside the
:func:`seeded_bug` context manager and restoring the original on exit,
so a bug can never leak between runs.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Dict

from repro.core.effects import SendDatagram, StartTimer, WriteLog
from repro.core.outcomes import Vote
from repro.core.messages import VoteResponse
from repro.core import twophase
from repro.log.records import prepare_record

# name -> apply() -> restore()
BUGS: Dict[str, Callable[[], Callable[[], None]]] = {}


def bug(name: str):
    """Register an installer; it returns the undo callable."""
    def register(fn):
        BUGS[name] = fn
        return fn
    return register


@contextmanager
def seeded_bug(name):
    """Install bug ``name`` (or do nothing for ``None``) for one run."""
    if name is None:
        yield
        return
    try:
        install = BUGS[name]
    except KeyError:
        raise KeyError(f"unknown seeded bug {name!r} "
                       f"(expected one of {sorted(BUGS)})") from None
    restore = install()
    try:
        yield
    finally:
        restore()


@bug("vote_before_prepare_durable")
def _vote_before_prepare_durable() -> Callable[[], None]:
    """Subordinate acks (votes YES) before its prepare record is durable.

    The correct sequence forces the prepare record and only sends the
    YES vote from ``on_log_forced`` — the vote is a promise backed by
    stable storage.  The buggy version sends the vote immediately and
    writes the record lazily: if the site crashes in the window between
    the vote and the lazy flush, it restarts with no trace of the
    transaction while the coordinator may already have committed on the
    strength of that vote.  The restarted site ignores commit notices
    (nothing to resolve) and its updates are gone — a durability and
    resolution violation the oracles must catch.
    """
    original = twophase.TwoPhaseSubordinate.on_local_prepared

    def buggy(self, vote):
        if self.state is not twophase.SubordinateState.PREPARING \
                or vote is not Vote.YES:
            return original(self, vote)
        self.vote = vote
        self.state = twophase.SubordinateState.PREPARED
        record = prepare_record(str(self.tid), self.site, self.coordinator)
        return [
            WriteLog(record),  # lazy: durable long after the vote is out
            SendDatagram(self.coordinator,
                         VoteResponse(tid=self.tid, sender=self.site,
                                      vote=Vote.YES)),
            StartTimer(twophase.OUTCOME_TIMER, self.outcome_timeout_ms),
        ]

    twophase.TwoPhaseSubordinate.on_local_prepared = buggy

    def restore() -> None:
        twophase.TwoPhaseSubordinate.on_local_prepared = original

    return restore
