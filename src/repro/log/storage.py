"""Stable storage: the part of a site that survives crashes.

Sites lose all volatile state on crash (ports, process memory, buffered
log tail); whatever was *flushed* to the :class:`StableStore` survives
and is what recovery reads.  Records are stored in serialised (dict)
form only — tests assert that nothing object-identical crosses the
crash boundary.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List

from repro.log.records import LogRecord


class StableStore:
    """Append-only durable record store for one site's log."""

    def __init__(self, site: str):
        self.site = site
        self._records: List[Dict[str, Any]] = []
        self.appends = 0

    def __len__(self) -> int:
        return len(self._records)

    def append(self, record: LogRecord) -> None:
        if record.lsn is None:
            raise ValueError("record must have an LSN before reaching disk")
        self._records.append(record.to_dict())
        self.appends += 1

    def append_many(self, records: List[LogRecord]) -> None:
        for record in records:
            self.append(record)

    def records(self) -> Iterator[LogRecord]:
        """Deserialise every durable record, in LSN order."""
        for data in self._records:
            yield LogRecord.from_dict(data)

    def last_lsn(self) -> int:
        """Highest durable LSN, or 0 when the log is empty."""
        if not self._records:
            return 0
        return self._records[-1]["lsn"]

    def truncate(self) -> None:
        """Discard everything (fresh-disk scenarios in tests)."""
        self._records.clear()

    def truncate_before(self, lsn: int) -> int:
        """Reclaim records with lsn < ``lsn`` (checkpointing).  Returns
        how many records were dropped."""
        before = len(self._records)
        self._records = [r for r in self._records if r["lsn"] >= lsn]
        return before - len(self._records)

    def first_lsn(self) -> int:
        """Lowest retained LSN, or 0 when empty."""
        if not self._records:
            return 0
        return self._records[0]["lsn"]


class StableStoreDirectory:
    """All sites' stable stores, held outside any site so crashes cannot
    touch them.  The system assembly layer owns one of these."""

    def __init__(self) -> None:
        self._stores: Dict[str, StableStore] = {}

    def for_site(self, site: str) -> StableStore:
        store = self._stores.get(site)
        if store is None:
            store = StableStore(site)
            self._stores[site] = store  # lint: bounded(one store per site)
        return store

    def sites(self) -> List[str]:
        return sorted(self._stores)
