"""Group commit ("log batching").

"If the log is implemented as a disk, then a transaction facility cannot
do more than about 30 log writes per second.  To provide throughput
rates greater than 30 TPS requires writing log records that indicate the
commitment of many transactions ... It sacrifices latency in order to
increase throughput, and is essential for any system that hopes for high
throughput and uses disks for the log.  Camelot batches log records
within the disk manager, which is the single point of access to the
log."  (paper §3.5)

The batcher collects concurrent force requests into *rounds*.  A round
opens when a force arrives while no round is open; it closes — and one
disk write covers every request in it — when either the group-commit
timer expires or the batch limit is reached.  Requests arriving while a
round's disk write is in progress open the next round.

With ``enabled=False`` the batcher degrades to the plain unbatched
force, so the disk manager can hold one object either way and the
Figure 4 experiment is a single-flag toggle.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.log.wal import WriteAheadLog
from repro.sim.events import SimEvent
from repro.sim.kernel import Kernel, Timer
from repro.sim.process import Wait
from repro.sim.tracing import Tracer


class _Round:
    """One accumulating batch of force requests."""

    __slots__ = ("target_lsn", "done", "size")

    def __init__(self, kernel: Kernel):
        self.target_lsn = 0
        self.size = 0
        self.done = SimEvent(kernel, name="gc.round")


class GroupCommitBatcher:
    """Timer-based group commit in front of a WAL."""

    def __init__(self, kernel: Kernel, wal: WriteAheadLog, tracer: Tracer,
                 window_ms: float, batch_limit: int, enabled: bool = True):
        if batch_limit < 1:
            raise ValueError("batch limit must be >= 1")
        self.kernel = kernel
        self.wal = wal
        self.tracer = tracer
        self.window_ms = window_ms
        self.batch_limit = batch_limit
        self.enabled = enabled
        self._round: Optional[_Round] = None
        self._timer: Optional[Timer] = None
        self.rounds_flushed = 0
        self.requests_batched = 0

    # ------------------------------------------------------------ force

    def force(self, lsn: Optional[int] = None) -> Generator[Any, Any, None]:
        """Durably flush up to ``lsn``; batched when enabled."""
        target = self.wal.tail_lsn if lsn is None else lsn
        if target <= self.wal.flushed_lsn:
            return
        if not self.enabled:
            yield from self.wal.force(target)
            return
        rnd = self._join_round(target)
        yield Wait(rnd.done)
        # The round's write may have covered a shorter prefix than this
        # request needs if the WAL grew after the timer fired; rare, but
        # force semantics must hold unconditionally.
        if target > self.wal.flushed_lsn:
            yield from self.wal.force(target)

    def _join_round(self, target: int) -> _Round:
        rnd = self._round
        if rnd is None:
            rnd = _Round(self.kernel)
            self._round = rnd
            self._timer = self.kernel.schedule(self.window_ms, self._fire, rnd)
        rnd.target_lsn = max(rnd.target_lsn, target)
        rnd.size += 1
        self.requests_batched += 1
        if rnd.size >= self.batch_limit:
            if self._timer is not None:
                self._timer.cancel()
                self._timer = None
            self._fire(rnd)
        return rnd

    def _fire(self, rnd: _Round) -> None:
        if self._round is not rnd:
            return  # already fired via the batch limit
        self._round = None
        self._timer = None
        from repro.sim.process import Process

        Process(self.kernel, self._flush_round(rnd), name="gc.flush")

    def _flush_round(self, rnd: _Round) -> Generator[Any, Any, None]:
        self.rounds_flushed += 1
        self.tracer.record(self.kernel.now, "log.group_commit",
                           site=self.wal.site, batch=rnd.size,
                           lsn=rnd.target_lsn)
        obs = self.tracer.obs
        if obs is not None:
            sid = obs.begin(self.kernel.now, "log.group_commit",
                            site=self.wal.site, batch=rnd.size)
            yield from self.wal.force(rnd.target_lsn)
            obs.end(sid, self.kernel.now)
        else:
            yield from self.wal.force(rnd.target_lsn)
        rnd.done.trigger(None)

    # ------------------------------------------------------- statistics

    @property
    def mean_batch_size(self) -> float:
        if self.rounds_flushed == 0:
            return 0.0
        return self.requests_batched / self.rounds_flushed
