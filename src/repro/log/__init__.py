"""The common stable-storage log.

Camelot implements atomicity and permanence with a single write-ahead
log per site, accessed only through the disk manager.  This package
provides:

- :mod:`repro.log.records` — typed log records (update, prepare, commit,
  abort, replication, end) with a serialisable wire form;
- :mod:`repro.log.storage` — crash-surviving stable storage;
- :mod:`repro.log.disk` — the log device timing model (~15 ms per force,
  ~30 writes/s, the numbers the paper's Table 2 reports);
- :mod:`repro.log.wal` — the write-ahead log proper: LSNs, lazy buffered
  writes, synchronous forces;
- :mod:`repro.log.batcher` — group commit: folding many concurrent force
  requests into one disk write (the enabler for multithreaded TranMan
  throughput, paper §3.5 and Figure 4).
"""

from repro.log.batcher import GroupCommitBatcher
from repro.log.disk import DiskModel
from repro.log.records import (
    LogRecord,
    RecordKind,
    abort_pledge_record,
    abort_record,
    commit_record,
    coordinator_commit_record,
    end_record,
    prepare_record,
    replication_record,
    update_record,
)
from repro.log.storage import StableStore
from repro.log.wal import WriteAheadLog

__all__ = [
    "DiskModel",
    "GroupCommitBatcher",
    "LogRecord",
    "RecordKind",
    "StableStore",
    "WriteAheadLog",
    "abort_pledge_record",
    "abort_record",
    "commit_record",
    "coordinator_commit_record",
    "end_record",
    "prepare_record",
    "replication_record",
    "update_record",
]
