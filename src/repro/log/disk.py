"""The log device timing model.

The paper's numbers: a raw one-track disk write takes 26.8 ms; a log
force costs 15 ms (Table 2 — less than a full track because the log
writes partial tracks and the disk manager positions lazily); "a
transaction facility cannot do more than about 30 log writes per second"
without batching.

The model: each write occupies the device for ``force_time`` plus a
per-kilobyte transfer charge; the device serves one write at a time
(FIFO).  Batched writes (group commit) pay the fixed positioning cost
once for the whole batch — that is the entire throughput win of §3.5.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.config import CostModel
from repro.sim.kernel import Kernel
from repro.sim.process import Sleep
from repro.sim.resources import SimLock


class DiskModel:
    """One log disk: serial, with fixed positioning plus transfer time."""

    # 4 Mb/s-era disk transfer: ~0.02 ms per 64-byte record is generous
    # but keeps large batches from being free.
    TRANSFER_MS_PER_KB = 0.3

    def __init__(self, kernel: Kernel, cost: CostModel, name: str = "logdisk"):
        self.kernel = kernel
        self.cost = cost
        self.name = name
        self._busy = SimLock(kernel, name=f"{name}.busy")
        self.writes = 0
        self.bytes_written = 0
        self.busy_ms = 0.0

    def write_time(self, total_bytes: int) -> float:
        """Device occupancy for one (possibly batched) write."""
        return self.cost.log_force + self.TRANSFER_MS_PER_KB * (total_bytes / 1024.0)

    def write(self, total_bytes: int) -> Generator[Any, Any, None]:
        """Occupy the device for one write of ``total_bytes``.

        Returns when the data is on the platter; callers treat that as
        the durability point.
        """
        yield from self._busy.acquire()
        try:
            duration = self.write_time(total_bytes)
            self.writes += 1
            self.bytes_written += total_bytes
            self.busy_ms += duration
            yield Sleep(duration)
        finally:
            self._busy.release()

    @property
    def queue_depth(self) -> int:
        """Writes currently waiting for the device (excludes in-service)."""
        return len(self._busy._waiters)  # noqa: SLF001 - introspection for stats

    def utilization(self, elapsed_ms: float) -> float:
        if elapsed_ms <= 0:
            return 0.0
        return self.busy_ms / elapsed_ms

    def reset_stats(self) -> None:
        self.writes = 0
        self.bytes_written = 0
        self.busy_ms = 0.0
