"""Typed log records.

Record kinds follow the paper's protocols:

- ``UPDATE``: a server's old/new value pair for one object — written as
  late as possible, forced no later than prepare (or commit for a local
  transaction, where "in the best and typical case only one log write is
  needed to commit").
- ``PREPARE``: subordinate's prepared state (presumed-abort 2PC) or any
  site's prepare in the non-blocking protocol.
- ``COMMIT``: a site's own commit record.  Under the paper's §3.2
  optimization a subordinate writes it *lazily* (not forced).
- ``COORD_COMMIT``: the coordinator's commit record — the commitment
  point of 2PC, always forced.
- ``ABORT``: presumed abort makes this lazy everywhere.
- ``REPLICATION``: the non-blocking protocol's replication-phase record;
  a commit quorum of these *is* the commitment point.
- ``END``: coordinator forgets the transaction (all acks in).

Records serialise to/from plain dicts; stable storage keeps only the
serialised form, so nothing volatile can sneak across a crash.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, Optional


class RecordKind(str, Enum):
    UPDATE = "update"
    PREPARE = "prepare"
    COMMIT = "commit"
    COORD_COMMIT = "coord_commit"
    ABORT = "abort"
    REPLICATION = "replication"
    ABORT_PLEDGE = "abort_pledge"
    CHECKPOINT = "checkpoint"
    END = "end"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass
class LogRecord:
    """One log record; ``lsn`` is assigned by the WAL at append time."""

    kind: RecordKind
    tid: str
    site: str
    payload: Dict[str, Any] = field(default_factory=dict)
    lsn: Optional[int] = None
    size_bytes: int = 64

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind.value,
            "tid": self.tid,
            "site": self.site,
            "payload": dict(self.payload),
            "lsn": self.lsn,
            "size_bytes": self.size_bytes,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "LogRecord":
        return cls(
            kind=RecordKind(data["kind"]),
            tid=data["tid"],
            site=data["site"],
            payload=dict(data["payload"]),
            lsn=data["lsn"],
            size_bytes=data.get("size_bytes", 64),
        )


def update_record(tid: str, site: str, server: str, obj: str,
                  old_value: Any, new_value: Any) -> LogRecord:
    """Old/new value pair reported by a data server to the disk manager."""
    return LogRecord(
        kind=RecordKind.UPDATE,
        tid=tid,
        site=site,
        payload={"server": server, "object": obj,
                 "old": old_value, "new": new_value},
        size_bytes=96,
    )


def prepare_record(tid: str, site: str, coordinator: str,
                   sites: Optional[list] = None,
                   quorum_sizes: Optional[Dict[str, int]] = None) -> LogRecord:
    """Prepared state; for non-blocking commit it also carries the site
    list and quorum sizes from the prepare message."""
    payload: Dict[str, Any] = {"coordinator": coordinator}
    if sites is not None:
        payload["sites"] = list(sites)
    if quorum_sizes is not None:
        payload["quorum_sizes"] = dict(quorum_sizes)
    return LogRecord(kind=RecordKind.PREPARE, tid=tid, site=site,
                     payload=payload, size_bytes=128)


def commit_record(tid: str, site: str) -> LogRecord:
    """A site's own commit record (lazy at optimized subordinates)."""
    return LogRecord(kind=RecordKind.COMMIT, tid=tid, site=site)


def coordinator_commit_record(tid: str, site: str,
                              subordinates: Optional[list] = None) -> LogRecord:
    """The coordinator's forced commit record: the 2PC commitment point.

    It lists the subordinates so recovery can keep answering their
    inquiries until every commit-ack arrives (the coordinator "must not
    forget about the transaction before the subordinate writes its own
    commit record").
    """
    return LogRecord(kind=RecordKind.COORD_COMMIT, tid=tid, site=site,
                     payload={"subordinates": list(subordinates or [])},
                     size_bytes=96)


def abort_record(tid: str, site: str) -> LogRecord:
    """Abort record; never forced (presumed abort)."""
    return LogRecord(kind=RecordKind.ABORT, tid=tid, site=site)


def replication_record(tid: str, site: str, decision_data: Dict[str, Any]) -> LogRecord:
    """Non-blocking replication-phase record: the coordinator's intended
    outcome plus the vote vector, forced at each replication-quorum site."""
    return LogRecord(kind=RecordKind.REPLICATION, tid=tid, site=site,
                     payload={"decision_data": dict(decision_data)},
                     size_bytes=160)


def paxos_prepare_record(tid: str, site: str, leader: str,
                         sites: list, acceptors: list) -> LogRecord:
    """A Paxos Commit RM's prepared state.  At an acceptor site this
    record doubles as the ballot-0 acceptance of the RM's own instance
    (the co-location optimization): recovery rebuilds both roles from
    it.  The ``acceptors`` key discriminates it from the non-blocking
    protocol's prepare (which carries ``sites`` but never acceptors)."""
    return LogRecord(kind=RecordKind.PREPARE, tid=tid, site=site,
                     payload={"coordinator": leader,
                              "sites": list(sites),
                              "acceptors": list(acceptors)},
                     size_bytes=144)


def paxos_acceptor_record(tid: str, site: str, promised: int,
                          accepted: list, leader: str = "",
                          sites: Optional[list] = None,
                          acceptors: Optional[list] = None) -> LogRecord:
    """An acceptor's durable Paxos state: its promise and every
    acceptance as ``[instance, ballot, vote]`` triples.  Forced before
    the acceptor sends the matching phase-1b/phase-2b — an acceptor may
    never retract what a quorum might already have counted.  Carries the
    transaction's configuration so recovery can rebuild a pure-acceptor
    site (one whose RM never prepared) from this record alone."""
    return LogRecord(kind=RecordKind.REPLICATION, tid=tid, site=site,
                     payload={"paxos": True, "promised": promised,
                              "accepted": [list(a) for a in accepted],
                              "leader": leader,
                              "sites": list(sites or []),
                              "acceptors": list(acceptors or [])},
                     size_bytes=176)


def paxos_decision_record(tid: str, site: str, update_subs: list,
                          acceptors: list) -> LogRecord:
    """The leader's (or a winning candidate's) commit decision: every
    instance chose prepared at an acceptor quorum.  Forced before any
    PcOutcome(COMMITTED) leaves the site; lists the RMs still owed the
    outcome so recovery keeps notifying."""
    return LogRecord(kind=RecordKind.COORD_COMMIT, tid=tid, site=site,
                     payload={"protocol": "paxos_commit",
                              "subordinates": list(update_subs),
                              "acceptors": list(acceptors)},
                     size_bytes=112)


def abort_pledge_record(tid: str, site: str) -> LogRecord:
    """Non-blocking abort-quorum membership: a durable pledge never to
    join this transaction's commit quorum (forced before acknowledging
    an abort-join request)."""
    return LogRecord(kind=RecordKind.ABORT_PLEDGE, tid=tid, site=site,
                     size_bytes=48)


def end_record(tid: str, site: str) -> LogRecord:
    """Coordinator's end record: every ack received, state expunged."""
    return LogRecord(kind=RecordKind.END, tid=tid, site=site, size_bytes=32)


def checkpoint_record(site: str, server_values: Dict[str, Dict[str, Any]],
                      oldest_active_lsn: int,
                      tombstones: Dict[str, str] | None = None) -> LogRecord:
    """A fuzzy checkpoint: the *committed* view of every server's
    objects, the first LSN belonging to any still-active transaction,
    and the site's resolved-outcome tombstones.

    The log may be truncated before ``min(checkpoint_lsn,
    oldest_active_lsn)``; recovery starts from the checkpoint's values
    and replays only what follows.  Tombstones must ride along: the
    truncated prefix contained the commit records that let a recovered
    site answer a blocked peer's state request — without them, a
    takeover could assemble an abort quorum against a committed
    transaction (violating the paper's change 4).
    """
    return LogRecord(
        kind=RecordKind.CHECKPOINT, tid="", site=site,
        payload={"server_values": {s: dict(v)
                                   for s, v in server_values.items()},
                 "oldest_active_lsn": oldest_active_lsn,
                 "tombstones": dict(tombstones or {})},
        size_bytes=256 + 32 * sum(len(v) for v in server_values.values()))
