"""The write-ahead log proper.

Append is cheap and lazy: records go to a volatile buffer ("this record
is logged as late as possible").  A *force* makes everything up to a
target LSN durable and is the expensive primitive (15 ms) that the
paper's protocol analysis counts.

Force semantics under concurrency:

- If the target LSN is already durable, force returns immediately — a
  transaction whose records were swept out by someone else's force pays
  nothing.
- Without group commit, each force writes exactly the buffered records
  up to its target, serialising on the disk: N concurrent committers
  pay N disk writes.
- With group commit (see :mod:`repro.log.batcher`), concurrent forces
  are folded into one batched write.

Crash model: the buffer is volatile.  Only records that completed a
disk write are in the :class:`~repro.log.storage.StableStore` that
recovery later reads.
"""

from __future__ import annotations

from typing import Any, Generator, List, Optional

from repro.config import CostModel
from repro.log.disk import DiskModel
from repro.log.records import LogRecord
from repro.log.storage import StableStore
from repro.sim.kernel import Kernel
from repro.sim.resources import SimLock
from repro.sim.tracing import Tracer


class WriteAheadLog:
    """One site's log: volatile tail plus durable prefix."""

    def __init__(self, kernel: Kernel, cost: CostModel, disk: DiskModel,
                 store: StableStore, site: str, tracer: Tracer):
        self.kernel = kernel
        self.cost = cost
        self.disk = disk
        self.store = store
        self.site = site
        self.tracer = tracer
        self._next_lsn = store.last_lsn() + 1
        self._buffer: List[LogRecord] = []
        self.flushed_lsn = store.last_lsn()
        self._flush_lock = SimLock(kernel, name=f"{site}.wal.flush")
        self.appends = 0
        self.forces = 0
        self.last_append_at = 0.0
        # (lsn, callback) pairs fired once flushed_lsn reaches lsn — how
        # delayed commit-acks learn their lazy record became durable.
        self._watches: List[tuple[int, Any]] = []

    # ------------------------------------------------------------ write

    def append(self, record: LogRecord) -> LogRecord:
        """Assign the next LSN and buffer the record (volatile)."""
        record.lsn = self._next_lsn
        self._next_lsn += 1
        self._buffer.append(record)
        self.appends += 1
        self.last_append_at = self.kernel.now
        self.tracer.record(self.kernel.now, "log.append", site=self.site,
                           kind_of=record.kind.value, tid=record.tid)
        return record

    @property
    def tail_lsn(self) -> int:
        """LSN of the newest (possibly volatile) record."""
        return self._next_lsn - 1

    def is_durable(self, lsn: int) -> bool:
        return lsn <= self.flushed_lsn

    # ------------------------------------------------------------ force

    def force(self, lsn: Optional[int] = None) -> Generator[Any, Any, None]:
        """Make records up to ``lsn`` (default: the whole tail) durable.

        This is the *unbatched* force path; the disk manager routes
        through the batcher instead when group commit is on.
        """
        target = self.tail_lsn if lsn is None else lsn
        if target <= self.flushed_lsn:
            return
        self.forces += 1
        self.tracer.record(self.kernel.now, "log.force", site=self.site,
                           lsn=target)
        yield from self._flush_lock.acquire()
        try:
            yield from self._flush_up_to(target)
        finally:
            self._flush_lock.release()

    def _flush_up_to(self, target: int) -> Generator[Any, Any, None]:
        """Write buffered records with lsn <= target.  Caller holds the
        flush lock; durability is published only after the disk write."""
        if target <= self.flushed_lsn:
            return
        batch = [r for r in self._buffer if r.lsn <= target]
        if not batch:
            # Records were appended and flushed by someone else already.
            self.flushed_lsn = max(self.flushed_lsn, target)
            return
        total_bytes = sum(r.size_bytes for r in batch)
        yield from self.disk.write(total_bytes)
        self.store.append_many(batch)
        self._buffer = [r for r in self._buffer if r.lsn > target]
        self.flushed_lsn = max(self.flushed_lsn, batch[-1].lsn)
        self._fire_watches()

    # ------------------------------------------------ durability watches

    def add_durability_watch(self, lsn: int, callback: Any) -> None:
        """Call ``callback()`` once records up to ``lsn`` are durable.

        Fires immediately (next kernel turn) if already durable.
        """
        if lsn <= self.flushed_lsn:
            self.kernel.post_soon(callback)
        else:
            self._watches.append((lsn, callback))

    def _fire_watches(self) -> None:
        ready = [cb for lsn, cb in self._watches if lsn <= self.flushed_lsn]
        self._watches = [(lsn, cb) for lsn, cb in self._watches
                         if lsn > self.flushed_lsn]
        for cb in ready:
            self.kernel.post_soon(cb)

    def flush_all(self) -> Generator[Any, Any, None]:
        """Flush the entire tail (used by lazy background sweeps)."""
        yield from self.force(self.tail_lsn)

    # ------------------------------------------------------- inspection

    def buffered_records(self) -> List[LogRecord]:
        """Volatile tail (testing/diagnostics)."""
        return list(self._buffer)

    def durable_records(self) -> List[LogRecord]:
        return list(self.store.records())
