"""The observability vocabulary: span kinds and primitive classes.

The paper's whole method is classifying latency into a handful of
primitive costs (Tables 1-3): Mach IPC, Camelot RPC, log forces,
inter-TranMan datagrams, CPU service, lock waits.  Every span the
instrumentation emits carries a dotted ``kind``; this module maps kinds
onto those primitive classes so the critical-path extractor can bucket a
live run the same way the paper buckets its formulas.

The timeline renderer (:mod:`repro.bench.timeline`) shares this registry
so span names and timeline rows use one vocabulary.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

# ----------------------------------------------------- primitive classes

IPC = "ipc"                 # local Mach IPC (inline / oneway / outofline)
RPC = "rpc"                 # inter-site NetMsgServer RPC legs
LOG_FORCE = "log_force"     # synchronous log force (disk occupancy)
DATAGRAM = "datagram"       # inter-TranMan datagram transit
CPU = "cpu"                 # CPU service time (TranMan/server/logger)
LOCK = "lock"               # lock acquisition (the 0.5 ms get-lock)
LOCK_WAIT = "lock_wait"     # blocked behind a conflicting holder
ENVELOPE = "envelope"       # whole-transaction bracketing spans
OTHER = "other"

PRIMITIVE_CLASSES = (IPC, RPC, LOG_FORCE, DATAGRAM, CPU, LOCK, LOCK_WAIT)

# Classes summed when comparing a live breakdown against the static
# Table 3 formulas — everything attributed, including CPU service: the
# paper's primitive constants are measured wall-clock figures that fold
# dispatch/handler CPU in, so the live chain's CPU slivers belong on the
# comparable side.  Only unattributed gaps (work the instrumentation
# cannot tag with a transaction, e.g. ComMan service legs) stay out.
STATIC_COMPARABLE = (IPC, RPC, LOG_FORCE, DATAGRAM, CPU, LOCK, LOCK_WAIT)

# span kind (or dotted prefix, see classify) -> primitive class
KIND_CLASSES: Dict[str, str] = {
    "ipc.inline": IPC,
    "ipc.oneway": IPC,
    "ipc.outofline": IPC,
    "ipc.immediate": IPC,
    "rpc.netmsg": RPC,
    "net.datagram": DATAGRAM,
    "net.multicast": DATAGRAM,
    "log.force": LOG_FORCE,
    "log.group_commit": LOG_FORCE,
    "cpu.service": CPU,
    "lock.get": LOCK,
    "lock.wait": LOCK_WAIT,
    "txn": ENVELOPE,
    "txn.commit": ENVELOPE,
    "tranman.local_prepare": ENVELOPE,
}


def classify(kind: str) -> str:
    """Primitive class for a span kind (prefix match on the first dot)."""
    cls = KIND_CLASSES.get(kind)
    if cls is not None:
        return cls
    head = kind.split(".", 1)[0]
    return {"ipc": IPC, "rpc": RPC, "net": DATAGRAM,
            "cpu": CPU, "lock": LOCK}.get(head, OTHER)


# Static Table 3 term names -> primitive class, so a live breakdown and
# a StaticPath can be cross-checked bucket by bucket.
def classify_static_term(name: str) -> str:
    lowered = name.lower()
    if "datagram" in lowered:
        return DATAGRAM
    if "log force" in lowered:
        return LOG_FORCE
    if "rpc" in lowered and "remote" in lowered:
        return RPC
    if "lock" in lowered:
        return LOCK
    if "ipc" in lowered or "vote round" in lowered or "operation" in lowered:
        return IPC
    return OTHER


# --------------------------------------------------- timeline vocabulary

# Trace kinds worth a timeline row, and how to describe them (moved here
# from bench/timeline.py so timelines and spans share one registry).
TIMELINE_DESCRIPTIONS: Dict[str, Callable] = {
    "tranman.begin": lambda e: f"begin {e.detail.get('tid', '')}",
    "tranman.join": lambda e: f"join {e.detail.get('server', '')}",
    "tranman.commit_call": lambda e: "commit-transaction "
        f"({e.detail.get('protocol', '')}, {e.detail.get('subs', 0)} subs)",
    "tranman.local_prepared": lambda e: f"local vote: {e.detail.get('vote')}",
    "diskman.force": lambda e: "log force",
    "log.group_commit": lambda e: f"group commit x{e.detail.get('batch')}",
    "tranman.complete": lambda e: f"COMPLETE: {e.detail.get('outcome')}",
    "server.abort": lambda e: "undo + release locks",
    "server.drop_locks": lambda e: "drop locks",
    "nb.commit_point": lambda e: "COMMIT POINT (quorum formed)",
    "nb.takeover": lambda e: "timeout -> becoming coordinator",
    "nb.takeover_decided": lambda e: f"takeover decided: "
        f"{e.detail.get('outcome')}",
    "2pc.blocked_inquiry": lambda e: "blocked: inquiring",
    "2pc.heuristic_resolve": lambda e: "HEURISTIC "
        f"{e.detail.get('outcome')}",
    "2pc.heuristic_damage": lambda e: "!! heuristic damage",
    "fail.crash": lambda e: "**CRASH**",
    "fail.restart": lambda e: "**RESTART**",
    "recovery.plan": lambda e: f"recovery: {e.detail.get('in_doubt')} "
        "in doubt",
    "tranman.orphan_abort": lambda e: "orphan abort",
}

# Trace kinds rendered as inter-site arrows in the timeline.
ARROW_KINDS: Tuple[str, ...] = ("tranman.datagram", "tranman.multicast")

# Span kinds rendered as arrows when a timeline is built from a span
# store instead of a raw tracer.
SPAN_ARROW_KINDS: Tuple[str, ...] = ("net.datagram", "net.multicast",
                                     "rpc.netmsg")


def describe_span(kind: str, detail: Dict) -> Optional[str]:
    """Short human description of a span for timeline rows."""
    if kind in SPAN_ARROW_KINDS:
        return None  # rendered as an arrow, not a row
    cls = classify(kind)
    if cls is LOG_FORCE or cls == LOG_FORCE:
        return "log force"
    if kind.startswith("ipc."):
        return f"{kind.split('.', 1)[1]} IPC ({detail.get('msg_kind', '?')})"
    if kind == "lock.wait":
        return f"lock wait ({detail.get('object', '?')})"
    if kind == "lock.get":
        return "get lock"
    if kind == "cpu.service":
        return f"cpu ({detail.get('component', '?')})"
    return kind
