"""repro.obs — span-based causal profiling and latency attribution.

The read-only twin of :mod:`repro.chaos`: chaos judges correctness,
obs explains performance.  See EXPERIMENTS.md for the span model and
report format; run ``python -m repro.obs --help`` for the CLI.
"""

from repro.obs.attribution import (
    AttributionSummary,
    attribute_run,
    compare_static,
    render_report,
)
from repro.obs.critical_path import CriticalPath, extract, extract_for_tid
from repro.obs.export import to_trace_events, write_trace
from repro.obs.kinds import PRIMITIVE_CLASSES, classify
from repro.obs.metrics import Counter, Gauge, Histogram, Registry
from repro.obs.spans import Span, SpanRecorder, SpanTree, assemble_tree
from repro.obs.utilization import UtilizationReport, snapshot

__all__ = [
    "AttributionSummary",
    "attribute_run",
    "compare_static",
    "render_report",
    "CriticalPath",
    "extract",
    "extract_for_tid",
    "to_trace_events",
    "write_trace",
    "PRIMITIVE_CLASSES",
    "classify",
    "Counter",
    "Gauge",
    "Histogram",
    "Registry",
    "Span",
    "SpanRecorder",
    "SpanTree",
    "assemble_tree",
    "UtilizationReport",
    "snapshot",
]
