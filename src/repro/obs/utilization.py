"""Per-resource utilization accounting (paper Figures 4-5).

The paper's throughput argument is a bottleneck argument: update
throughput saturates on the *logger disk* (~30 forces/sec without group
commit), read throughput on the *TranMan/CPU*.  This module reads the
busy-time counters the simulation already keeps (disk busy, CPU busy)
plus the recorder's LAN-occupancy gauge, normalizes them over a run
window, and names the saturated resource — all strictly read-only.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.obs.metrics import Gauge


@dataclass
class ResourceUsage:
    """One resource's utilization over the observed window."""

    name: str
    kind: str                      # "disk" | "cpu" | "lan"
    utilization: float             # 0..1 fraction of capacity busy
    detail: Dict[str, float] = field(default_factory=dict)


@dataclass
class UtilizationReport:
    elapsed_ms: float
    resources: List[ResourceUsage]
    # component name ("tranman"/"server"/"logger") -> CPU ms in spans
    cpu_by_component: Dict[str, float] = field(default_factory=dict)

    def bottleneck(self) -> Optional[ResourceUsage]:
        """The busiest resource (the Figure 4/5 saturation candidate)."""
        if not self.resources:
            return None
        return max(self.resources, key=lambda r: r.utilization)

    def by_name(self, name: str) -> Optional[ResourceUsage]:
        for resource in self.resources:
            if resource.name == name:
                return resource
        return None


def snapshot(system, recorder=None,
             elapsed_ms: Optional[float] = None) -> UtilizationReport:
    """Read utilization out of a finished (or paused) run.

    ``system`` is a :class:`~repro.system.CamelotSystem`; ``recorder``
    an optional SpanRecorder supplying LAN occupancy and per-component
    CPU spans.  Nothing in the system is mutated.
    """
    elapsed = system.kernel.now if elapsed_ms is None else elapsed_ms
    resources: List[ResourceUsage] = []
    for name in system.site_names():
        runtime = system.runtime(name)
        log_disk = runtime.diskman.disk
        resources.append(ResourceUsage(
            name=f"{name}.logdisk", kind="disk",
            utilization=log_disk.utilization(elapsed),
            detail={"busy_ms": log_disk.busy_ms,
                    "writes": float(log_disk.writes),
                    "queue_depth": float(log_disk.queue_depth)}))
        data_disk = runtime.diskman.data_disk
        resources.append(ResourceUsage(
            name=f"{name}.datadisk", kind="disk",
            utilization=data_disk.utilization(elapsed),
            detail={"busy_ms": data_disk.busy_ms,
                    "writes": float(data_disk.writes)}))
        cpu = runtime.site.cpu
        resources.append(ResourceUsage(
            name=f"{name}.cpu", kind="cpu",
            utilization=cpu.utilization(elapsed),
            detail={"busy_ms": cpu.busy_ms,
                    "dispatches": float(cpu.dispatches),
                    "num_cpus": float(cpu.num_cpus),
                    "queue_depth": float(cpu.queue_depth)}))

    if recorder is not None and recorder.gauges.get("lan.in_flight"):
        gauge = Gauge("lan.in_flight")
        gauge.samples = list(recorder.gauges["lan.in_flight"])
        resources.append(ResourceUsage(
            name="lan", kind="lan",
            utilization=gauge.busy_fraction(until=system.kernel.now),
            detail={"mean_in_flight":
                    gauge.time_weighted_mean(until=system.kernel.now),
                    "max_in_flight": float(gauge.max or 0),
                    "delivered": float(system.lan.delivered)}))

    cpu_by_component: Dict[str, float] = {}
    if recorder is not None:
        for span in recorder.spans:
            if span.kind == "cpu.service" and span.closed:
                component = span.detail.get("component", "?")
                cpu_by_component[component] = (
                    cpu_by_component.get(component, 0.0) + span.duration)

    return UtilizationReport(elapsed_ms=elapsed, resources=resources,
                             cpu_by_component=cpu_by_component)
