"""Chrome trace-event export (Perfetto / chrome://tracing loadable).

Maps the span model onto the trace-event JSON format:

- each simulated *site* becomes a process (``pid``), each span kind's
  primitive class a thread (``tid``) within it, so Perfetto's track
  layout groups a site's IPC, log, and CPU activity into parallel rows;
- closed spans become complete ("X") events with microsecond ``ts`` and
  ``dur`` (simulated ms are exported as µs·1000, so 1 sim-ms reads as
  1 ms in the viewer);
- instants become "i" events; gauge samples become counter ("C") events.

The format reference is the Trace Event Format document; only the
fields Perfetto needs are emitted.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.obs.kinds import classify

_SCALE = 1_000.0  # simulated ms -> exported µs


def _pid_for(site: str, pids: Dict[str, int]) -> int:
    if site not in pids:
        pids[site] = len(pids) + 1
    return pids[site]


def to_trace_events(recorder) -> Dict[str, Any]:
    """The recorder's contents as a trace-event JSON object."""
    events: List[Dict[str, Any]] = []
    pids: Dict[str, int] = {}
    tids: Dict[tuple, int] = {}

    def tid_for(pid: int, cls: str) -> int:
        key = (pid, cls)
        if key not in tids:
            tids[key] = len([k for k in tids if k[0] == pid]) + 1
            events.append({"ph": "M", "pid": pid, "tid": tids[key],
                           "name": "thread_name", "args": {"name": cls}})
        return tids[key]

    for span in recorder.spans:
        if not span.closed:
            continue
        site = span.site or "?"
        pid = _pid_for(site, pids)
        events.append({
            "ph": "X", "name": span.kind,
            "cat": classify(span.kind),
            "pid": pid, "tid": tid_for(pid, classify(span.kind)),
            "ts": span.t0 * _SCALE,
            "dur": (span.t1 - span.t0) * _SCALE,
            "args": {"tid": span.tid, **{k: _jsonable(v) for k, v
                                         in span.detail.items()}},
        })
    for span in recorder.instants:
        site = span.site or "?"
        pid = _pid_for(site, pids)
        events.append({
            "ph": "i", "s": "p", "name": span.kind,
            "cat": classify(span.kind),
            "pid": pid, "tid": tid_for(pid, classify(span.kind)),
            "ts": span.t0 * _SCALE,
            "args": {"tid": span.tid, **{k: _jsonable(v) for k, v
                                         in span.detail.items()}},
        })
    for name, samples in recorder.gauges.items():
        for time, value in samples:
            events.append({
                "ph": "C", "name": name, "pid": 0, "ts": time * _SCALE,
                "args": {"value": value},
            })
    for site, pid in sorted(pids.items()):
        events.append({"ph": "M", "pid": pid, "name": "process_name",
                       "args": {"name": f"site {site}"}})

    return {"traceEvents": events, "displayTimeUnit": "ms"}


def _jsonable(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def write_trace(recorder, path: str) -> int:
    """Write the Chrome trace JSON; returns the event count."""
    doc = to_trace_events(recorder)
    with open(path, "w") as fh:
        json.dump(doc, fh)
    return len(doc["traceEvents"])
