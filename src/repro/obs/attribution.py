"""Latency attribution reports: live Table 3 from recorded spans.

Ties the pieces together: extract each committed transaction's critical
path, average the per-class buckets over the run, and render a text
report alongside the matching static-analysis prediction, with the
self-checks the CI smoke job asserts (balance, attribution bound,
static agreement).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.obs.critical_path import CriticalPath, extract_for_tid
from repro.obs.kinds import PRIMITIVE_CLASSES
from repro.obs.utilization import UtilizationReport

CLASS_LABELS = {
    "ipc": "local IPC",
    "rpc": "Camelot RPC (NetMsgServer)",
    "log_force": "log force",
    "datagram": "inter-TranMan datagram",
    "cpu": "CPU service",
    "lock": "lock acquisition",
    "lock_wait": "lock wait",
}


@dataclass
class AttributionSummary:
    """Mean critical-path breakdown over a run's committed transactions."""

    paths: List[CriticalPath]
    buckets_ms: Dict[str, float] = field(default_factory=dict)
    counts: Dict[str, float] = field(default_factory=dict)
    wall_ms: float = 0.0
    gap_ms: float = 0.0

    @property
    def n(self) -> int:
        return len(self.paths)

    @property
    def attributed_ms(self) -> float:
        return sum(self.buckets_ms.values())

    @property
    def static_comparable_ms(self) -> float:
        if not self.paths:
            return 0.0
        return (sum(p.static_comparable_ms() for p in self.paths)
                / len(self.paths))


def attribute_run(recorder, tids: Sequence[str],
                  envelope: str = "txn") -> AttributionSummary:
    """Critical paths for ``tids``, averaged class by class."""
    paths: List[CriticalPath] = []
    for tid in tids:
        path = extract_for_tid(recorder, tid, envelope=envelope)
        if path is not None:
            paths.append(path)
    summary = AttributionSummary(paths=paths)
    if not paths:
        return summary
    n = len(paths)
    for path in paths:
        for cls, ms in path.buckets().items():
            summary.buckets_ms[cls] = summary.buckets_ms.get(cls, 0.0) + ms
        for cls, count in path.counts().items():
            summary.counts[cls] = summary.counts.get(cls, 0.0) + count
        summary.wall_ms += path.wall_ms
        summary.gap_ms += path.gap_ms
    summary.buckets_ms = {c: v / n for c, v in summary.buckets_ms.items()}
    summary.counts = {c: v / n for c, v in summary.counts.items()}
    summary.wall_ms /= n
    summary.gap_ms /= n
    return summary


@dataclass
class StaticComparison:
    """Live comparable chain vs a static-analysis prediction."""

    static_ms: float
    live_ms: float

    @property
    def deviation(self) -> float:
        """Signed fractional deviation of live from static."""
        if self.static_ms == 0:
            return 0.0
        return (self.live_ms - self.static_ms) / self.static_ms

    def within(self, tolerance: float) -> bool:
        return abs(self.deviation) <= tolerance


def compare_static(summary: AttributionSummary,
                   static_path) -> StaticComparison:
    """Compare the live breakdown with a StaticPath's total.

    The live side sums the static-comparable classes — everything
    attributed, CPU included, since the paper's primitive constants are
    wall-clock inclusive; only unattributed gaps (work the
    instrumentation cannot tag with the transaction) stay out.
    """
    return StaticComparison(static_ms=static_path.total,
                            live_ms=summary.static_comparable_ms)


def render_report(summary: AttributionSummary, title: str,
                  comparison: Optional[StaticComparison] = None,
                  static_label: str = "",
                  tolerance: float = 0.10,
                  utilization: Optional[UtilizationReport] = None,
                  balanced: bool = True) -> str:
    """The per-primitive attribution table plus self-check lines."""
    lines = [f"repro.obs attribution — {title}",
             f"committed transactions analysed: {summary.n}", ""]
    lines.append("critical-path breakdown (mean per transaction):")
    lines.append(f"  {'primitive class':28s} {'count':>6s} {'ms':>9s} "
                 f"{'% wall':>7s}")
    wall = summary.wall_ms or 1.0
    for cls in PRIMITIVE_CLASSES:
        ms = summary.buckets_ms.get(cls, 0.0)
        if ms <= 0 and not summary.counts.get(cls):
            continue
        lines.append(f"  {CLASS_LABELS.get(cls, cls):28s} "
                     f"{summary.counts.get(cls, 0.0):6.1f} {ms:9.2f} "
                     f"{100.0 * ms / wall:6.1f}%")
    lines.append(f"  {'(unattributed)':28s} {'':6s} "
                 f"{summary.gap_ms:9.2f} "
                 f"{100.0 * summary.gap_ms / wall:6.1f}%")
    lines.append(f"  {'wall (begin -> completion)':28s} {'':6s} "
                 f"{summary.wall_ms:9.2f} {100.0:6.1f}%")
    lines.append("")

    checks: List[str] = []
    checks.append(f"spans balanced: {'ok' if balanced else 'FAIL'}")
    bound_ok = (summary.attributed_ms + summary.gap_ms
                <= summary.wall_ms + 1e-6)
    checks.append("attributed + gaps <= wall: "
                  f"{'ok' if bound_ok else 'FAIL'}")
    if comparison is not None:
        lines.append(f"static prediction ({static_label}): "
                     f"{comparison.static_ms:.1f} ms; "
                     f"live comparable chain: {comparison.live_ms:.1f} ms "
                     f"({comparison.deviation:+.1%})")
        checks.append(f"within {tolerance:.0%} of static: "
                      f"{'ok' if comparison.within(tolerance) else 'FAIL'}")
    lines.append("self-checks: " + "; ".join(checks))

    if utilization is not None:
        lines.append("")
        lines.append(f"utilization over {utilization.elapsed_ms:.0f} ms:")
        for resource in utilization.resources:
            extra = ""
            if resource.kind == "lan":
                extra = (f"  (mean in-flight "
                         f"{resource.detail.get('mean_in_flight', 0):.2f})")
            lines.append(f"  {resource.name:14s} "
                         f"{100.0 * resource.utilization:6.1f}%{extra}")
        if utilization.cpu_by_component:
            parts = ", ".join(
                f"{component}: {ms:.1f} ms" for component, ms in
                sorted(utilization.cpu_by_component.items()))
            lines.append(f"  cpu span time by component: {parts}")
        bottleneck = utilization.bottleneck()
        if bottleneck is not None:
            lines.append(f"  bottleneck: {bottleneck.name} "
                         f"({100.0 * bottleneck.utilization:.1f}%)")
    return "\n".join(lines)


def report_ok(summary: AttributionSummary,
              comparison: Optional[StaticComparison],
              tolerance: float, balanced: bool) -> bool:
    """The pass/fail the CLI exit code and CI smoke job key off."""
    if not balanced or summary.n == 0:
        return False
    if summary.attributed_ms + summary.gap_ms > summary.wall_ms + 1e-6:
        return False
    if comparison is not None and not comparison.within(tolerance):
        return False
    return True
