"""Critical-path extraction: where did a transaction's latency go?

The paper's Table 3 answers this *statically*: each protocol's
completion time is a hand-written sum of primitive costs.  This module
answers it *dynamically*.  Given a committed transaction's recorded
spans, it reconstructs the blocking chain — the sequence of primitive
occurrences such that at every instant of the transaction's lifetime,
either exactly one chain segment is "the thing being waited on" or the
instant is unattributed — and buckets the chain by primitive class.

Algorithm (backward greedy walk):

1. Decompose each span into *self segments* — the span's interval minus
   any same-site spans of the same transaction nested inside it — so a
   parent never double-counts a child's time.
2. Walk backward from the transaction's end.  At each cursor position
   pick the segment still active latest before the cursor (max effective
   end, earliest start on ties), attribute ``[t0, effective end]`` to
   it, and jump the cursor to its start.  Where no segment reaches the
   cursor, the distance to the next one is recorded as an unattributed
   gap (CPU consumed by processes the instrumentation doesn't tag with
   this tid — e.g. ComMan service legs).

By construction ``sum(chain) + gaps == wall`` exactly, which is the
balance invariant the CI smoke job asserts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.obs.kinds import (
    ENVELOPE,
    PRIMITIVE_CLASSES,
    STATIC_COMPARABLE,
    classify,
)
from repro.obs.spans import Span

_EPS = 1e-9


@dataclass
class _Segment:
    t0: float
    t1: float
    span: Span


@dataclass
class ChainLink:
    """One hop of the blocking chain."""

    t0: float
    t1: float
    span: Span

    @property
    def duration(self) -> float:
        return self.t1 - self.t0

    @property
    def cls(self) -> str:
        return classify(self.span.kind)


@dataclass
class CriticalPath:
    """The blocking chain of one transaction, plus its class breakdown."""

    tid: str
    t_start: float
    t_end: float
    links: List[ChainLink] = field(default_factory=list)
    gap_ms: float = 0.0

    @property
    def wall_ms(self) -> float:
        return self.t_end - self.t_start

    @property
    def attributed_ms(self) -> float:
        return sum(link.duration for link in self.links)

    def buckets(self) -> Dict[str, float]:
        """Milliseconds on the chain per primitive class."""
        out: Dict[str, float] = {cls: 0.0 for cls in PRIMITIVE_CLASSES}
        for link in self.links:
            out[link.cls] = out.get(link.cls, 0.0) + link.duration
        return out

    def counts(self) -> Dict[str, int]:
        """Distinct spans on the chain per primitive class.

        Distinct, not per-link: a span split around a nested child still
        counts as one occurrence of its primitive, which is what the
        paper's "2 forces / 3 messages" style counts mean.
        """
        seen: Dict[str, set] = {}
        for link in self.links:
            seen.setdefault(link.cls, set()).add(link.span.sid)
        return {cls: len(sids) for cls, sids in seen.items()}

    def static_comparable_ms(self) -> float:
        """Chain time in the classes the static formulas also count.

        Every attributed class counts, CPU included — the paper's
        primitive constants are wall-clock figures that fold handler
        CPU in (see ``kinds.STATIC_COMPARABLE``); only unattributed
        gaps stay out.
        """
        buckets = self.buckets()
        return sum(buckets.get(cls, 0.0) for cls in STATIC_COMPARABLE)


def _self_segments(spans: Sequence[Span]) -> List[_Segment]:
    segments: List[_Segment] = []
    for span in spans:
        nested = sorted(
            (c.t0, c.t1) for c in spans
            if c is not span and c.site == span.site
            and span.t0 - _EPS <= c.t0 and c.t1 <= span.t1 + _EPS
            and (c.t1 - c.t0) < (span.t1 - span.t0) - _EPS)
        cursor = span.t0
        for c0, c1 in nested:
            if c0 > cursor + _EPS:
                segments.append(_Segment(cursor, c0, span))
            cursor = max(cursor, c1)
        if span.t1 > cursor + _EPS:
            segments.append(_Segment(cursor, span.t1, span))
    return segments


def extract(spans: Sequence[Span], tid: str, t_start: float,
            t_end: float) -> CriticalPath:
    """Blocking chain for ``tid`` over the window ``[t_start, t_end]``."""
    usable = [s for s in spans
              if s.tid == tid and s.closed and s.t1 > s.t0 + _EPS
              and classify(s.kind) != ENVELOPE]
    segments = _self_segments(usable)

    path = CriticalPath(tid=tid, t_start=t_start, t_end=t_end)
    cursor = t_end
    while cursor > t_start + _EPS:
        best: Optional[_Segment] = None
        best_eff = t_start
        for seg in segments:
            if seg.t0 >= cursor - _EPS:
                continue
            eff = min(seg.t1, cursor)
            if eff <= seg.t0 + _EPS:
                continue
            if best is None or eff > best_eff + _EPS \
                    or (abs(eff - best_eff) <= _EPS and seg.t0 < best.t0):
                best, best_eff = seg, eff
        if best is None:
            path.gap_ms += cursor - t_start
            break
        if best_eff < cursor - _EPS:
            path.gap_ms += cursor - best_eff
        link_t0 = max(best.t0, t_start)
        path.links.append(ChainLink(link_t0, best_eff, best.span))
        segments.remove(best)
        cursor = link_t0
    path.links.reverse()
    return path


def extract_for_tid(recorder, tid: str,
                    envelope: str = "txn") -> Optional[CriticalPath]:
    """Critical path bounded by the transaction's recorded envelope span.

    ``envelope`` picks the window: ``"txn"`` (begin to completion, what
    Table 3's completion formulas cover) or ``"txn.commit"`` (the
    commit-protocol phase only).
    """
    spans = recorder.for_tid(tid)
    bounds = [s for s in spans if s.kind == envelope and s.closed]
    if not bounds:
        return None
    env = bounds[0]
    return extract(spans, tid, env.t0, env.t1)
