"""Counters, gauges, and fixed-bucket histograms.

Small, dependency-free metric primitives for the observability layer.
Histograms use fixed bucket boundaries (defaults tuned for millisecond
latencies) so percentile estimates cost O(buckets) memory regardless of
sample count; exact values are also retained up to a cap for tests that
want true quantiles on short runs.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Dict, List, Optional, Sequence, Tuple

# Default bucket upper bounds in ms: sub-ms to multi-second latencies.
DEFAULT_BOUNDS = (0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0,
                  200.0, 500.0, 1_000.0, 2_000.0, 5_000.0)


class Counter:
    """Monotonic event count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Gauge:
    """A sampled level (queue depth, in-flight count) with time weighting.

    Samples must arrive in nondecreasing time order (simulation time).
    ``time_weighted_mean`` integrates the step function the samples
    describe — the right average for occupancy-style quantities, where
    a level held for 100 ms should weigh 100x one held for 1 ms.
    """

    __slots__ = ("name", "samples")

    def __init__(self, name: str):
        self.name = name
        self.samples: List[Tuple[float, float]] = []

    def set(self, time: float, value: float) -> None:
        self.samples.append((time, value))  # lint: bounded(kept only when obs keep=True)

    @property
    def last(self) -> Optional[float]:
        return self.samples[-1][1] if self.samples else None

    @property
    def max(self) -> Optional[float]:
        return max(v for _, v in self.samples) if self.samples else None

    def time_weighted_mean(self, until: Optional[float] = None) -> float:
        if not self.samples:
            return 0.0
        end = self.samples[-1][0] if until is None else until
        total = 0.0
        span = end - self.samples[0][0]
        if span <= 0:
            return self.samples[-1][1]
        for (t0, v), (t1, _) in zip(self.samples, self.samples[1:]):
            total += v * (t1 - t0)
        total += self.samples[-1][1] * (end - self.samples[-1][0])
        return total / span

    def busy_fraction(self, until: Optional[float] = None) -> float:
        """Fraction of time the level sat above zero (occupancy)."""
        if not self.samples:
            return 0.0
        end = self.samples[-1][0] if until is None else until
        span = end - self.samples[0][0]
        if span <= 0:
            return 1.0 if self.samples[-1][1] > 0 else 0.0
        busy = 0.0
        for (t0, v), (t1, _) in zip(self.samples, self.samples[1:]):
            if v > 0:
                busy += t1 - t0
        if self.samples[-1][1] > 0:
            busy += end - self.samples[-1][0]
        return busy / span


class Histogram:
    """Fixed-boundary histogram with percentile estimation.

    ``quantile`` interpolates within the winning bucket (and uses the
    exact retained samples instead when the population is small enough
    to still be fully retained, so short-run tests see true values).
    """

    EXACT_CAP = 4096

    def __init__(self, name: str,
                 bounds: Sequence[float] = DEFAULT_BOUNDS):
        self.name = name
        self.bounds = tuple(bounds)
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.n = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._exact: List[float] = []

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect_right(self.bounds, value)] += 1
        self.n += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        if len(self._exact) < self.EXACT_CAP:
            self._exact.append(value)  # lint: bounded(kept only when obs keep=True)

    @property
    def mean(self) -> float:
        return self.total / self.n if self.n else 0.0

    def quantile(self, q: float) -> float:
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if self.n == 0:
            return 0.0
        if len(self._exact) == self.n:
            ordered = sorted(self._exact)
            idx = min(len(ordered) - 1, int(q * len(ordered)))
            return ordered[idx]
        target = q * self.n
        cum = 0
        for i, count in enumerate(self.bucket_counts):
            if cum + count >= target and count:
                lo = self.bounds[i - 1] if i > 0 else (self.min or 0.0)
                hi = self.bounds[i] if i < len(self.bounds) \
                    else (self.max or lo)
                frac = (target - cum) / count
                return lo + frac * (hi - lo)
            cum += count
        return self.max or 0.0

    @property
    def p50(self) -> float:
        return self.quantile(0.50)

    @property
    def p95(self) -> float:
        return self.quantile(0.95)

    @property
    def p99(self) -> float:
        return self.quantile(0.99)


class Registry:
    """Named metric namespace; one per run."""

    def __init__(self) -> None:
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        if name not in self.counters:
            self.counters[name] = Counter(name)  # lint: bounded(keyed by metric name)
        return self.counters[name]

    def gauge(self, name: str) -> Gauge:
        if name not in self.gauges:
            self.gauges[name] = Gauge(name)  # lint: bounded(keyed by metric name)
        return self.gauges[name]

    def histogram(self, name: str,
                  bounds: Sequence[float] = DEFAULT_BOUNDS) -> Histogram:
        if name not in self.histograms:
            self.histograms[name] = Histogram(name, bounds)  # lint: bounded(keyed by metric name)
        return self.histograms[name]

    def load_recorder(self, recorder) -> None:
        """Fold a SpanRecorder's counters and gauges into the registry."""
        for kind, count in recorder.counters.items():
            self.counter(f"spans.{kind}").inc(count)
        for name, samples in recorder.gauges.items():
            gauge = self.gauge(name)
            for time, value in samples:
                gauge.set(time, value)
