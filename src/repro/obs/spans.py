"""Span recording: timed intervals with transaction and site identity.

A span is one timed occurrence of a primitive — an IPC delivery, a
datagram transit, a log force, a lock wait — tagged with the site it
charges and, when known, the transaction it serves.  Substrates emit
spans through the recorder attached to their :class:`~repro.sim.tracing.
Tracer` (``tracer.obs``); when no recorder is attached the hook is a
single attribute test, so instrumentation costs nothing in ordinary
runs.

Three recording shapes cover every call site:

- :meth:`SpanRecorder.add` for intervals whose duration is known at
  emission time (IPC latency, LAN arrival time are computed before the
  delivery is posted);
- :meth:`SpanRecorder.begin` / :meth:`SpanRecorder.end` bracketing
  generator-based work (a log force through the batcher);
- :meth:`SpanRecorder.instant` for point events (locks dropped).

``keep=False`` turns the recorder into a counter: per-kind span counts
stay exact, no Span objects are retained — the CLI's count-only mode,
whose overhead the benchmark gate bounds.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.obs.kinds import SPAN_ARROW_KINDS


def tid_of(obj: Any) -> Optional[str]:
    """Best-effort transaction id of a message-shaped object.

    Handles protocol messages (``.tid``), Mach messages (``body``/
    ``trans`` dicts) and datagrams (``.payload.tid``) without importing
    any of their classes.
    """
    tid = getattr(obj, "tid", None)
    if tid is not None:
        return str(tid)
    payload = getattr(obj, "payload", None)
    if payload is not None:
        tid = getattr(payload, "tid", None)
        if tid is not None:
            return str(tid)
    body = getattr(obj, "body", None)
    if isinstance(body, dict):
        tid = body.get("tid")
        if tid is not None:
            return str(tid)
        inner = body.get("payload")
        if inner is not None:
            tid = getattr(inner, "tid", None)
            if tid is not None:
                return str(tid)
    trans = getattr(obj, "trans", None)
    if isinstance(trans, dict):
        tid = trans.get("tid")
        if tid is not None:
            return str(tid)
    return None


class Span:
    """One recorded interval (``t1 is None`` while still open)."""

    __slots__ = ("sid", "kind", "site", "t0", "t1", "tid", "detail")

    def __init__(self, sid: int, kind: str, site: Optional[str],
                 t0: float, t1: Optional[float], tid: Optional[str],
                 detail: Dict[str, Any]):
        self.sid = sid
        self.kind = kind
        self.site = site
        self.t0 = t0
        self.t1 = t1
        self.tid = tid
        self.detail = detail

    @property
    def duration(self) -> float:
        return 0.0 if self.t1 is None else self.t1 - self.t0

    @property
    def closed(self) -> bool:
        return self.t1 is not None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        end = f"{self.t1:.2f}" if self.t1 is not None else "…"
        return (f"<Span #{self.sid} {self.kind} {self.site} "
                f"[{self.t0:.2f},{end}] tid={self.tid}>")


class SpanRecorder:
    """Collects spans, instants, and time-stamped gauge samples."""

    def __init__(self, keep: bool = True):
        self.keep = keep
        self.spans: List[Span] = []
        self.instants: List[Span] = []
        self.counters: Dict[str, int] = defaultdict(int)
        # gauge name -> [(time, value)], nondecreasing time
        self.gauges: Dict[str, List[Tuple[float, float]]] = defaultdict(list)
        self._open: Dict[int, Span] = {}
        self._next_sid = 0
        self.begun = 0
        self.ended = 0
        if not keep:
            # Count-only fast path: rebind the recording surface to
            # counter-increment stubs (the Tracer rebinding idiom), so
            # the hot hooks skip tid extraction, detail construction,
            # and Span allocation entirely.
            self.add = self._add_count_only          # type: ignore
            self.begin = self._begin_count_only      # type: ignore
            self.end = self._end_count_only          # type: ignore
            self.instant = self._instant_count_only  # type: ignore
            self.gauge = self._gauge_count_only      # type: ignore
            self.ipc = self._ipc_count_only          # type: ignore
            self.net = self._net_count_only          # type: ignore
            self.begin_cpu = self._begin_cpu_count_only  # type: ignore

    # ------------------------------------------------------ generic API

    def add(self, t0: float, t1: float, kind: str,
            site: Optional[str] = None, tid: Optional[Any] = None,
            **detail: Any) -> Optional[int]:
        """A span whose end time is already known.

        ``tid`` may be any object with a sensible ``str()`` (a TID, a
        message tid field); conversion happens here so hot call sites
        never pay for it in count-only mode.
        """
        self.counters[kind] += 1
        if not self.keep:
            return None
        if tid is not None and type(tid) is not str:
            tid = str(tid)
        sid = self._next_sid = self._next_sid + 1
        self.spans.append(Span(sid, kind, site, t0, t1, tid, detail))
        return sid

    def begin(self, time: float, kind: str, site: Optional[str] = None,
              tid: Optional[Any] = None, **detail: Any) -> Optional[int]:
        self.counters[kind] += 1
        self.begun += 1
        if not self.keep:
            return None
        if tid is not None and type(tid) is not str:
            tid = str(tid)
        sid = self._next_sid = self._next_sid + 1
        span = Span(sid, kind, site, time, None, tid, detail)
        self.spans.append(span)
        self._open[sid] = span
        return sid

    def end(self, sid: Optional[int], time: float) -> None:
        self.ended += 1
        if sid is None or not self.keep:
            return
        span = self._open.pop(sid, None)
        if span is not None:
            span.t1 = time

    def instant(self, time: float, kind: str, site: Optional[str] = None,
                tid: Optional[Any] = None, **detail: Any) -> None:
        self.counters[kind] += 1
        if self.keep:
            if tid is not None and type(tid) is not str:
                tid = str(tid)
            sid = self._next_sid = self._next_sid + 1
            self.instants.append(Span(sid, kind, site, time, time, tid,
                                      detail))

    def gauge(self, time: float, name: str, value: float) -> None:
        if self.keep:
            self.gauges[name].append((time, value))

    # ------------------------------------------ domain-specific helpers
    #
    # One-line hooks for the substrates, so the guarded call sites stay
    # small and tid extraction lives here, not in sim code.

    def ipc(self, t0: float, t1: float, flavour: str, site: Optional[str],
            msg: Any) -> None:
        self.add(t0, t1, f"ipc.{flavour}", site=site, tid=tid_of(msg),
                 msg_kind=getattr(msg, "kind", None))

    def net(self, t0: float, t1: float, src: str, dst: str, payload: Any,
            rpc: bool = False, multicast: bool = False) -> None:
        if rpc:
            kind = "rpc.netmsg"
        elif multicast:
            kind = "net.multicast"
        else:
            kind = "net.datagram"
        name = type(payload).__name__
        inner = getattr(payload, "payload", None)
        if inner is not None:
            name = type(inner).__name__
        self.add(t0, t1, kind, site=src, tid=tid_of(payload), dst=dst,
                 msg_kind=name)

    def begin_cpu(self, time: float, component: str, site: Optional[str],
                  msg: Any = None) -> Optional[int]:
        return self.begin(time, "cpu.service", site=site,
                          tid=tid_of(msg) if msg is not None else None,
                          component=component,
                          msg_kind=getattr(msg, "kind", None))

    def count_cpu(self) -> None:
        """Count-only stand-in for a ``begin_cpu``/``end`` bracket.

        The per-message dispatch paths are the hottest hook sites; when
        the recorder is not keeping spans they take this single zero-arg
        call instead of the two-call bracket.
        """
        self.counters["cpu.service"] += 1

    # -------------------------------------------- count-only fast path
    #
    # Bound over the public surface when ``keep=False``: per-kind counts
    # and begin/end balance stay exact, everything else is skipped.  The
    # benchmark gate (``test_tracing_overhead_floor``) bounds what this
    # mode may cost over an untraced run.

    def _add_count_only(self, t0: float, t1: float, kind: str,
                        site: Optional[str] = None,
                        tid: Optional[str] = None,
                        **detail: Any) -> Optional[int]:
        self.counters[kind] += 1
        return None

    def _begin_count_only(self, time: float, kind: str,
                          site: Optional[str] = None,
                          tid: Optional[str] = None,
                          **detail: Any) -> Optional[int]:
        self.counters[kind] += 1
        self.begun += 1
        return None

    def _end_count_only(self, sid: Optional[int], time: float) -> None:
        self.ended += 1

    def _instant_count_only(self, time: float, kind: str,
                            site: Optional[str] = None,
                            tid: Optional[str] = None,
                            **detail: Any) -> None:
        self.counters[kind] += 1

    def _gauge_count_only(self, time: float, name: str,
                          value: float) -> None:
        pass

    _IPC_KINDS = {"inline": "ipc.inline", "oneway": "ipc.oneway",
                  "outofline": "ipc.outofline", "immediate": "ipc.immediate"}

    def _ipc_count_only(self, t0: float, t1: float, flavour: str,
                        site: Optional[str], msg: Any) -> None:
        # Dict lookup instead of "ipc." + flavour: the interned constants
        # carry cached hashes, the concat result never does.
        kinds = self._IPC_KINDS
        self.counters[kinds[flavour] if flavour in kinds
                      else "ipc." + flavour] += 1

    def _net_count_only(self, t0: float, t1: float, src: str, dst: str,
                        payload: Any, rpc: bool = False,
                        multicast: bool = False) -> None:
        if rpc:
            kind = "rpc.netmsg"
        elif multicast:
            kind = "net.multicast"
        else:
            kind = "net.datagram"
        self.counters[kind] += 1

    def _begin_cpu_count_only(self, time: float, component: str,
                              site: Optional[str],
                              msg: Any = None) -> Optional[int]:
        self.counters["cpu.service"] += 1
        self.begun += 1
        return None

    # ----------------------------------------------------- consistency

    @property
    def balanced(self) -> bool:
        """Every begun span was ended (no dangling begin/end pairs)."""
        return self.begun == self.ended and not self._open

    def open_spans(self) -> List[Span]:
        return list(self._open.values())

    def count(self, kind: str) -> int:
        return self.counters.get(kind, 0)

    # --------------------------------------------------------- queries

    def all_spans(self) -> List[Span]:
        return self.spans + self.instants

    def for_tid(self, tid: str) -> List[Span]:
        return [s for s in self.all_spans() if s.tid == tid]

    def of_kind(self, kind: str) -> List[Span]:
        return [s for s in self.all_spans() if s.kind == kind]

    def tids(self) -> List[str]:
        seen: Dict[str, None] = {}
        for s in self.spans:
            if s.tid is not None:
                seen.setdefault(s.tid)
        return list(seen)

    def clear(self) -> None:
        self.spans.clear()
        self.instants.clear()
        self.counters.clear()
        self.gauges.clear()
        self._open.clear()
        self.begun = self.ended = 0


# --------------------------------------------------------------- trees


class SpanNode:
    """One span plus the spans nested inside it (same site)."""

    __slots__ = ("span", "children")

    def __init__(self, span: Span):
        self.span = span
        self.children: List["SpanNode"] = []

    def walk(self) -> Iterable["SpanNode"]:
        yield self
        for child in self.children:
            yield from child.walk()


class SpanTree:
    """A transaction's spans, nested per site, with cross-site edges.

    Nesting is by interval containment among closed spans on one site —
    the discrete-event substrate interleaves coroutines, so begin/end
    stacking cannot be assumed; containment is what the timestamps
    guarantee.  ``edges`` stitches the causal cross-site links: each
    network span points at the first span on the destination site that
    starts at or after its arrival.
    """

    def __init__(self, tid: str, roots: Dict[str, List[SpanNode]],
                 edges: List[Tuple[Span, Span]]):
        self.tid = tid
        self.roots = roots
        self.edges = edges

    def nodes(self) -> Iterable[SpanNode]:
        for site_roots in self.roots.values():
            for root in site_roots:
                yield from root.walk()


def assemble_tree(spans: List[Span], tid: str) -> SpanTree:
    """Nest one transaction's spans per site and stitch cross-site edges."""
    mine = [s for s in spans if s.tid == tid and s.closed]
    by_site: Dict[str, List[Span]] = defaultdict(list)
    for span in mine:
        by_site[span.site or "?"].append(span)

    roots: Dict[str, List[SpanNode]] = {}
    for site, site_spans in sorted(by_site.items()):
        # Longest intervals first at equal start: parents precede their
        # children, so a stack scan nests them.
        site_spans.sort(key=lambda s: (s.t0, -(s.t1 - s.t0), s.sid))
        site_roots: List[SpanNode] = []
        stack: List[SpanNode] = []
        for span in site_spans:
            node = SpanNode(span)
            while stack and stack[-1].span.t1 < span.t1:
                stack.pop()
            if stack and stack[-1].span.t0 <= span.t0 \
                    and span.t1 <= stack[-1].span.t1:
                stack[-1].children.append(node)
            else:
                stack.clear()
                site_roots.append(node)
            stack.append(node)
        roots[site] = site_roots

    edges: List[Tuple[Span, Span]] = []
    for span in mine:
        if span.kind not in SPAN_ARROW_KINDS:
            continue
        dst = span.detail.get("dst")
        if dst is None or dst not in by_site:
            continue
        successor = min(
            (s for s in by_site[dst] if s.t0 >= span.t1
             and s.kind not in SPAN_ARROW_KINDS),
            key=lambda s: (s.t0, s.sid), default=None)
        if successor is not None:
            edges.append((span, successor))
    return SpanTree(tid, roots, edges)
