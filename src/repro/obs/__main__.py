"""CLI: run a scenario under span instrumentation and attribute latency.

::

    python -m repro.obs                      # stock 1-subordinate update
    python -m repro.obs local-update --trials 10
    python -m repro.obs figure4              # logger-bottleneck validation
    python -m repro.obs update-1sub --trace trace.json   # Perfetto export
    python -m repro.obs update-1sub --keep counts        # count-only mode

Exit status: 0 when every self-check passes, 1 when a check fails,
2 on usage errors.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis import static_analysis as sa
from repro.config import SystemConfig
from repro.core.outcomes import Outcome, ProtocolKind
from repro.obs.attribution import (
    attribute_run,
    compare_static,
    render_report,
    report_ok,
)
from repro.obs.export import write_trace
from repro.obs.spans import SpanRecorder
from repro.obs.utilization import snapshot
from repro.system import CamelotSystem

DRAIN_MS = 300.0

SCENARIOS = {
    "update-1sub": dict(
        title="2PC update, 1 subordinate (stock scenario)",
        sites={"a": 1, "b": 1}, op="write",
        protocol=ProtocolKind.TWO_PHASE,
        static=lambda cost: sa.twophase_update_completion(1, cost),
        tolerance=0.10),
    "local-update": dict(
        title="local update (no subordinates)",
        sites={"a": 1}, op="write",
        protocol=ProtocolKind.TWO_PHASE,
        static=lambda cost: sa.local_update_completion(cost),
        tolerance=0.10),
    "local-read": dict(
        title="local read (read-only optimization)",
        sites={"a": 1}, op="read",
        protocol=ProtocolKind.TWO_PHASE,
        static=lambda cost: sa.local_read_completion(cost),
        # Short path: the commit-reply IPC the static formula omits
        # weighs proportionally more.
        tolerance=0.15),
    "nb-update-1sub": dict(
        title="non-blocking update, 1 subordinate",
        sites={"a": 1, "b": 1}, op="write",
        protocol=ProtocolKind.NON_BLOCKING,
        static=lambda cost: sa.nonblocking_update_completion(1, cost),
        tolerance=0.15),
    "paxos-update-1sub": dict(
        title="Paxos Commit update, 1 subordinate (F=0: 2PC-degenerate)",
        sites={"a": 1, "b": 1}, op="write",
        protocol=ProtocolKind.PAXOS_COMMIT,
        static=lambda cost: sa.paxos_update_completion(1, cost),
        tolerance=0.10),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="span-based latency attribution for simulated runs")
    parser.add_argument("scenario", nargs="?", default="update-1sub",
                        choices=sorted(SCENARIOS) + ["figure4"],
                        help="workload to run (default: update-1sub)")
    parser.add_argument("--trials", type=int, default=5,
                        help="measured transactions (default 5)")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--trace", metavar="PATH",
                        help="write Chrome trace-event JSON here")
    parser.add_argument("--keep", choices=["spans", "counts"],
                        default="spans",
                        help="'counts' disables span retention "
                             "(the low-overhead mode)")
    return parser


def _run_latency_scenario(name: str, args) -> int:
    spec = SCENARIOS[name]
    config = SystemConfig(sites=dict(spec["sites"]), seed=args.seed)
    system = CamelotSystem(config)
    recorder = SpanRecorder(keep=args.keep == "spans")
    system.tracer.attach_obs(recorder)
    app = system.application(sorted(spec["sites"])[0])
    services = system.default_services()

    def workload():
        for _ in range(args.trials + 1):  # +1 warmup
            yield from app.minimal_transaction(
                services, op=spec["op"], protocol=spec["protocol"])

    system.run_process(workload())
    system.run_for(DRAIN_MS)

    if args.keep == "counts":
        print(f"repro.obs count-only run — {spec['title']}")
        for kind in sorted(recorder.counters):
            print(f"  {kind:20s} {recorder.counters[kind]}")
        print(f"  spans balanced: {'ok' if recorder.balanced else 'FAIL'}")
        return 0 if recorder.balanced else 1

    measured = [r for r in app.history[1:]
                if r.outcome is Outcome.COMMITTED]
    summary = attribute_run(recorder, [str(r.tid) for r in measured])
    static_path = spec["static"](system.cost)
    comparison = compare_static(summary, static_path)
    utilization = snapshot(system, recorder)
    print(render_report(summary, spec["title"], comparison=comparison,
                        static_label=static_path.label,
                        tolerance=spec["tolerance"],
                        utilization=utilization,
                        balanced=recorder.balanced))
    if args.trace:
        n = write_trace(recorder, args.trace)
        print(f"\nwrote {n} trace events to {args.trace}")
    return 0 if report_ok(summary, comparison, spec["tolerance"],
                          recorder.balanced) else 1


def _run_figure4(args) -> int:
    """Figure-4-style saturation run: local updates, group commit off.

    The check is the paper's bottleneck claim — with an unbatched log,
    update throughput saturates on the logger disk, and utilization
    accounting must name it.
    """
    config = SystemConfig(sites={"a": 1}, seed=args.seed,
                          group_commit=False, keep_trace_events=False)
    system = CamelotSystem(config)
    recorder = SpanRecorder(keep=args.keep == "spans")
    system.tracer.attach_obs(recorder)
    services = system.default_services()
    clients = 8
    duration = 4_000.0

    def client(app, obj):
        while system.kernel.now < duration:
            try:
                yield from app.minimal_transaction(services, op="write",
                                                   obj=obj)
            except Exception:
                pass

    for i in range(clients):
        # Disjoint objects: the saturation question is about the logger,
        # not lock contention.
        system.spawn(client(system.application("a", name=f"app{i}"),
                            f"x{i}"),
                     f"fig4.client{i}")
    system.run_for(duration + DRAIN_MS)

    utilization = snapshot(system, recorder, elapsed_ms=duration)
    print(f"repro.obs figure4 — {clients} clients, group commit off, "
          f"{duration:.0f} ms")
    for resource in utilization.resources:
        print(f"  {resource.name:14s} "
              f"{100.0 * resource.utilization:6.1f}%")
    bottleneck = utilization.bottleneck()
    print(f"  bottleneck: {bottleneck.name} "
          f"({100.0 * bottleneck.utilization:.1f}%)")
    ok = bottleneck.name.endswith("logdisk")
    print(f"  logger saturated: {'ok' if ok else 'FAIL'}")
    return 0 if ok else 1


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.scenario == "figure4":
        return _run_figure4(args)
    return _run_latency_scenario(args.scenario, args)


if __name__ == "__main__":
    sys.exit(main())
