"""Paxos Commit (Gray & Lamport) — the third protocol family.

Commitment as consensus: one Paxos instance per resource manager decides
that RM's prepared/aborted value, and the transaction commits iff every
instance chooses a non-abort value.  With N = 2F+1 acceptors the
protocol tolerates F acceptor faults without blocking — a crashed leader
is replaced by any participant that times out and wins an election,
which is exactly the coordinator-crash-after-prepare hole our chaos
sweeps showed in plain 2PC.

Layout choices (all from the paper's co-location optimizations):

- Acceptors are transaction sites: the leader-first odd prefix of the
  participant list.  Every acceptor is co-located with an RM, so an
  RM's :class:`~repro.core.messages.PcVote` *is* its ballot-0 phase-2a,
  piggybacked on the prepare round, and a vote arriving from an
  acceptor site doubles as that acceptor's phase-2b for its own
  instance (durable there before the vote is sent).
- F=0 degenerates to optimized 2PC: the leader is the only acceptor,
  its ballot-0 tally is volatile, and the forced decision record is the
  commitment point — 2 log forces and 3 datagrams on the happy path,
  the same cost profile as :mod:`repro.core.twophase`.
- Presumed abort everywhere: NO votes and abort outcomes are never
  forced, and a leader aborts unilaterally only on an *explicit* NO
  vote.  A vote timeout never aborts unilaterally at F>=1 — the leader
  starts an election instead, because a candidate may already be
  assembling a commit from durable ballot-0 acceptances.  Once the
  election is handed off, the candidate owns the retry loop and the
  leader's vote timer stops.
- Acceptor durability is batch-ordered: every ``PC_ACCEPT_FORCE`` is
  queued with the tallies and replies that depend on it, FIFO.  The WAL
  flushes prefixes (a force completing means every earlier record is
  durable too), so when the k-th acceptor force lands the k-th batch —
  and nothing queued after it — may act.  A vote from an acceptor site
  is that acceptor's phase-2b for its own instance, so it must be
  *durable there before the vote is sent*: YES rides the forced prepare
  record, and READ_ONLY (which forces no prepare) rides a forced
  acceptor record instead.

Election (:class:`PcCandidate`): ballots are made unique per site by
``round * len(sites) + site_index + 1``; a nacked or timed-out round
backs off deterministically (``poll_timeout * 2**round``, a pure timer
effect, so `flow-determinism` holds).  Phase 1 collects F+1 promises,
free instances are filled with the abort value, and the vector must be
*chosen* (accepted by F+1 acceptors at the candidate's ballot) before
the candidate acts on it — acting on an unchosen abort vector could
diverge from a later candidate that intersects a ballot-0 commit.
"""

from __future__ import annotations

from enum import Enum
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.core.effects import (
    CancelTimer,
    Complete,
    Effect,
    ForceLog,
    Forget,
    LazySendDatagram,
    LocalAbort,
    LocalCommit,
    LocalPrepare,
    SendDatagram,
    StartTakeover,
    StartTimer,
    Trace,
)
from repro.core.effects import WriteLog
from repro.core.messages import (
    PcOutcome,
    PcOutcomeAck,
    PcP1a,
    PcP1b,
    PcP2a,
    PcPhase2b,
    PcPrepare,
    PcVote,
    ProtocolMessage,
)
from repro.core.outcomes import Outcome, Vote
from repro.core.quorum import QuorumSpec
from repro.core.tid import TID
from repro.log.records import (
    LogRecord,
    abort_record,
    commit_record,
    end_record,
    paxos_acceptor_record,
    paxos_decision_record,
    paxos_prepare_record,
)

# Force tokens.  None may contain "REPL": the protocol-graph walk treats
# REPL-flavoured force tokens as replication-quorum progress, which
# belongs to the non-blocking family only.
PC_PREPARE_FORCE = "pc.prepare"
PC_ACCEPT_FORCE = "pc.accept"
PC_DECIDE_FORCE = "pc.decide"
PC_COMMIT_DURABLE = "pc.commit_durable"

# Timer tokens.
PC_VOTE_TIMER = "pc.votes"
PC_OUTCOME_TIMER = "pc.outcome"
PC_NOTIFY_TIMER = "pc.notify"
PC_ELECTION_TIMER = "pc.election"

# The value a candidate proposes for an instance no promiser has seen:
# "any value not provably chosen may be aborted".
ABORT_FILLER = "aborted"


class PcProtocolViolation(AssertionError):
    """An impossible protocol state — safety, not liveness."""


def ballot_for(attempt: int, sites: Sequence[str], site: str) -> int:
    """Globally unique, per-site monotone ballot numbers (> 0; ballot 0
    is the prepare round's implicit first ballot)."""
    return attempt * len(sites) + list(sites).index(site) + 1


class PaxosAcceptor:
    """One transaction's acceptor state at one site.

    Deliberately *not* a protocol machine (no handler-named methods):
    it is embedded in the leader and participant machines, which own
    the force-before-reply discipline.  ``promised`` and ``accepted``
    mirror :func:`repro.log.records.paxos_acceptor_record` exactly.
    """

    def __init__(self, site: str, leader: str = "",
                 sites: Sequence[str] = (),
                 acceptors: Sequence[str] = ()) -> None:
        self.site = site
        self.leader = leader
        self.sites = list(sites)
        self.acceptors = list(acceptors)
        self.promised = 0
        # instance (RM site) -> (ballot, value)  # lint: bounded(per-txn
        # acceptor state, discarded with the embedding machine)
        self.accepted: Dict[str, Tuple[int, str]] = {}  # lint: bounded(one entry per RM instance)

    def ballot0_accept(self, instance: str, value: str) -> bool:
        """Accept an RM's ballot-0 proposal; False if superseded or a
        duplicate (ballot-0 values are unique per instance, so a repeat
        carries the identical value and is simply idempotent)."""
        if self.promised > 0:
            return False
        if instance in self.accepted:
            return False
        self.accepted[instance] = (0, value)
        return True

    def promise(self, ballot: int) -> bool:
        """Phase-1 promise; False when a higher ballot was promised
        (the caller nacks with the current ``promised``)."""
        if ballot < self.promised:
            return False
        self.promised = ballot
        return True

    def accept_vector(self, ballot: int,
                      values: Sequence[Tuple[str, str]]) -> bool:
        """Phase-2 acceptance of a candidate's whole value vector."""
        if ballot < self.promised:
            return False
        self.promised = ballot
        for instance, value in values:
            self.accepted[instance] = (ballot, value)
        return True

    def triples(self) -> Tuple[Tuple[str, int, str], ...]:
        """Every acceptance as wire/record-ready (instance, ballot,
        value) triples, deterministically ordered."""
        return tuple((inst, ballot, value) for inst, (ballot, value)
                     in sorted(self.accepted.items()))

    def record(self, tid: TID) -> "LogRecord":
        return paxos_acceptor_record(str(tid), self.site, self.promised,
                                     [list(t) for t in self.triples()],
                                     leader=self.leader, sites=self.sites,
                                     acceptors=self.acceptors)


class _AcceptorBatching:
    """Durability-batch queue shared by the machines embedding a
    :class:`PaxosAcceptor` (leader and participant).

    Replies — and, on the leader, own-instance tallies — that quote
    acceptor state are queued in FIFO batches, each covered by one
    ``ForceLog``; the k-th ``PC_ACCEPT_FORCE`` completion releases
    exactly the k-th batch.  Sound because the WAL flushes prefixes and
    the ForceLog is appended to the log in the same scheduler step that
    queues the batch (no yielding effect ever precedes it in a
    handler's effect list), so queue order equals LSN order and the
    k-th completion proves the k-th record — plus everything queued
    before it — durable.
    """

    _force_batches: List[Tuple[List[str], List[Tuple[str, ProtocolMessage]]]]

    def _force_acceptor_state(self, record: LogRecord,
                              own_instances: Sequence[str],
                              replies: Sequence[Tuple[str, ProtocolMessage]]
                              ) -> Effect:
        """Queue a durability batch and return the ForceLog covering it."""
        self._force_batches.append((list(own_instances), list(replies)))
        return ForceLog(record, PC_ACCEPT_FORCE)

    def _send_when_durable(self, dst: str,
                           msg: ProtocolMessage) -> List[Effect]:
        """Release a reply quoting in-memory acceptor state: send now if
        that state is durable, else ride the newest in-flight batch —
        its record snapshot already covers the state being quoted, so
        once that force lands the reply can no longer be retracted by a
        crash."""
        if self._force_batches:
            self._force_batches[-1][1].append((dst, msg))
            return []
        return [SendDatagram(dst, msg)]


class PcLeaderState(Enum):
    INIT = "init"
    COLLECTING = "collecting"
    FORCING_PREPARE = "forcing_prepare"
    FORCING_DECISION = "forcing_decision"
    NOTIFYING = "notifying"
    DONE = "done"


class PcLeader(_AcceptorBatching):
    """Ballot-0 leader: transaction coordinator plus co-located acceptor.

    Drives the prepare round, tallies ballot-0 acceptances per instance,
    forces the decision record once every instance has an acceptor
    quorum, and notifies.  At F=0 (no remote acceptors) the tally is
    its own volatile acceptor and the machine is bit-for-bit 2PC-shaped:
    prepare datagram out, vote datagram in, forced decision, outcome
    datagram out.
    """

    def __init__(self, tid: TID, site: str, subordinates: Sequence[str],
                 acceptors: Sequence[str], quorum: QuorumSpec,
                 vote_timeout_ms: float = 1500.0,
                 notify_timeout_ms: float = 1500.0,
                 max_vote_retries: int = 10,
                 max_notify_retries: int = 10) -> None:
        if site not in acceptors:
            raise PcProtocolViolation(
                f"leader {site} must belong to its acceptor set {acceptors}")
        self.tid = tid
        self.site = site
        self.subordinates = list(subordinates)
        self.sites = [site] + [s for s in subordinates if s != site]
        self.acceptors = list(acceptors)
        self.remote_acceptors = [a for a in acceptors if a != site]
        self.quorum = quorum
        self.vote_timeout_ms = vote_timeout_ms
        self.notify_timeout_ms = notify_timeout_ms
        self.max_vote_retries = max_vote_retries
        self.max_notify_retries = max_notify_retries

        self.state = PcLeaderState.INIT
        self.local_vote: Optional[Vote] = None
        self.acceptor = PaxosAcceptor(site, leader=site, sites=self.sites,
                                      acceptors=self.acceptors)
        # subordinate RM -> vote value, from any acceptance we witness
        # (own instance is covered by ``local_vote``).
        # lint: bounded(per-txn machine, discarded whole)
        self.votes: Dict[str, str] = {}  # lint: bounded(one entry per subordinate)
        # instance -> acceptor sites holding a durable ballot-0
        # acceptance.  # lint: bounded(per-txn machine, discarded whole)
        self.tally: Dict[str, Set[str]] = {}
        # FIFO batches of (instances to tally, replies to send) awaiting
        # an acceptor-state force; batch k acts when the k-th
        # PC_ACCEPT_FORCE lands (prefix-flush log).
        self._force_batches: List[Tuple[List[str], List[Tuple[str, ProtocolMessage]]]] = []  # lint: bounded(drained at PC_ACCEPT_FORCE)
        self.outcome: Optional[Outcome] = None
        self.update_subs: List[str] = []
        self.notify_targets: List[str] = []
        self.acked: Set[str] = set()  # lint: bounded(subset of notify targets)
        self.vote_retries = 0
        self.notify_retries = 0

    # ------------------------------------------------------------ start

    def start(self) -> List[Effect]:
        if self.state is not PcLeaderState.INIT:
            raise PcProtocolViolation("leader started twice")
        self.state = PcLeaderState.COLLECTING
        effects: List[Effect] = [LocalPrepare(self.tid)]
        effects += [SendDatagram(sub, PcPrepare(
            self.tid, self.site, sites=tuple(self.sites),
            acceptors=tuple(self.acceptors)))
            for sub in self.subordinates]
        effects.append(StartTimer(PC_VOTE_TIMER, self.vote_timeout_ms))
        return effects

    def _prepare_message(self) -> PcPrepare:
        return PcPrepare(self.tid, self.site, sites=tuple(self.sites),
                         acceptors=tuple(self.acceptors))

    # --------------------------------------------------------- own vote

    def on_local_prepared(self, vote: Vote) -> List[Effect]:
        if self.state is not PcLeaderState.COLLECTING:
            return []
        self.local_vote = vote
        if vote is Vote.NO:
            return self._abort()
        if not self.remote_acceptors:
            # F=0: we are the only acceptor; our own instance is chosen
            # the moment we record it (durability comes from the forced
            # decision record, exactly like the 2PC commitment point).
            self._note_acceptance(self.site, self.site, vote.value)
            return self._maybe_decide()
        if vote is Vote.YES:
            # The forced prepare record doubles as the durable ballot-0
            # self-acceptance (co-location); votes go out only after.
            self.state = PcLeaderState.FORCING_PREPARE
            return [ForceLog(paxos_prepare_record(
                str(self.tid), self.site, self.site, self.sites,
                self.acceptors), PC_PREPARE_FORCE)]
        # READ_ONLY forces no prepare record, so the acceptor record is
        # what makes our ballot-0 self-acceptance durable.  Until it
        # lands we may neither tally ourselves nor broadcast the vote —
        # remote acceptors count an acceptor-site vote as a durable
        # phase-2b, and a crash-restart must never retract it.
        self.acceptor.ballot0_accept(self.site, vote.value)
        return [self._force_acceptor_state(
            self.acceptor.record(self.tid), [self.site],
            [(a, self._vote_message(vote)) for a in self.remote_acceptors])]

    def _vote_message(self, vote: Vote) -> PcVote:
        return PcVote(self.tid, self.site, vote=vote, leader=self.site,
                      sites=tuple(self.sites),
                      acceptors=tuple(self.acceptors))

    # ----------------------------------------------------------- forces

    def on_log_forced(self, token: str) -> List[Effect]:
        if token == PC_PREPARE_FORCE:
            if self.state is not PcLeaderState.FORCING_PREPARE:
                return []
            self.state = PcLeaderState.COLLECTING
            self.acceptor.ballot0_accept(self.site, Vote.YES.value)
            self._note_acceptance(self.site, self.site, Vote.YES.value)
            effects: List[Effect] = [SendDatagram(a, PcVote(
                self.tid, self.site, vote=Vote.YES, leader=self.site,
                sites=tuple(self.sites), acceptors=tuple(self.acceptors)))
                for a in self.remote_acceptors]
            effects += self._maybe_decide()
            return effects
        if token == PC_ACCEPT_FORCE:
            # The oldest queued batch of acceptor state is durable:
            # tally the acceptances that waited on it and flush its
            # replies — later batches keep waiting for their own force.
            if not self._force_batches:
                return []
            own, replies = self._force_batches.pop(0)
            for instance in own:
                ballot, value = self.acceptor.accepted.get(instance,
                                                           (-1, ""))
                if ballot == 0:
                    self._note_acceptance(self.site, instance, value)
            flushed: List[Effect] = [SendDatagram(dst, reply)
                                     for dst, reply in replies]
            flushed += self._maybe_decide()
            return flushed
        if token == PC_DECIDE_FORCE:
            if self.state is not PcLeaderState.FORCING_DECISION:
                return []
            return self._notify_commit()
        return []

    def on_log_durable(self, token: str) -> List[Effect]:
        return []

    # --------------------------------------------------------- messages

    def on_message(self, msg: ProtocolMessage) -> List[Effect]:
        if isinstance(msg, PcVote):
            return self._on_vote(msg)
        if isinstance(msg, PcPhase2b):
            return self._on_phase2b(msg)
        if isinstance(msg, PcP1a):
            return self._on_p1a(msg)
        if isinstance(msg, PcP2a):
            return self._on_p2a(msg)
        if isinstance(msg, PcOutcome):
            return self._on_peer_outcome(msg)
        if isinstance(msg, PcOutcomeAck):
            return self._on_outcome_ack(msg)
        return []

    def _on_vote(self, msg: PcVote) -> List[Effect]:
        if self.state not in (PcLeaderState.COLLECTING,
                              PcLeaderState.FORCING_PREPARE):
            return self._maybe_reply_outcome(msg.sender)
        if msg.vote is Vote.NO:
            # Explicit NO: that instance can never choose a non-abort
            # value at ballot 0, so a unilateral abort is safe.
            self.votes[msg.sender] = Vote.NO.value
            return self._abort()
        if not self.remote_acceptors:
            self.acceptor.ballot0_accept(msg.sender, msg.vote.value)
            self._note_acceptance(self.site, msg.sender, msg.vote.value)
            return self._maybe_decide()
        effects: List[Effect] = []
        # Co-location: a vote from an acceptor site is also that
        # acceptor's phase-2b for its own instance — durable there
        # before the vote was sent (YES rides the forced prepare
        # record, READ_ONLY rides a forced acceptor record).
        if msg.sender in self.acceptors:
            self._note_acceptance(msg.sender, msg.sender, msg.vote.value)
        if self.acceptor.ballot0_accept(msg.sender, msg.vote.value):
            effects.append(self._force_acceptor_state(
                self.acceptor.record(self.tid), [msg.sender], []))
        effects += self._maybe_decide()
        return effects

    def _on_phase2b(self, msg: PcPhase2b) -> List[Effect]:
        if msg.ballot != 0:
            return []
        if self.state not in (PcLeaderState.COLLECTING,
                              PcLeaderState.FORCING_PREPARE):
            return self._maybe_reply_outcome(msg.sender)
        for instance, value in msg.votes:
            if value == Vote.NO.value:
                self.votes[instance] = value
                return self._abort()
            self._note_acceptance(msg.sender, instance, value)
        return self._maybe_decide()

    def _on_p1a(self, msg: PcP1a) -> List[Effect]:
        if self.outcome is not None:
            return self._maybe_reply_outcome(msg.sender)
        return _acceptor_p1a(self, msg)

    def _on_p2a(self, msg: PcP2a) -> List[Effect]:
        if self.outcome is not None:
            return self._maybe_reply_outcome(msg.sender)
        return _acceptor_p2a(self, msg)

    def _on_peer_outcome(self, msg: PcOutcome) -> List[Effect]:
        """A candidate won an election and decided for us: adopt."""
        if self.outcome is not None:
            return [LazySendDatagram(msg.sender,
                                     PcOutcomeAck(self.tid, self.site))]
        self.outcome = msg.outcome
        self.state = PcLeaderState.DONE
        effects: List[Effect] = [CancelTimer(PC_VOTE_TIMER),
                                 CancelTimer(PC_NOTIFY_TIMER)]
        if msg.outcome is Outcome.COMMITTED:
            effects += [LocalCommit(self.tid),
                        WriteLog(commit_record(str(self.tid), self.site))]
        else:
            effects += [LocalAbort(self.tid),
                        WriteLog(abort_record(str(self.tid), self.site))]
        effects += [Complete(self.tid, msg.outcome),
                    SendDatagram(msg.sender, PcOutcomeAck(self.tid,
                                                          self.site)),
                    Forget(self.tid)]
        return effects

    def _on_outcome_ack(self, msg: PcOutcomeAck) -> List[Effect]:
        if self.state is not PcLeaderState.NOTIFYING:
            return []
        self.acked.add(msg.sender)
        if set(self.notify_targets) - self.acked:
            return []
        self.state = PcLeaderState.DONE
        return [CancelTimer(PC_NOTIFY_TIMER),
                WriteLog(end_record(str(self.tid), self.site)),
                Forget(self.tid)]

    # ----------------------------------------------------------- timers

    def on_timer(self, token: str) -> List[Effect]:
        if token == PC_VOTE_TIMER:
            return self._vote_timeout()
        if token == PC_NOTIFY_TIMER:
            return self._notify_timeout()
        return []

    def _vote_timeout(self) -> List[Effect]:
        if self.state not in (PcLeaderState.COLLECTING,
                              PcLeaderState.FORCING_PREPARE):
            return []
        self.vote_retries += 1
        if self.vote_retries > self.max_vote_retries:
            if not self.remote_acceptors:
                # F=0: no acceptance can exist outside this machine, so
                # the timeout abort is as safe as 2PC's.
                return self._abort()
            # F>=1: another candidate may hold durable acceptances; only
            # an election (which fills free instances with the abort
            # value at a higher ballot) may decide.  The candidate owns
            # the retry loop from here — its election timer backs off
            # and re-polls — so the vote timer is NOT re-armed: the
            # leader stands by, still answering phase 1/2 as an
            # acceptor and adopting the candidate's outcome.
            return [Trace("pc.election_needed",
                          {"tid": str(self.tid), "site": self.site}),
                    StartTakeover(self.tid)]
        missing = [s for s in self.subordinates if not self._voted(s)]
        effects: List[Effect] = [SendDatagram(s, self._prepare_message())
                                 for s in missing]
        effects.append(StartTimer(PC_VOTE_TIMER, self.vote_timeout_ms))
        return effects

    def _voted(self, sub: str) -> bool:
        return sub in self.tally or sub in self.votes

    def _notify_timeout(self) -> List[Effect]:
        if self.state is not PcLeaderState.NOTIFYING:
            return []
        self.notify_retries += 1
        if self.notify_retries > self.max_notify_retries:
            # Stand down; the decision record and tombstone keep
            # answering late inquiries.
            self.state = PcLeaderState.DONE
            return [WriteLog(end_record(str(self.tid), self.site)),
                    Forget(self.tid)]
        outcome = self.outcome
        if outcome is None:
            return []
        unacked = [s for s in self.notify_targets if s not in self.acked]
        effects: List[Effect] = [
            SendDatagram(s, PcOutcome(self.tid, self.site, outcome=outcome))
            for s in unacked]
        effects.append(StartTimer(PC_NOTIFY_TIMER, self.notify_timeout_ms))
        return effects

    # --------------------------------------------------------- decision

    def _note_acceptance(self, acceptor: str, instance: str,
                         value: str) -> None:
        if value == Vote.NO.value:
            return
        if instance != self.site:
            prev = self.votes.setdefault(instance, value)
            if prev != value:
                raise PcProtocolViolation(
                    f"instance {instance} proposed two ballot-0 values")
        self.tally.setdefault(instance, set()).add(acceptor)

    def _instance_chosen(self, instance: str) -> bool:
        # Deliberately spelled without the quorum helper: the leader's
        # ballot-0 tally is not the non-blocking replication quorum.
        return len(self.tally.get(instance, ())) >= self.quorum.commit_quorum

    def _maybe_decide(self) -> List[Effect]:
        if self.state not in (PcLeaderState.COLLECTING,
                              PcLeaderState.FORCING_PREPARE):
            return []
        if self.local_vote is None or len(self.votes) < len(self.subordinates):
            return []
        for instance in self.sites:
            if not self._instance_chosen(instance):
                return []
        self.update_subs = [s for s in self.subordinates
                            if self.votes.get(s) == Vote.YES.value]
        ro_acceptors = [a for a in self.remote_acceptors
                        if self.votes.get(a) == Vote.READ_ONLY.value]
        self.notify_targets = sorted(set(self.update_subs)
                                     | set(ro_acceptors))
        if not self.update_subs and self.local_vote is Vote.READ_ONLY:
            # Fully read-only: no second round, nothing durable.
            self.outcome = Outcome.COMMITTED
            self.state = PcLeaderState.DONE
            return [CancelTimer(PC_VOTE_TIMER), LocalCommit(self.tid),
                    Complete(self.tid, Outcome.COMMITTED), Forget(self.tid)]
        self.state = PcLeaderState.FORCING_DECISION
        return [CancelTimer(PC_VOTE_TIMER),
                ForceLog(paxos_decision_record(
                    str(self.tid), self.site, self.update_subs,
                    self.acceptors), PC_DECIDE_FORCE)]

    def _notify_commit(self) -> List[Effect]:
        self.outcome = Outcome.COMMITTED
        self.state = PcLeaderState.NOTIFYING
        effects: List[Effect] = [
            SendDatagram(sub, PcOutcome(self.tid, self.site,
                                        outcome=Outcome.COMMITTED))
            for sub in self.notify_targets]
        effects += [LocalCommit(self.tid),
                    Complete(self.tid, Outcome.COMMITTED),
                    StartTimer(PC_NOTIFY_TIMER, self.notify_timeout_ms)]
        if not self.notify_targets:
            self.state = PcLeaderState.DONE
            effects += [CancelTimer(PC_NOTIFY_TIMER),
                        WriteLog(end_record(str(self.tid), self.site)),
                        Forget(self.tid)]
        return effects

    def _abort(self) -> List[Effect]:
        self.outcome = Outcome.ABORTED
        self.state = PcLeaderState.DONE
        notified = [s for s in self.subordinates
                    if self.votes.get(s) not in (Vote.NO.value,
                                                 Vote.READ_ONLY.value)]
        effects: List[Effect] = [CancelTimer(PC_VOTE_TIMER)]
        effects += [SendDatagram(s, PcOutcome(self.tid, self.site,
                                              outcome=Outcome.ABORTED))
                    for s in notified]
        effects += [LocalAbort(self.tid),
                    WriteLog(abort_record(str(self.tid), self.site)),
                    Complete(self.tid, Outcome.ABORTED),
                    Forget(self.tid)]
        return effects

    def _maybe_reply_outcome(self, dst: str) -> List[Effect]:
        if self.outcome is None or dst == self.site:
            return []
        return [SendDatagram(dst, PcOutcome(self.tid, self.site,
                                            outcome=self.outcome))]

    # ---------------------------------------------------------- recovery

    @classmethod
    def recovered(cls, tid: TID, site: str, update_subs: Sequence[str],
                  acceptors: Sequence[str],
                  notify_timeout_ms: float = 1500.0) -> "PcLeader":
        """Rebuilt from a forced decision record: the commit decision
        stands, only the notifications remain."""
        quorum = QuorumSpec.paxos(len(acceptors))
        leader = cls(tid, site, list(update_subs), list(acceptors), quorum,
                     notify_timeout_ms=notify_timeout_ms)
        leader.local_vote = Vote.YES
        leader.update_subs = list(update_subs)
        leader.notify_targets = sorted(update_subs)
        leader.outcome = Outcome.COMMITTED
        leader.state = PcLeaderState.NOTIFYING
        return leader

    def resume_notifications(self) -> List[Effect]:
        outcome = self.outcome
        if outcome is None:
            return []
        effects: List[Effect] = [
            SendDatagram(s, PcOutcome(self.tid, self.site, outcome=outcome))
            for s in self.notify_targets]
        effects += [LocalCommit(self.tid),
                    StartTimer(PC_NOTIFY_TIMER, self.notify_timeout_ms)]
        if not self.notify_targets:
            self.state = PcLeaderState.DONE
            effects += [WriteLog(end_record(str(self.tid), self.site)),
                        Forget(self.tid)]
        return effects


class PcSubState(Enum):
    INIT = "init"
    PREPARING = "preparing"
    FORCING_PREPARE = "forcing_prepare"
    PREPARED = "prepared"
    ACCEPTING = "accepting"     # acceptor duties only (read-only RM)
    COMMITTING = "committing"   # commit applied, ack pending durability
    DONE = "done"


class PcParticipant(_AcceptorBatching):
    """A resource manager under Paxos Commit, with the co-located
    acceptor when this site belongs to the acceptor set.

    The RM side mirrors the optimized 2PC subordinate: force prepare,
    send the vote (= ballot-0 2a) to every acceptor, commit on the
    outcome with a lazy commit record and a piggybacked ack.  The
    acceptor side answers other RMs' votes and candidates' phase 1/2,
    always forcing its state before a reply — an acceptor may never
    retract what a quorum might have counted.
    """

    def __init__(self, tid: TID, site: str, leader: str,
                 sites: Sequence[str], acceptors: Sequence[str],
                 quorum: QuorumSpec,
                 protocol_timeout_ms: float = 1500.0) -> None:
        self.tid = tid
        self.site = site
        self.leader = leader
        self.sites = list(sites)
        self.acceptors = list(acceptors)
        self.quorum = quorum
        self.protocol_timeout_ms = protocol_timeout_ms
        self.state = PcSubState.INIT
        self.vote: Optional[Vote] = None
        self.outcome: Optional[Outcome] = None
        self.is_acceptor = site in self.acceptors
        self.acceptor = PaxosAcceptor(
            site, leader=self.leader, sites=self.sites,
            acceptors=self.acceptors) if self.is_acceptor else None
        # FIFO batches of (instances, replies) awaiting an acceptor-state
        # force (instances unused here: participants tally nothing).
        self._force_batches: List[Tuple[List[str], List[Tuple[str, ProtocolMessage]]]] = []  # lint: bounded(drained at PC_ACCEPT_FORCE)
        self._notifier: Optional[str] = None
        self._acked = False

    # ------------------------------------------------------------ start

    def start(self) -> List[Effect]:
        if self.state is not PcSubState.INIT:
            raise PcProtocolViolation("participant started twice")
        self.state = PcSubState.PREPARING
        return [LocalPrepare(self.tid)]

    def on_local_prepared(self, vote: Vote) -> List[Effect]:
        if self.state is not PcSubState.PREPARING:
            return []
        self.vote = vote
        if vote is Vote.NO:
            # Presumed abort: nothing durable, vote out, drop out.  No
            # acceptor can ever see a non-abort value for our instance.
            self.state = PcSubState.DONE
            effects: List[Effect] = self._vote_datagrams(vote)
            effects += [LocalAbort(self.tid),
                        WriteLog(abort_record(str(self.tid), self.site)),
                        Forget(self.tid)]
            return effects
        if vote is Vote.READ_ONLY:
            # Drop read locks now; stay only if we owe acceptor duties.
            if self.acceptor is not None:
                # An acceptor site's vote doubles as its durable
                # ballot-0 phase-2b at the leader (co-location), and
                # READ_ONLY forces no prepare record — so the
                # self-acceptance must land in a forced acceptor record
                # before the vote may go out.
                self.acceptor.ballot0_accept(self.site, vote.value)
                self.state = PcSubState.ACCEPTING
                return [LocalCommit(self.tid),
                        self._force_acceptor_state(
                            self.acceptor.record(self.tid), (),
                            [(dst, self._vote_message(vote))
                             for dst in self._vote_targets()]),
                        StartTimer(PC_OUTCOME_TIMER,
                                   self.protocol_timeout_ms)]
            # Not an acceptor: the vote is the ballot-0 2a and the
            # acceptors make it durable before the leader counts it.
            self.state = PcSubState.DONE
            effects = self._vote_datagrams(vote)
            effects += [LocalCommit(self.tid), Forget(self.tid)]
            return effects
        self.state = PcSubState.FORCING_PREPARE
        return [ForceLog(paxos_prepare_record(
            str(self.tid), self.site, self.leader, self.sites,
            self.acceptors), PC_PREPARE_FORCE)]

    def _vote_datagrams(self, vote: Vote) -> List[Effect]:
        return [SendDatagram(dst, self._vote_message(vote))
                for dst in self._vote_targets()]

    def _vote_message(self, vote: Vote) -> PcVote:
        return PcVote(self.tid, self.site, vote=vote, leader=self.leader,
                      sites=tuple(self.sites),
                      acceptors=tuple(self.acceptors))

    # ----------------------------------------------------------- forces

    def on_log_forced(self, token: str) -> List[Effect]:
        if token == PC_PREPARE_FORCE:
            if self.state is not PcSubState.FORCING_PREPARE:
                return []
            self.state = PcSubState.PREPARED
            if self.acceptor is not None:
                # The prepare record doubles as the durable ballot-0
                # self-acceptance (co-location).
                self.acceptor.ballot0_accept(self.site, Vote.YES.value)
            effects: List[Effect] = [SendDatagram(dst, PcVote(
                self.tid, self.site, vote=Vote.YES, leader=self.leader,
                sites=tuple(self.sites), acceptors=tuple(self.acceptors)))
                for dst in self._vote_targets()]
            effects.append(StartTimer(PC_OUTCOME_TIMER,
                                      self.protocol_timeout_ms))
            return effects
        if token == PC_ACCEPT_FORCE:
            # Oldest batch only: later batches wait for their own force.
            if not self._force_batches:
                return []
            _, replies = self._force_batches.pop(0)
            return [SendDatagram(dst, reply) for dst, reply in replies]
        return []

    def _vote_targets(self) -> List[str]:
        targets = [a for a in self.acceptors if a != self.site]
        if self.leader not in targets and self.leader != self.site:
            targets.append(self.leader)
        return targets

    def on_log_durable(self, token: str) -> List[Effect]:
        if token == PC_COMMIT_DURABLE and not self._acked:
            self._acked = True
            dst = self._notifier or self.leader
            return [LazySendDatagram(dst, PcOutcomeAck(self.tid, self.site)),
                    Forget(self.tid)]
        return []

    # --------------------------------------------------------- messages

    def on_message(self, msg: ProtocolMessage) -> List[Effect]:
        if isinstance(msg, PcOutcome):
            return self._on_outcome(msg)
        if isinstance(msg, PcPrepare):
            return self._on_duplicate_prepare(msg)
        if isinstance(msg, PcVote):
            return self._on_acceptor_vote(msg)
        if isinstance(msg, PcP1a):
            return self._on_p1a(msg)
        if isinstance(msg, PcP2a):
            return self._on_p2a(msg)
        return []

    def _on_p1a(self, msg: PcP1a) -> List[Effect]:
        outcome = self.outcome
        if outcome is not None:
            # Short-circuit a stale election: the outcome is known.
            return [SendDatagram(msg.sender, PcOutcome(
                self.tid, self.site, outcome=outcome))]
        return _acceptor_p1a(self, msg)

    def _on_p2a(self, msg: PcP2a) -> List[Effect]:
        outcome = self.outcome
        if outcome is not None:
            return [SendDatagram(msg.sender, PcOutcome(
                self.tid, self.site, outcome=outcome))]
        return _acceptor_p2a(self, msg)

    def _on_duplicate_prepare(self, msg: PcPrepare) -> List[Effect]:
        """A retransmitted prepare: re-vote from current state."""
        if self.outcome is not None:
            return []
        if self.state is PcSubState.PREPARED and self.vote is not None:
            return [SendDatagram(dst, PcVote(
                self.tid, self.site, vote=self.vote, leader=self.leader,
                sites=tuple(self.sites), acceptors=tuple(self.acceptors)))
                for dst in self._vote_targets()]
        if self.state is PcSubState.ACCEPTING and self.vote is not None:
            # A read-only acceptor's re-vote must not outrun the force
            # that is making its ballot-0 self-acceptance durable.
            effects: List[Effect] = []
            for dst in self._vote_targets():
                effects += self._send_when_durable(
                    dst, self._vote_message(self.vote))
            return effects
        return []

    def _on_acceptor_vote(self, msg: PcVote) -> List[Effect]:
        """Another RM's ballot-0 2a reaches our co-located acceptor."""
        if self.acceptor is None or msg.sender == self.site:
            return []
        if self.outcome is not None:
            return []
        reply = PcPhase2b(self.tid, self.site, ballot=0,
                          votes=((msg.sender, msg.vote.value),))
        if self.acceptor.ballot0_accept(msg.sender, msg.vote.value):
            return [self._force_acceptor_state(
                self.acceptor.record(self.tid), (),
                [(msg.leader or self.leader, reply)])]
        if self.acceptor.accepted.get(msg.sender, (None, None))[1] \
                == msg.vote.value:
            # Duplicate: resend the 2b — but only once the acceptance
            # is durable, which the original copy's force may still be
            # working on.
            return self._send_when_durable(msg.leader or self.leader, reply)
        return []

    def _on_outcome(self, msg: PcOutcome) -> List[Effect]:
        if self.state is PcSubState.COMMITTING:
            # The ack promises a durable commit record; until the lazy
            # write is covered we stay silent and let the notifier retry.
            return []
        if self.outcome is not None:
            return self._reack(msg.sender)
        self.outcome = msg.outcome
        self._notifier = msg.sender
        effects: List[Effect] = [CancelTimer(PC_OUTCOME_TIMER)]
        if msg.outcome is Outcome.COMMITTED:
            if self.state is PcSubState.ACCEPTING:
                # Read locks were dropped at vote time; just ack out.
                self.state = PcSubState.DONE
                effects += [SendDatagram(msg.sender,
                                         PcOutcomeAck(self.tid, self.site)),
                            Forget(self.tid)]
                return effects
            self.state = PcSubState.COMMITTING
            effects += [LocalCommit(self.tid),
                        WriteLog(commit_record(str(self.tid), self.site),
                                 token=PC_COMMIT_DURABLE)]
            return effects
        self.state = PcSubState.DONE
        if self.vote is not Vote.READ_ONLY:
            effects.append(LocalAbort(self.tid))
        effects += [WriteLog(abort_record(str(self.tid), self.site)),
                    SendDatagram(msg.sender, PcOutcomeAck(self.tid,
                                                          self.site)),
                    Forget(self.tid)]
        return effects

    def _reack(self, dst: str) -> List[Effect]:
        if dst == self.site:
            return []
        return [SendDatagram(dst, PcOutcomeAck(self.tid, self.site))]

    # ----------------------------------------------------------- timers

    def on_timer(self, token: str) -> List[Effect]:
        if token != PC_OUTCOME_TIMER:
            return []
        if self.state not in (PcSubState.PREPARED, PcSubState.ACCEPTING):
            return []
        return [Trace("pc.takeover", {"tid": str(self.tid),
                                      "site": self.site}),
                StartTakeover(self.tid),
                StartTimer(PC_OUTCOME_TIMER, self.protocol_timeout_ms)]

    # ---------------------------------------------------------- recovery

    @classmethod
    def recovered(cls, tid: TID, site: str, leader: str,
                  sites: Sequence[str], acceptors: Sequence[str],
                  promised: int = 0,
                  accepted: Sequence[Sequence[Any]] = (),
                  prepared: bool = True,
                  protocol_timeout_ms: float = 1500.0) -> "PcParticipant":
        """Rebuilt from durable facts: the prepare record (RM side) and
        the latest acceptor record, if any."""
        quorum = QuorumSpec.paxos(len(acceptors))
        sub = cls(tid, site, leader, sites, acceptors, quorum,
                  protocol_timeout_ms=protocol_timeout_ms)
        if prepared:
            sub.vote = Vote.YES
            sub.state = PcSubState.PREPARED
            if sub.acceptor is not None:
                sub.acceptor.ballot0_accept(site, Vote.YES.value)
        else:
            sub.state = PcSubState.ACCEPTING
        if sub.acceptor is not None:
            sub.acceptor.promised = max(sub.acceptor.promised, promised)
            for instance, ballot, value in accepted:
                sub.acceptor.accepted[str(instance)] = (int(ballot),
                                                        str(value))
        if not prepared and sub.acceptor is not None:
            # A durable ballot-0 self-acceptance with no prepare record
            # is a READ_ONLY vote that was forced before it went out:
            # restore it so retried prepares can be re-answered.
            ballot0, value = sub.acceptor.accepted.get(site, (-1, ""))
            if ballot0 == 0 and value == Vote.READ_ONLY.value:
                sub.vote = Vote.READ_ONLY
        return sub

    def resume_inquiry(self) -> List[Effect]:
        """Re-announce the vote and re-arm the takeover timer."""
        effects: List[Effect] = []
        if self.state is PcSubState.PREPARED and self.vote is not None:
            effects += [SendDatagram(dst, PcVote(
                self.tid, self.site, vote=self.vote, leader=self.leader,
                sites=tuple(self.sites), acceptors=tuple(self.acceptors)))
                for dst in self._vote_targets()]
        effects.append(StartTimer(PC_OUTCOME_TIMER,
                                  self.protocol_timeout_ms))
        return effects


class PcCandidateState(Enum):
    INIT = "init"
    POLLING = "polling"       # phase 1: collecting promises
    PROPOSING = "proposing"   # phase 2: value vector out
    BACKOFF = "backoff"       # outbid; waiting out the backoff timer
    FORCING_DECISION = "forcing_decision"
    NOTIFYING = "notifying"
    DONE = "done"


class PcCandidate:
    """A timed-out participant running the leader election.

    Phase 1 at a ballot unique to this site, value selection by the
    standard Paxos rule (highest-ballot acceptance per instance, abort
    filler for free instances), phase 2 to make the vector *chosen*,
    then notify.  Nacks and timeouts restart phase 1 at a higher ballot
    after a deterministic exponential backoff — sites with a larger
    index back off into larger ballots, so duelling candidates resolve.
    """

    def __init__(self, tid: TID, site: str, sites: Sequence[str],
                 acceptors: Sequence[str], quorum: QuorumSpec,
                 poll_timeout_ms: float = 800.0,
                 notify_timeout_ms: float = 1500.0,
                 max_notify_retries: int = 10) -> None:
        self.tid = tid
        self.site = site
        self.sites = list(sites)
        self.acceptors = list(acceptors)
        self.quorum = quorum
        self.poll_timeout_ms = poll_timeout_ms
        self.notify_timeout_ms = notify_timeout_ms
        self.max_notify_retries = max_notify_retries
        self.state = PcCandidateState.INIT
        self.attempt = 0
        self.round = 0
        # acceptor -> accepted triples it reported this ballot.
        # lint: bounded(per-txn takeover, discarded whole)
        self.promises: Dict[str, Tuple[Tuple[str, int, str], ...]] = {}
        self.accepted_2b: Set[str] = set()
        self.values: List[Tuple[str, str]] = []
        self.outcome: Optional[Outcome] = None
        self.decided_by_peer = False
        self.notify_targets: List[str] = []
        self.acked: Set[str] = set()  # lint: bounded(subset of notify targets)
        self.notify_retries = 0

    @property
    def ballot(self) -> int:
        return ballot_for(self.attempt, self.sites, self.site)

    # ------------------------------------------------------------ start

    def start(self) -> List[Effect]:
        if self.state is not PcCandidateState.INIT:
            raise PcProtocolViolation("candidate started twice")
        if self.outcome is not None:
            # Resuming an already-forced decision: straight to notify.
            return self._notify()
        return self._poll()

    def _poll(self) -> List[Effect]:
        self.state = PcCandidateState.POLLING
        self.promises = {}
        self.accepted_2b = set()
        effects: List[Effect] = [Trace("pc.election", {
            "tid": str(self.tid), "site": self.site,
            "ballot": self.ballot})]
        effects += [SendDatagram(a, PcP1a(
            self.tid, self.site, ballot=self.ballot, leader=self.site,
            sites=tuple(self.sites), acceptors=tuple(self.acceptors)))
            for a in self.acceptors]
        effects.append(StartTimer(PC_ELECTION_TIMER, self._backoff()))
        return effects

    def _backoff(self) -> float:
        return self.poll_timeout_ms * (2 ** min(self.round, 5))

    # --------------------------------------------------------- messages

    def on_message(self, msg: ProtocolMessage) -> List[Effect]:
        if isinstance(msg, PcP1b):
            return self._on_p1b(msg)
        if isinstance(msg, PcPhase2b):
            return self._on_phase2b(msg)
        if isinstance(msg, PcOutcome):
            return self._on_peer_outcome(msg)
        if isinstance(msg, PcOutcomeAck):
            return self._on_outcome_ack(msg)
        return []

    def _on_p1b(self, msg: PcP1b) -> List[Effect]:
        if msg.ballot != self.ballot:
            return []
        if msg.promised > self.ballot:
            # A rival outbid us; nacks matter in phase 2 as well.
            if self.state in (PcCandidateState.POLLING,
                              PcCandidateState.PROPOSING):
                return self._nacked(msg.promised)
            return []
        if self.state is not PcCandidateState.POLLING:
            return []
        self.promises[msg.sender] = tuple(
            (str(i), int(b), str(v)) for i, b, v in msg.accepted)
        if not self.quorum.can_commit(len(self.promises)):
            return []
        return self._propose()

    def _propose(self) -> List[Effect]:
        """A promise quorum is in: fix the value vector and run phase 2."""
        chosen: Dict[str, Tuple[int, str]] = {}
        for _, triples in sorted(self.promises.items()):
            for instance, ballot, value in triples:
                best = chosen.get(instance)
                if best is None or ballot > best[0]:
                    chosen[instance] = (ballot, value)
        self.values = [(s, chosen[s][1] if s in chosen else ABORT_FILLER)
                       for s in self.sites]
        self.state = PcCandidateState.PROPOSING
        effects: List[Effect] = [SendDatagram(a, PcP2a(
            self.tid, self.site, ballot=self.ballot,
            values=tuple(self.values), leader=self.site,
            sites=tuple(self.sites), acceptors=tuple(self.acceptors)))
            for a in self.acceptors]
        effects.append(StartTimer(PC_ELECTION_TIMER, self._backoff()))
        return effects

    def _on_phase2b(self, msg: PcPhase2b) -> List[Effect]:
        if self.state is not PcCandidateState.PROPOSING \
                or msg.ballot != self.ballot:
            return []
        self.accepted_2b.add(msg.sender)
        if not self.quorum.can_commit(len(self.accepted_2b)):
            return []
        # The vector is chosen: every instance's value is now decided.
        if any(v in (Vote.NO.value, ABORT_FILLER) for _, v in self.values):
            return self._decide(Outcome.ABORTED)
        return self._decide(Outcome.COMMITTED)

    def _decide(self, outcome: Outcome) -> List[Effect]:
        self.outcome = outcome
        self.update_targets()
        effects: List[Effect] = [CancelTimer(PC_ELECTION_TIMER),
                                 Trace("pc.election_decided", {
                                     "tid": str(self.tid),
                                     "outcome": outcome.value,
                                     "ballot": self.ballot})]
        if outcome is Outcome.COMMITTED:
            update_subs = [s for s, v in self.values
                           if v == Vote.YES.value and s != self.site]
            self.state = PcCandidateState.FORCING_DECISION
            effects.append(ForceLog(paxos_decision_record(
                str(self.tid), self.site, update_subs, self.acceptors),
                PC_DECIDE_FORCE))
            return effects
        effects.append(WriteLog(abort_record(str(self.tid), self.site)))
        effects += self._notify()
        return effects

    def update_targets(self) -> None:
        # Includes our own site: the co-resident participant machine
        # applies the outcome and acks back through the loopback path.
        self.notify_targets = list(self.sites)

    def on_log_forced(self, token: str) -> List[Effect]:
        if token == PC_DECIDE_FORCE \
                and self.state is PcCandidateState.FORCING_DECISION:
            return self._notify()
        return []

    def on_log_durable(self, token: str) -> List[Effect]:
        return []

    def _notify(self) -> List[Effect]:
        outcome = self.outcome
        if outcome is None:
            return []
        self.state = PcCandidateState.NOTIFYING
        if not self.notify_targets:
            self.update_targets()
        effects: List[Effect] = [
            SendDatagram(s, PcOutcome(self.tid, self.site, outcome=outcome))
            for s in self.notify_targets if s not in self.acked]
        effects.append(StartTimer(PC_NOTIFY_TIMER, self.notify_timeout_ms))
        return effects

    def _on_peer_outcome(self, msg: PcOutcome) -> List[Effect]:
        """Someone else (original leader or rival candidate) decided."""
        if self.outcome is not None:
            if self.outcome is not msg.outcome and not self.decided_by_peer:
                raise PcProtocolViolation(
                    f"{self.tid}: rival decided {msg.outcome}, "
                    f"we decided {self.outcome}")
            return []
        self.outcome = msg.outcome
        self.decided_by_peer = True
        self.state = PcCandidateState.DONE
        # The co-resident participant machine acks and applies; the
        # candidate just stands down.
        return [CancelTimer(PC_ELECTION_TIMER), CancelTimer(PC_NOTIFY_TIMER),
                Forget(self.tid)]

    def _on_outcome_ack(self, msg: PcOutcomeAck) -> List[Effect]:
        if self.state is not PcCandidateState.NOTIFYING:
            return []
        self.acked.add(msg.sender)
        if set(self.notify_targets) - self.acked:
            return []
        self.state = PcCandidateState.DONE
        return [CancelTimer(PC_NOTIFY_TIMER), Forget(self.tid)]

    # ----------------------------------------------------------- timers

    def on_timer(self, token: str) -> List[Effect]:
        if token == PC_ELECTION_TIMER:
            if self.state is PcCandidateState.BACKOFF:
                # _nacked already bumped attempt/round; just re-poll.
                return self._poll()
            if self.state not in (PcCandidateState.POLLING,
                                  PcCandidateState.PROPOSING):
                return []
            # Round incomplete: back off and restart phase 1 higher.
            self.round += 1
            self.attempt += 1
            return self._poll()
        if token == PC_NOTIFY_TIMER:
            if self.state is not PcCandidateState.NOTIFYING:
                return []
            self.notify_retries += 1
            if self.notify_retries > self.max_notify_retries:
                self.state = PcCandidateState.DONE
                return [Forget(self.tid)]
            return self._notify()
        return []

    def _nacked(self, promised: int) -> List[Effect]:
        """Outbid: jump past the rival's ballot, back off, retry."""
        while self.ballot <= promised:
            self.attempt += 1
        self.round += 1
        self.state = PcCandidateState.BACKOFF
        return [CancelTimer(PC_ELECTION_TIMER),
                Trace("pc.election_nacked", {"tid": str(self.tid),
                                             "site": self.site,
                                             "promised": promised}),
                StartTimer(PC_ELECTION_TIMER, self._backoff())]

    # ---------------------------------------------------------- recovery

    @classmethod
    def resume_decision(cls, tid: TID, site: str, update_subs: Sequence[str],
                        acceptors: Sequence[str], sites: Sequence[str],
                        notify_timeout_ms: float = 1500.0) -> "PcCandidate":
        """Rebuilt from an unacked decision record after a crash."""
        quorum = QuorumSpec.paxos(len(acceptors))
        cand = cls(tid, site, sites, acceptors, quorum,
                   notify_timeout_ms=notify_timeout_ms)
        cand.outcome = Outcome.COMMITTED
        cand.values = [(s, Vote.YES.value) for s in update_subs]
        cand.notify_targets = [s for s in update_subs if s != site]
        return cand


# ------------------------------------------------- shared acceptor edges
#
# The phase-1a/2a handling is identical for leaders and participants:
# consult the embedded acceptor, force its state when it changed, reply
# only after the force (the batch queue), nack without forcing.  An
# acceptor may never retract what a quorum might have counted, and with
# the chaos duplication mode a second copy of a message can arrive while
# the first copy's force is still in flight — so even "duplicate" replies
# are released only once the state they quote is provably on the platter.


def _acceptor_p1a(machine: Any, msg: PcP1a) -> List[Effect]:
    acceptor: Optional[PaxosAcceptor] = machine.acceptor
    if acceptor is None:
        return []
    if msg.ballot < acceptor.promised:
        # Nack: safe to send from possibly-volatile state, because a
        # nack is never counted toward any quorum — at worst a candidate
        # jumps to a needlessly high ballot.
        return [SendDatagram(msg.sender, PcP1b(
            machine.tid, machine.site, ballot=msg.ballot,
            promised=acceptor.promised, accepted=acceptor.triples()))]
    raised = msg.ballot > acceptor.promised
    acceptor.promise(msg.ballot)
    reply = PcP1b(machine.tid, machine.site, ballot=msg.ballot,
                  promised=acceptor.promised, accepted=acceptor.triples())
    if raised:
        return [machine._force_acceptor_state(
            acceptor.record(machine.tid), (), [(msg.sender, reply)])]
    # Duplicate of an earlier promise — which may still be riding an
    # in-flight force, so the resend waits for durability too.
    return machine._send_when_durable(msg.sender, reply)


def _acceptor_p2a(machine: Any, msg: PcP2a) -> List[Effect]:
    acceptor: Optional[PaxosAcceptor] = machine.acceptor
    if acceptor is None:
        return []
    if msg.ballot < acceptor.promised:
        return [SendDatagram(msg.sender, PcP1b(
            machine.tid, machine.site, ballot=msg.ballot,
            promised=acceptor.promised, accepted=acceptor.triples()))]
    before = (acceptor.promised, acceptor.triples())
    acceptor.accept_vector(msg.ballot, list(msg.values))
    reply = PcPhase2b(machine.tid, machine.site, ballot=msg.ballot,
                      votes=tuple(msg.values))
    if (acceptor.promised, acceptor.triples()) != before:
        return [machine._force_acceptor_state(
            acceptor.record(machine.tid), (), [(msg.sender, reply)])]
    return machine._send_when_durable(msg.sender, reply)
