"""Presumed-abort two-phase commit with the delayed-commit optimization.

Camelot's 2PC (paper §3.2) is Mohan & Lindsay's Presumed Abort, further
optimized per [Duchamp 89]:

- **Presumed abort**: abort records are never forced and aborts are
  never acknowledged — a coordinator with no information answers
  inquiries "aborted".
- **Read-only optimization**: a site that only read votes READ_ONLY,
  drops its (read) locks at once, writes nothing, and is omitted from
  phase two.  A fully read-only transaction commits with no log writes
  at all.
- **Delayed commit (the §3.2 optimization)**: the subordinate drops its
  locks *before* writing a commit record, writes that record lazily (one
  fewer force), and the commit-ack is not sent until the record is
  durable — so the coordinator "must not forget about the transaction
  before the subordinate writes its own commit record".  Throughput is
  improved at no cost to latency.

Three variants are selectable (:class:`~repro.core.outcomes.TwoPhaseVariant`)
to reproduce Figure 2:

====================  ===================  ==========================
variant               sub commit record    commit-ack
====================  ===================  ==========================
``OPTIMIZED``         lazy (no force)      piggybacked when durable
``SEMI_OPTIMIZED``    forced               piggybacked (delayed)
``UNOPTIMIZED``       forced               immediate, own datagram
====================  ===================  ==========================

Critical path of an optimized update commit: two log forces (subordinate
prepare, coordinator commit) and two inter-site messages per subordinate
round trip plus the commit notice — the "2 LF + 3 datagrams" the paper
compares against the non-blocking protocol's 4 + 5.

Both machines are sans-IO: inputs are protocol messages and completion
notifications; outputs are :mod:`repro.core.effects`.
"""

from __future__ import annotations

from enum import Enum
from typing import Any, Dict, List, Optional, Sequence, Set

from repro.core.effects import (
    CancelTimer,
    Complete,
    Effect,
    ForceLog,
    Forget,
    LazySendDatagram,
    LocalAbort,
    LocalCommit,
    LocalPrepare,
    MulticastDatagram,
    SendDatagram,
    StartTimer,
    Trace,
    WriteLog,
)
from repro.core.messages import (
    AbortNotice,
    CommitAck,
    CommitNotice,
    InquiryResponse,
    PrepareRequest,
    ProtocolMessage,
    TxnInquiry,
    VoteResponse,
)
from repro.core.outcomes import Outcome, TwoPhaseVariant, Vote
from repro.core.tid import TID
from repro.log.records import (
    abort_record,
    commit_record,
    coordinator_commit_record,
    end_record,
    prepare_record,
)

Effects = List[Effect]


class CoordinatorState(Enum):
    COLLECTING = "collecting"
    FORCING_COMMIT = "forcing_commit"
    COMMITTED = "committed"
    ABORTED = "aborted"
    DONE = "done"


class SubordinateState(Enum):
    PREPARING = "preparing"
    FORCING_PREPARE = "forcing_prepare"
    PREPARED = "prepared"
    COMMITTING = "committing"
    COMMITTED = "committed"
    HEURISTIC = "heuristic"
    DONE = "done"


VOTE_TIMER = "2pc.votes"
ACK_TIMER = "2pc.acks"
OUTCOME_TIMER = "2pc.outcome"
COMMIT_FORCE = "2pc.commit_force"
PREPARE_FORCE = "2pc.prepare_force"
SUB_COMMIT_FORCE = "2pc.sub_commit_force"
SUB_COMMIT_DURABLE = "2pc.sub_commit_durable"


class TwoPhaseCoordinator:
    """Coordinator-side state machine for one transaction."""

    def __init__(self, tid: TID, site: str, subordinates: Sequence[str],
                 variant: TwoPhaseVariant = TwoPhaseVariant.OPTIMIZED,
                 use_multicast: bool = False,
                 vote_timeout_ms: float = 1000.0,
                 ack_timeout_ms: float = 1000.0,
                 max_prepare_retries: int = 3):
        self.tid = tid
        self.site = site
        self.subordinates = list(subordinates)
        self.variant = variant
        self.use_multicast = use_multicast
        self.vote_timeout_ms = vote_timeout_ms
        self.ack_timeout_ms = ack_timeout_ms
        self.max_prepare_retries = max_prepare_retries

        self.state = CoordinatorState.COLLECTING
        self.votes: Dict[str, Vote] = {}
        self.local_vote: Optional[Vote] = None
        self.update_subs: List[str] = []
        self.acked: Set[str] = set()
        self.outcome: Optional[Outcome] = None
        self.prepare_retries = 0

    # --------------------------------------------------------- lifecycle

    def start(self) -> Effects:
        """Kick off phase one: local prepare plus prepares to every sub."""
        effects: Effects = [LocalPrepare(self.tid)]
        effects.extend(self._send_prepares(self.subordinates))
        if self.subordinates:
            effects.append(StartTimer(VOTE_TIMER, self.vote_timeout_ms))
        return effects

    def _send_prepares(self, dsts: Sequence[str]) -> Effects:
        if not dsts:
            return []
        msg_of = lambda: PrepareRequest(tid=self.tid, sender=self.site,
                                        variant=self.variant)
        if self.use_multicast and len(dsts) > 1:
            return [MulticastDatagram(tuple(dsts), msg_of())]
        return [SendDatagram(dst, msg_of()) for dst in dsts]

    # ------------------------------------------------------------ inputs

    def on_local_prepared(self, vote: Vote) -> Effects:
        if self.state is not CoordinatorState.COLLECTING:
            return []
        self.local_vote = vote
        if vote is Vote.NO:
            return self._decide_abort()
        return self._maybe_decide()

    def on_message(self, msg: ProtocolMessage) -> Effects:
        if isinstance(msg, VoteResponse):
            return self._on_vote(msg)
        if isinstance(msg, CommitAck):
            return self._on_ack(msg)
        if isinstance(msg, TxnInquiry):
            return self._on_inquiry(msg)
        return []

    def _on_vote(self, msg: VoteResponse) -> Effects:
        if msg.sender not in self.subordinates:
            return []
        if self.state is not CoordinatorState.COLLECTING:
            # Late vote after a decision: a YES-voter will learn the
            # outcome via the notice/inquiry path; nothing to do.
            return []
        if msg.sender in self.votes:
            return []
        self.votes[msg.sender] = msg.vote  # lint: bounded(per-txn machine, discarded whole)
        if msg.vote is Vote.NO:
            return self._decide_abort()
        return self._maybe_decide()

    def _maybe_decide(self) -> Effects:
        if self.local_vote is None or len(self.votes) < len(self.subordinates):
            return []
        self.update_subs = [s for s in self.subordinates
                            if self.votes[s] is Vote.YES]
        read_only_txn = (self.local_vote is Vote.READ_ONLY
                         and not self.update_subs)
        effects: Effects = [CancelTimer(VOTE_TIMER)] if self.subordinates else []
        if read_only_txn:
            # No updates anywhere: committed with zero log writes.
            self.state = CoordinatorState.DONE
            self.outcome = Outcome.COMMITTED
            effects.extend([
                Trace("2pc.read_only_commit", {"tid": str(self.tid)}),
                LocalCommit(self.tid),
                Complete(self.tid, Outcome.COMMITTED),
                Forget(self.tid),
            ])
            return effects
        self.state = CoordinatorState.FORCING_COMMIT
        record = coordinator_commit_record(str(self.tid), self.site,
                                           subordinates=self.update_subs)
        effects.append(ForceLog(record, COMMIT_FORCE))
        return effects

    def on_log_forced(self, token: str) -> Effects:
        if token != COMMIT_FORCE or self.state is not CoordinatorState.FORCING_COMMIT:
            return []
        self.state = CoordinatorState.COMMITTED
        self.outcome = Outcome.COMMITTED
        effects: Effects = []
        notice = lambda: CommitNotice(tid=self.tid, sender=self.site)
        if self.update_subs:
            if self.use_multicast and len(self.update_subs) > 1:
                effects.append(MulticastDatagram(tuple(self.update_subs), notice()))
            else:
                effects.extend(SendDatagram(s, notice()) for s in self.update_subs)
            effects.append(StartTimer(ACK_TIMER, self.ack_timeout_ms))
        effects.append(LocalCommit(self.tid))
        effects.append(Complete(self.tid, Outcome.COMMITTED))
        if not self.update_subs:
            effects.extend(self._finish_committed())
        return effects

    def _on_ack(self, msg: CommitAck) -> Effects:
        if self.state is not CoordinatorState.COMMITTED:
            return []
        if msg.sender not in self.update_subs or msg.sender in self.acked:
            return []
        self.acked.add(msg.sender)  # lint: bounded(per-txn machine, discarded whole)
        if len(self.acked) == len(self.update_subs):
            effects: Effects = [CancelTimer(ACK_TIMER)]
            effects.extend(self._finish_committed())
            return effects
        return []

    def _finish_committed(self) -> Effects:
        self.state = CoordinatorState.DONE
        return [WriteLog(end_record(str(self.tid), self.site)),
                Forget(self.tid)]

    def _on_inquiry(self, msg: TxnInquiry) -> Effects:
        if self.outcome is None:
            # Still undecided: the safest answer is silence; the inquirer
            # retries and presumed abort resolves us if we die first.
            return []
        return [SendDatagram(msg.sender,
                             InquiryResponse(tid=self.tid, sender=self.site,
                                             outcome=self.outcome))]

    def on_timer(self, token: str) -> Effects:
        if token == VOTE_TIMER and self.state is CoordinatorState.COLLECTING:
            missing = [s for s in self.subordinates if s not in self.votes]
            if self.prepare_retries < self.max_prepare_retries:
                self.prepare_retries += 1
                effects = self._send_prepares(missing)
                effects.append(StartTimer(VOTE_TIMER, self.vote_timeout_ms))
                return effects
            return self._decide_abort()
        if token == ACK_TIMER and self.state is CoordinatorState.COMMITTED:
            pending = [s for s in self.update_subs if s not in self.acked]
            effects = [SendDatagram(s, CommitNotice(tid=self.tid, sender=self.site))
                       for s in pending]
            effects.append(StartTimer(ACK_TIMER, self.ack_timeout_ms))
            return effects
        return []

    # ------------------------------------------------------------ abort

    def _decide_abort(self) -> Effects:
        if self.state in (CoordinatorState.ABORTED, CoordinatorState.DONE):
            return []
        self.state = CoordinatorState.ABORTED
        self.outcome = Outcome.ABORTED
        # Presumed abort: lazy record, no acknowledgements, forget at once.
        effects: Effects = [CancelTimer(VOTE_TIMER)] if self.subordinates else []
        targets = [s for s in self.subordinates
                   if self.votes.get(s) not in (Vote.NO, Vote.READ_ONLY)]
        effects.append(WriteLog(abort_record(str(self.tid), self.site)))
        effects.extend(SendDatagram(s, AbortNotice(tid=self.tid, sender=self.site))
                       for s in targets)
        effects.append(LocalAbort(self.tid))
        effects.append(Complete(self.tid, Outcome.ABORTED))
        self.state = CoordinatorState.DONE
        effects.append(Forget(self.tid))
        return effects

    def abort_now(self) -> Effects:
        """Application-requested abort (abort-transaction call)."""
        return self._decide_abort()

    # ---------------------------------------------------------- recovery

    @classmethod
    def recovered(cls, tid: TID, site: str, pending_subs: Sequence[str],
                  **kwargs: Any) -> "TwoPhaseCoordinator":
        """Rebuild a committed coordinator found in the log (COORD_COMMIT
        without END): it must keep notifying until every ack arrives."""
        coord = cls(tid, site, pending_subs, **kwargs)
        coord.state = CoordinatorState.COMMITTED
        coord.outcome = Outcome.COMMITTED
        coord.update_subs = list(pending_subs)
        coord.votes = {s: Vote.YES for s in pending_subs}
        coord.local_vote = Vote.YES
        return coord

    def resume_notifications(self) -> Effects:
        """Effects to emit right after :meth:`recovered`."""
        effects: Effects = [SendDatagram(s, CommitNotice(tid=self.tid, sender=self.site))
                            for s in self.update_subs]
        effects.append(StartTimer(ACK_TIMER, self.ack_timeout_ms))
        return effects


class TwoPhaseSubordinate:
    """Subordinate-side state machine for one transaction."""

    def __init__(self, tid: TID, site: str, coordinator: str,
                 variant: TwoPhaseVariant = TwoPhaseVariant.OPTIMIZED,
                 outcome_timeout_ms: float = 2000.0):
        self.tid = tid
        self.site = site
        self.coordinator = coordinator
        self.variant = variant
        self.outcome_timeout_ms = outcome_timeout_ms
        self.state = SubordinateState.PREPARING
        self.vote: Optional[Vote] = None
        self.outcome: Optional[Outcome] = None
        # Heuristic-commit bookkeeping (the LU 6.2-style escape hatch):
        # set when an operator resolved the blocked transaction locally.
        self.heuristic_outcome: Optional[Outcome] = None
        self.heuristic_damage = False

    # --------------------------------------------------------- lifecycle

    def start(self) -> Effects:
        """Handle the (first) prepare request."""
        return [LocalPrepare(self.tid)]

    def on_local_prepared(self, vote: Vote) -> Effects:
        if self.state is not SubordinateState.PREPARING:
            return []
        self.vote = vote
        if vote is Vote.NO:
            self.state = SubordinateState.DONE
            self.outcome = Outcome.ABORTED
            return [
                SendDatagram(self.coordinator,
                             VoteResponse(tid=self.tid, sender=self.site,
                                          vote=Vote.NO)),
                WriteLog(abort_record(str(self.tid), self.site)),
                LocalAbort(self.tid),
                Forget(self.tid),
            ]
        if vote is Vote.READ_ONLY:
            # Read-only: no records, drop (read) locks, omit from phase 2.
            # No outcome is recorded: this site has no stake, and must
            # never claim "committed" for a transaction that may abort.
            self.state = SubordinateState.DONE
            return [
                SendDatagram(self.coordinator,
                             VoteResponse(tid=self.tid, sender=self.site,
                                          vote=Vote.READ_ONLY)),
                LocalCommit(self.tid),
                Forget(self.tid),
            ]
        self.state = SubordinateState.FORCING_PREPARE
        record = prepare_record(str(self.tid), self.site, self.coordinator)
        return [ForceLog(record, PREPARE_FORCE)]

    def on_log_forced(self, token: str) -> Effects:
        if token == PREPARE_FORCE and self.state is SubordinateState.FORCING_PREPARE:
            self.state = SubordinateState.PREPARED
            return [
                SendDatagram(self.coordinator,
                             VoteResponse(tid=self.tid, sender=self.site,
                                          vote=Vote.YES)),
                StartTimer(OUTCOME_TIMER, self.outcome_timeout_ms),
            ]
        if token == SUB_COMMIT_FORCE and self.state is SubordinateState.COMMITTING:
            return self._commit_record_durable(forced=True)
        return []

    def on_log_durable(self, token: str) -> Effects:
        if token == SUB_COMMIT_DURABLE and self.state is SubordinateState.COMMITTING:
            return self._commit_record_durable(forced=False)
        return []

    # ------------------------------------------------------------ inputs

    def on_message(self, msg: ProtocolMessage) -> Effects:
        if isinstance(msg, PrepareRequest):
            return self._on_duplicate_prepare()
        if isinstance(msg, CommitNotice):
            return self._on_commit()
        if isinstance(msg, AbortNotice):
            return self._on_abort()
        if isinstance(msg, InquiryResponse):
            if msg.outcome is Outcome.COMMITTED:
                return self._on_commit()
            if msg.outcome is Outcome.ABORTED:
                return self._on_abort()
            return []
        return []

    def _on_duplicate_prepare(self) -> Effects:
        # The coordinator retried: our vote was lost.  Re-send it.
        if self.state is SubordinateState.PREPARED and self.vote is not None:
            return [SendDatagram(self.coordinator,
                                 VoteResponse(tid=self.tid, sender=self.site,
                                              vote=self.vote))]
        return []

    def _on_commit(self) -> Effects:
        if self.state is SubordinateState.HEURISTIC:
            return self._resolve_heuristic(Outcome.COMMITTED)
        if self.state is not SubordinateState.PREPARED:
            if self.state in (SubordinateState.COMMITTING,
                              SubordinateState.COMMITTED,
                              SubordinateState.DONE):
                return self._maybe_reack()
            return []
        self.state = SubordinateState.COMMITTING
        self.outcome = Outcome.COMMITTED
        effects: Effects = [CancelTimer(OUTCOME_TIMER)]
        record = commit_record(str(self.tid), self.site)
        if self.variant is TwoPhaseVariant.OPTIMIZED:
            # Drop locks first, write the commit record lazily, ack when
            # it becomes durable: one fewer force, shorter lock hold.
            effects.append(LocalCommit(self.tid))
            effects.append(WriteLog(record, token=SUB_COMMIT_DURABLE))
        elif self.variant is TwoPhaseVariant.SEMI_OPTIMIZED:
            # Locks still drop early, but the record is forced.
            effects.append(LocalCommit(self.tid))
            effects.append(ForceLog(record, SUB_COMMIT_FORCE))
        else:  # UNOPTIMIZED: force, then drop locks, then ack immediately.
            effects.append(ForceLog(record, SUB_COMMIT_FORCE))
        return effects

    def _commit_record_durable(self, forced: bool) -> Effects:
        self.state = SubordinateState.COMMITTED
        effects: Effects = []
        if self.variant is TwoPhaseVariant.UNOPTIMIZED:
            effects.append(LocalCommit(self.tid))  # locks held until now
            effects.append(SendDatagram(self.coordinator,
                                        CommitAck(tid=self.tid, sender=self.site)))
        else:
            # Delayed ack: piggybacked on the next datagram to the
            # coordinator (or a lazy-send sweep), never a fresh datagram
            # on the critical path.
            effects.append(LazySendDatagram(self.coordinator,
                                            CommitAck(tid=self.tid,
                                                      sender=self.site)))
        self.state = SubordinateState.DONE
        effects.append(Forget(self.tid))
        return effects

    def _maybe_reack(self) -> Effects:
        # A retransmitted commit notice means our ack was lost.
        if self.outcome is Outcome.COMMITTED and self.state in (
                SubordinateState.COMMITTED, SubordinateState.DONE):
            return [SendDatagram(self.coordinator,
                                 CommitAck(tid=self.tid, sender=self.site))]
        return []

    def _on_abort(self) -> Effects:
        if self.state is SubordinateState.HEURISTIC:
            return self._resolve_heuristic(Outcome.ABORTED)
        if self.state in (SubordinateState.COMMITTING,
                          SubordinateState.COMMITTED):
            raise ProtocolViolation(
                f"{self.tid}: abort notice after commit at {self.site}")
        if self.state is SubordinateState.DONE:
            return []
        self.state = SubordinateState.DONE
        self.outcome = Outcome.ABORTED
        return [
            CancelTimer(OUTCOME_TIMER),
            WriteLog(abort_record(str(self.tid), self.site)),
            LocalAbort(self.tid),
            Forget(self.tid),
        ]

    # --------------------------------------------------- heuristic commit

    def heuristic_resolve(self, outcome: Outcome) -> Effects:
        """Resolve a *blocked* transaction by operator/program decision —
        the "heuristic commit" escape hatch of LU 6.2 (paper §5): it
        releases the locks now, at the price of possibly diverging from
        the coordinator's eventual decision.

        The machine stays alive, still inquiring; when the true outcome
        finally arrives, a mismatch is recorded as *heuristic damage*
        (reported, never silently absorbed — the data exposure already
        happened and cannot be undone).
        """
        if self.state is not SubordinateState.PREPARED:
            raise ProtocolViolation(
                f"{self.tid}: heuristic resolution while {self.state}")
        self.heuristic_outcome = outcome
        self.state = SubordinateState.HEURISTIC
        effects: Effects = [
            Trace("2pc.heuristic_resolve", {"tid": str(self.tid),
                                            "outcome": outcome.value}),
        ]
        if outcome is Outcome.COMMITTED:
            effects.append(LocalCommit(self.tid))
            effects.append(WriteLog(commit_record(str(self.tid), self.site)))
        else:
            effects.append(WriteLog(abort_record(str(self.tid), self.site)))
            effects.append(LocalAbort(self.tid))
        # Keep asking: we still owe the coordinator an answer, and we
        # want to learn (and report) whether we guessed right.
        effects.append(StartTimer(OUTCOME_TIMER, self.outcome_timeout_ms))
        return effects

    def _resolve_heuristic(self, true_outcome: Outcome) -> Effects:
        assert self.heuristic_outcome is not None
        self.outcome = true_outcome
        self.state = SubordinateState.DONE
        effects: Effects = [CancelTimer(OUTCOME_TIMER)]
        if true_outcome is not self.heuristic_outcome:
            self.heuristic_damage = True
            effects.append(Trace("2pc.heuristic_damage",
                                 {"tid": str(self.tid),
                                  "guessed": self.heuristic_outcome.value,
                                  "actual": true_outcome.value}))
        if true_outcome is Outcome.COMMITTED:
            effects.append(SendDatagram(self.coordinator,
                                        CommitAck(tid=self.tid,
                                                  sender=self.site)))
        effects.append(Forget(self.tid))
        return effects

    def on_timer(self, token: str) -> Effects:
        if token == OUTCOME_TIMER and self.state is SubordinateState.HEURISTIC:
            return [
                SendDatagram(self.coordinator,
                             TxnInquiry(tid=self.tid, sender=self.site)),
                StartTimer(OUTCOME_TIMER, self.outcome_timeout_ms),
            ]
        if token == OUTCOME_TIMER and self.state is SubordinateState.PREPARED:
            # Blocked: keep asking.  If the coordinator has forgotten or
            # recovered with no trace of us, presumed abort answers.
            return [
                Trace("2pc.blocked_inquiry", {"tid": str(self.tid),
                                              "site": self.site}),
                SendDatagram(self.coordinator,
                             TxnInquiry(tid=self.tid, sender=self.site)),
                StartTimer(OUTCOME_TIMER, self.outcome_timeout_ms),
            ]
        return []

    # ---------------------------------------------------------- recovery

    @classmethod
    def recovered(cls, tid: TID, site: str, coordinator: str,
                  **kwargs: Any) -> "TwoPhaseSubordinate":
        """Rebuild a prepared subordinate found in the log (PREPARE with
        no outcome record): still blocked, must inquire."""
        sub = cls(tid, site, coordinator, **kwargs)
        sub.state = SubordinateState.PREPARED
        sub.vote = Vote.YES
        return sub

    def resume_inquiry(self) -> Effects:
        return [
            SendDatagram(self.coordinator,
                         TxnInquiry(tid=self.tid, sender=self.site)),
            StartTimer(OUTCOME_TIMER, self.outcome_timeout_ms),
        ]


class ProtocolViolation(AssertionError):
    """An impossible protocol transition — a bug, never a runtime event."""
