"""The non-blocking commitment protocol (paper §3.3).

Two-phase commit has a window of vulnerability: between its prepare and
its receipt of the outcome, a subordinate that loses the coordinator
must stay *blocked*, holding write locks.  Camelot's non-blocking
protocol lets at least some sites commit or abort despite any single
site crash or network partition, at the cost of ~2x the critical path
(4 log forces + 5 messages vs 2 + 3).  It makes five changes to 2PC:

1. The prepare message carries the full site list and the quorum sizes
   for the replication phase.
2. Subordinates do not wait forever for the outcome: they time out and
   *become coordinators*.  Multiple simultaneous coordinators are
   possible and harmless.
3. An extra **replication phase** sits between the standard two: the
   coordinator collects the votes, then replicates the decision data
   (vote vector + quorum spec) at subordinates, each forcing a
   replication record.  The commit point is the log write that completes
   a *commit quorum* of replication records (quorum consensus).
4. No transaction manager forgets a transaction until all sites have
   committed or aborted, and no site joins both a commit and an abort
   quorum for the same transaction.
5. The coordinator prepares before sending the prepare message.

The precise quorum rules are reconstructed from the paper plus Skeen's
quorum-based commit (the paper's protocol reference [8] is a tech
report):

- **Commit** requires ``commit_quorum`` sites holding durable
  replication records.  A takeover coordinator may *promote* prepared
  sites into the commit quorum (they force replication records) — but
  only if at least one reachable site already holds a replication
  record, which proves every vote was YES.
- **Abort** is unilateral for the original coordinator *before* it sends
  any replication message (no replication record can exist, so no one
  can ever commit).  Afterwards — and always for takeovers — abort
  requires ``abort_quorum`` sites durably *pledging* (forced
  ABORT_PLEDGE record) never to join the commit quorum.
- A site holding a replication record refuses to pledge; a pledged site
  refuses promotion and votes NO to any late prepare.  Because
  ``commit_quorum + abort_quorum > n_sites``, at most one kind of quorum
  can ever complete.

Read-only behaviour: a read-only subordinate votes READ_ONLY, writes
nothing, and drops out (no replication or notify phase) unless the
coordinator must draft it as a *quorum helper* because the update sites
alone cannot form a commit quorum.  A completely read-only transaction
has the same critical path as two-phase commit: one round of messages,
zero log writes.
"""

from __future__ import annotations

from enum import Enum
from typing import Any, Dict, List, Optional, Sequence, Set

from repro.core.effects import (
    CancelTimer,
    Complete,
    Effect,
    ForceLog,
    Forget,
    LocalAbort,
    LocalCommit,
    LocalPrepare,
    MulticastDatagram,
    SendDatagram,
    StartTakeover,
    StartTimer,
    Trace,
    WriteLog,
)
from repro.core.messages import (
    NbAbortJoin,
    NbAbortJoinAck,
    NbOutcome,
    NbOutcomeAck,
    NbPrepare,
    NbReplicate,
    NbReplicateAck,
    NbStateReport,
    NbStateRequest,
    NbVote,
    ProtocolMessage,
)
from repro.core.outcomes import Outcome, Vote
from repro.core.quorum import QuorumSpec
from repro.core.tid import TID
from repro.log.records import (
    abort_pledge_record,
    abort_record,
    commit_record,
    end_record,
    prepare_record,
    replication_record,
)

Effects = List[Effect]

# Timer / log-force tokens.
NB_VOTE_TIMER = "nb.votes"
NB_REPL_TIMER = "nb.replication"
NB_NOTIFY_TIMER = "nb.notify"
NB_OUTCOME_TIMER = "nb.outcome"
NB_TAKEOVER_TIMER = "nb.takeover"
NB_PREPARE_FORCE = "nb.prepare_force"
NB_REPL_FORCE = "nb.replication_force"
NB_PLEDGE_FORCE = "nb.pledge_force"


def make_decision_data(tid: TID, coordinator: str, sites: Sequence[str],
                       quorum: QuorumSpec, votes: Dict[str, Vote],
                       replication_targets: Sequence[str]) -> Dict[str, Any]:
    """The self-contained payload replicated at the commit quorum."""
    return {
        "tid": str(tid),
        "coordinator": coordinator,
        "sites": list(sites),
        "quorum": quorum.to_dict(),
        "votes": {site: vote.value for site, vote in votes.items()},
        "replication_targets": list(replication_targets),
    }


class NbCoordinatorState(Enum):
    LOCAL_PREPARING = "local_preparing"
    FORCING_PREPARE = "forcing_prepare"
    COLLECTING = "collecting"
    FORCING_REPLICATION = "forcing_replication"
    REPLICATING = "replicating"
    NOTIFYING = "notifying"
    DONE = "done"


class NbCoordinator:
    """Original-coordinator machine: the failure-free (and vote-NO) paths.

    Deliberately *not* resumed after a coordinator crash: recovery spawns
    an :class:`NbTakeover` instead, which unifies the crash-recovery and
    subordinate-timeout termination paths (the protocol tolerates
    multiple coordinators, so this is free).
    """

    def __init__(self, tid: TID, site: str, subordinates: Sequence[str],
                 quorum: Optional[QuorumSpec] = None,
                 use_multicast: bool = False,
                 vote_timeout_ms: float = 1500.0,
                 repl_timeout_ms: float = 1500.0,
                 notify_timeout_ms: float = 1500.0,
                 max_prepare_retries: int = 3,
                 already_pledged: bool = False):
        self.tid = tid
        self.site = site
        self.already_pledged = already_pledged
        self.subordinates = list(subordinates)
        self.sites = [site] + self.subordinates
        self.quorum = quorum or QuorumSpec.majority(len(self.sites))
        if self.quorum.n_sites != len(self.sites):
            raise ValueError("quorum spec sized for a different site count")
        self.use_multicast = use_multicast
        self.vote_timeout_ms = vote_timeout_ms
        self.repl_timeout_ms = repl_timeout_ms
        self.notify_timeout_ms = notify_timeout_ms
        self.max_prepare_retries = max_prepare_retries

        self.state = NbCoordinatorState.LOCAL_PREPARING
        self.votes: Dict[str, Vote] = {}
        self.local_vote: Optional[Vote] = None
        self.update_sites: List[str] = []
        self.replication_targets: List[str] = []
        self.replicated: Set[str] = set()
        self.outcome_acks: Set[str] = set()
        self.notify_targets: List[str] = []
        self.decision_data: Optional[Dict[str, Any]] = None
        self.outcome: Optional[Outcome] = None
        self.prepare_retries = 0
        self.replication_sent = False

    # --------------------------------------------------------- lifecycle

    def start(self) -> Effects:
        """Change 5: the coordinator prepares before sending prepares."""
        return [LocalPrepare(self.tid,
                             extra_payload={"sites": self.sites,
                                            "quorum": self.quorum.to_dict()})]

    def on_local_prepared(self, vote: Vote) -> Effects:
        if self.state is not NbCoordinatorState.LOCAL_PREPARING:
            return []
        if self.already_pledged:
            # This site granted a durable abort pledge to a concurrent
            # takeover before commitment began: it promised never to
            # join the commit quorum, so coordinating a commit now could
            # let both quorums form.  Abort — always legal here, since
            # replication has not started.
            self.local_vote = Vote.NO
            return [Trace("nb.pledged_coordinator_abort",
                          {"tid": str(self.tid)})] + self._decide_abort()
        self.local_vote = vote
        if vote is Vote.NO:
            return self._decide_abort()
        if vote is Vote.YES:
            # Force our own prepare record (with site list and quorum)
            # before any prepare message leaves this site.
            self.state = NbCoordinatorState.FORCING_PREPARE
            record = prepare_record(str(self.tid), self.site, self.site,
                                    sites=self.sites,
                                    quorum_sizes=self.quorum.to_dict())
            return [ForceLog(record, NB_PREPARE_FORCE)]
        # Read-only coordinator: nothing to force yet.
        return self._enter_collecting()

    def on_log_forced(self, token: str) -> Effects:
        if (token == NB_PREPARE_FORCE
                and self.state is NbCoordinatorState.FORCING_PREPARE):
            return self._enter_collecting()
        if (token == NB_REPL_FORCE
                and self.state is NbCoordinatorState.FORCING_REPLICATION):
            self.replicated.add(self.site)  # lint: bounded(per-txn machine, discarded whole)
            return self._start_replication_round()
        return []

    def _enter_collecting(self) -> Effects:
        self.state = NbCoordinatorState.COLLECTING
        if not self.subordinates:
            return self._maybe_decide()
        effects = self._send_prepares(self.subordinates)
        effects.append(StartTimer(NB_VOTE_TIMER, self.vote_timeout_ms))
        return effects

    def _send_prepares(self, dsts: Sequence[str]) -> Effects:
        msg = NbPrepare(tid=self.tid, sender=self.site,
                        sites=tuple(self.sites), quorum=self.quorum)
        if self.use_multicast and len(dsts) > 1:
            return [MulticastDatagram(tuple(dsts), msg)]
        return [SendDatagram(dst, msg) for dst in dsts]

    # ------------------------------------------------------------ inputs

    def on_message(self, msg: ProtocolMessage) -> Effects:
        if isinstance(msg, NbVote):
            return self._on_vote(msg)
        if isinstance(msg, NbReplicateAck):
            return self._on_replicate_ack(msg)
        if isinstance(msg, NbOutcomeAck):
            return self._on_outcome_ack(msg)
        if isinstance(msg, NbStateRequest):
            return self._on_state_request(msg)
        if isinstance(msg, NbOutcome):
            return self._on_peer_outcome(msg)
        return []

    def _on_vote(self, msg: NbVote) -> Effects:
        if (self.state is not NbCoordinatorState.COLLECTING
                or msg.sender not in self.subordinates
                or msg.sender in self.votes):
            return []
        self.votes[msg.sender] = msg.vote  # lint: bounded(per-txn machine, discarded whole)
        if msg.vote is Vote.NO:
            return self._decide_abort()
        return self._maybe_decide()

    def _maybe_decide(self) -> Effects:
        if self.local_vote is None or len(self.votes) < len(self.subordinates):
            return []
        votes = dict(self.votes)
        votes[self.site] = self.local_vote
        self.update_sites = [s for s in self.sites if votes[s] is Vote.YES]
        effects: Effects = [CancelTimer(NB_VOTE_TIMER)] if self.subordinates else []
        if not self.update_sites:
            # Completely read-only: committed, no replication, no notify,
            # zero log writes — the same critical path as 2PC read.
            self.state = NbCoordinatorState.DONE
            self.outcome = Outcome.COMMITTED
            effects.extend([
                Trace("nb.read_only_commit", {"tid": str(self.tid)}),
                LocalCommit(self.tid),
                Complete(self.tid, Outcome.COMMITTED),
                Forget(self.tid),
            ])
            return effects
        # Replication targets: update sites, plus read-only helpers if
        # the update sites alone cannot form the commit quorum.
        targets = list(self.update_sites)
        if len(targets) < self.quorum.commit_quorum:
            helpers = [s for s in self.sites if s not in targets]
            needed = self.quorum.commit_quorum - len(targets)
            targets.extend(helpers[:needed])
        self.replication_targets = targets
        self.decision_data = make_decision_data(
            self.tid, self.site, self.sites, self.quorum, votes, targets)
        if self.site in targets:
            # Force our replication record before replicating (this is
            # the 3rd of the critical path's 4 forces).
            self.state = NbCoordinatorState.FORCING_REPLICATION
            record = replication_record(str(self.tid), self.site,
                                        self.decision_data)
            effects.append(ForceLog(record, NB_REPL_FORCE))
            return effects
        return effects + self._start_replication_round()

    def _start_replication_round(self) -> Effects:
        self.state = NbCoordinatorState.REPLICATING
        self.replication_sent = True
        remote = [s for s in self.replication_targets if s != self.site]
        effects: Effects = []
        msg = NbReplicate(tid=self.tid, sender=self.site,
                          decision_data=self.decision_data or {})
        if remote:
            if self.use_multicast and len(remote) > 1:
                effects.append(MulticastDatagram(tuple(remote), msg))
            else:
                effects.extend(SendDatagram(s, msg) for s in remote)
            effects.append(StartTimer(NB_REPL_TIMER, self.repl_timeout_ms))
        effects.extend(self._maybe_commit_point())
        return effects

    def _on_replicate_ack(self, msg: NbReplicateAck) -> Effects:
        if self.state is not NbCoordinatorState.REPLICATING:
            return []
        if msg.sender not in self.replication_targets:
            return []
        if not msg.ok:
            # The site pledged abort under a concurrent takeover; that
            # takeover will drive the outcome.  We cannot complete the
            # quorum through this site; just keep waiting for others or
            # for the takeover's NbOutcome.
            return [Trace("nb.replicate_refused",
                          {"tid": str(self.tid), "site": msg.sender})]
        self.replicated.add(msg.sender)
        return self._maybe_commit_point()

    def _maybe_commit_point(self) -> Effects:
        if self.state is not NbCoordinatorState.REPLICATING:
            return []
        if not self.quorum.can_commit(len(self.replicated)):
            return []
        # The commit point: a commit quorum of replication records exists.
        self.state = NbCoordinatorState.NOTIFYING
        self.outcome = Outcome.COMMITTED
        effects: Effects = [CancelTimer(NB_REPL_TIMER),
                            Trace("nb.commit_point", {"tid": str(self.tid)})]
        # Notify every site that did any work: update sites and helpers.
        self.notify_targets = [s for s in dict.fromkeys(
            self.update_sites + self.replication_targets) if s != self.site]
        notice = NbOutcome(tid=self.tid, sender=self.site,
                           outcome=Outcome.COMMITTED)
        if self.notify_targets:
            if self.use_multicast and len(self.notify_targets) > 1:
                effects.append(MulticastDatagram(tuple(self.notify_targets),
                                                 notice))
            else:
                effects.extend(SendDatagram(s, notice)
                               for s in self.notify_targets)
            effects.append(StartTimer(NB_NOTIFY_TIMER, self.notify_timeout_ms))
        effects.append(LocalCommit(self.tid))
        effects.append(WriteLog(commit_record(str(self.tid), self.site)))
        effects.append(Complete(self.tid, Outcome.COMMITTED))
        if not self.notify_targets:
            effects.extend(self._finish())
        return effects

    def _on_outcome_ack(self, msg: NbOutcomeAck) -> Effects:
        if self.state is not NbCoordinatorState.NOTIFYING:
            return []
        if msg.sender not in self.notify_targets or msg.sender in self.outcome_acks:
            return []
        self.outcome_acks.add(msg.sender)  # lint: bounded(per-txn machine, discarded whole)
        if len(self.outcome_acks) == len(self.notify_targets):
            effects: Effects = [CancelTimer(NB_NOTIFY_TIMER)]
            effects.extend(self._finish())
            return effects
        return []

    def _finish(self) -> Effects:
        # Change 4: we may expunge only now, when every site has decided.
        self.state = NbCoordinatorState.DONE
        return [WriteLog(end_record(str(self.tid), self.site)),
                Forget(self.tid)]

    def _on_state_request(self, msg: NbStateRequest) -> Effects:
        status, data = self._own_status()
        return [SendDatagram(msg.sender,
                             NbStateReport(tid=self.tid, sender=self.site,
                                           status=status, decision_data=data,
                                           round=msg.round))]

    def _own_status(self) -> tuple[str, Optional[Dict[str, Any]]]:
        if self.outcome is Outcome.COMMITTED:
            return "committed", None
        if self.outcome is Outcome.ABORTED:
            return "aborted", None
        if self.site in self.replicated:
            return "replicated", self.decision_data
        if self.local_vote is Vote.YES:
            return "prepared", None
        return "no_state", None

    def _on_peer_outcome(self, msg: NbOutcome) -> Effects:
        """A takeover coordinator decided for us."""
        effects: Effects = [SendDatagram(
            msg.sender, NbOutcomeAck(tid=self.tid, sender=self.site))]
        if self.outcome is not None:
            if self.outcome is not msg.outcome:
                raise NbProtocolViolation(
                    f"{self.tid}: conflicting outcomes at coordinator "
                    f"{self.site}: had {self.outcome}, told {msg.outcome}")
            return effects
        if msg.outcome is Outcome.COMMITTED:
            if not self.replication_sent:
                raise NbProtocolViolation(
                    f"{self.tid}: peer committed before replication began")
            self.outcome = Outcome.COMMITTED
            self.state = NbCoordinatorState.DONE
            effects.extend([
                CancelTimer(NB_REPL_TIMER),
                LocalCommit(self.tid),
                WriteLog(commit_record(str(self.tid), self.site)),
                Complete(self.tid, Outcome.COMMITTED),
                Forget(self.tid),
            ])
            return effects
        # Aborted by an abort quorum.
        self.outcome = Outcome.ABORTED
        self.state = NbCoordinatorState.DONE
        effects.extend([
            CancelTimer(NB_VOTE_TIMER),
            CancelTimer(NB_REPL_TIMER),
            WriteLog(abort_record(str(self.tid), self.site)),
            LocalAbort(self.tid),
            Complete(self.tid, Outcome.ABORTED),
            Forget(self.tid),
        ])
        return effects

    # ------------------------------------------------------------ timers

    def on_timer(self, token: str) -> Effects:
        if token == NB_VOTE_TIMER and self.state is NbCoordinatorState.COLLECTING:
            missing = [s for s in self.subordinates if s not in self.votes]
            if self.prepare_retries < self.max_prepare_retries:
                self.prepare_retries += 1
                effects = self._send_prepares(missing)
                effects.append(StartTimer(NB_VOTE_TIMER, self.vote_timeout_ms))
                return effects
            # Vote collection failed; replication never started, so a
            # unilateral abort is safe (no one can ever commit).
            return self._decide_abort()
        if token == NB_REPL_TIMER and self.state is NbCoordinatorState.REPLICATING:
            missing = [s for s in self.replication_targets
                       if s != self.site and s not in self.replicated]
            msg = NbReplicate(tid=self.tid, sender=self.site,
                              decision_data=self.decision_data or {})
            effects: Effects = [SendDatagram(s, msg) for s in missing]
            effects.append(StartTimer(NB_REPL_TIMER, self.repl_timeout_ms))
            return effects
        if token == NB_NOTIFY_TIMER and self.state is NbCoordinatorState.NOTIFYING:
            pending = [s for s in self.notify_targets
                       if s not in self.outcome_acks]
            notice = NbOutcome(tid=self.tid, sender=self.site,
                               outcome=Outcome.COMMITTED)
            effects = [SendDatagram(s, notice) for s in pending]
            effects.append(StartTimer(NB_NOTIFY_TIMER, self.notify_timeout_ms))
            return effects
        return []

    # ------------------------------------------------------------ abort

    def _decide_abort(self) -> Effects:
        """Unilateral abort: legal only before replication begins."""
        if self.replication_sent:
            raise NbProtocolViolation(
                f"{self.tid}: unilateral abort after replication began")
        if self.state is NbCoordinatorState.DONE:
            return []
        self.state = NbCoordinatorState.DONE
        self.outcome = Outcome.ABORTED
        targets = [s for s in self.subordinates
                   if self.votes.get(s) not in (Vote.NO, Vote.READ_ONLY)]
        effects: Effects = [CancelTimer(NB_VOTE_TIMER)]
        effects.append(WriteLog(abort_record(str(self.tid), self.site)))
        notice = NbOutcome(tid=self.tid, sender=self.site,
                           outcome=Outcome.ABORTED)
        effects.extend(SendDatagram(s, notice) for s in targets)
        effects.append(LocalAbort(self.tid))
        effects.append(Complete(self.tid, Outcome.ABORTED))
        effects.append(Forget(self.tid))
        return effects

    def abort_now(self) -> Effects:
        """Application-requested abort — only valid pre-replication."""
        return self._decide_abort()


class NbSubState(Enum):
    PREPARING = "preparing"
    FORCING_PREPARE = "forcing_prepare"
    PREPARED = "prepared"
    FORCING_REPLICATION = "forcing_replication"
    REPLICATED = "replicated"
    FORCING_PLEDGE = "forcing_pledge"
    PLEDGED = "pledged"
    DONE = "done"


class NbSubordinate:
    """Participant machine at a subordinate (or quorum-helper) site."""

    def __init__(self, tid: TID, site: str, coordinator: str,
                 sites: Sequence[str], quorum: QuorumSpec,
                 outcome_timeout_ms: float = 3000.0,
                 already_pledged: bool = False):
        self.tid = tid
        self.site = site
        self.coordinator = coordinator
        self.sites = list(sites)
        self.quorum = quorum
        self.outcome_timeout_ms = outcome_timeout_ms
        self.already_pledged = already_pledged

        self.state = NbSubState.PREPARING
        self.vote: Optional[Vote] = None
        self.outcome: Optional[Outcome] = None
        self.decision_data: Optional[Dict[str, Any]] = None
        self._pending_replicate_sender: Optional[str] = None
        self._pending_pledge_sender: Optional[str] = None

    # --------------------------------------------------------- lifecycle

    def start(self) -> Effects:
        if self.already_pledged:
            # We durably promised an abort quorum we would never join the
            # commit quorum; any late prepare must be answered NO.
            self.vote = Vote.NO
            self.state = NbSubState.PLEDGED
            return [SendDatagram(self.coordinator,
                                 NbVote(tid=self.tid, sender=self.site,
                                        vote=Vote.NO))]
        return [LocalPrepare(self.tid,
                             extra_payload={"sites": self.sites,
                                            "quorum": self.quorum.to_dict()})]

    @classmethod
    def helper(cls, tid: TID, site: str, replicate_msg: NbReplicate,
               outcome_timeout_ms: float = 3000.0) -> "NbSubordinate":
        """A read-only (or previously uninvolved) site drafted into the
        commit quorum: it was forgotten locally, but the replicate
        message is self-contained."""
        data = replicate_msg.decision_data
        sub = cls(tid, site, data["coordinator"], data["sites"],
                  QuorumSpec.from_dict(data["quorum"]),
                  outcome_timeout_ms=outcome_timeout_ms)
        sub.vote = Vote.READ_ONLY
        sub.state = NbSubState.PREPARED  # eligible for replication
        return sub

    def on_local_prepared(self, vote: Vote) -> Effects:
        if self.state is not NbSubState.PREPARING:
            return []
        self.vote = vote
        if vote is Vote.NO:
            self.state = NbSubState.DONE
            self.outcome = Outcome.ABORTED
            return [
                SendDatagram(self.coordinator,
                             NbVote(tid=self.tid, sender=self.site,
                                    vote=Vote.NO)),
                WriteLog(abort_record(str(self.tid), self.site)),
                LocalAbort(self.tid),
                Forget(self.tid),
            ]
        if vote is Vote.READ_ONLY:
            # Drop out entirely; if drafted later, a helper machine is
            # rebuilt from the replicate message.  No outcome recorded —
            # a read-only site must never claim the transaction's fate.
            self.state = NbSubState.DONE
            return [
                SendDatagram(self.coordinator,
                             NbVote(tid=self.tid, sender=self.site,
                                    vote=Vote.READ_ONLY)),
                LocalCommit(self.tid),
                Forget(self.tid),
            ]
        self.state = NbSubState.FORCING_PREPARE
        record = prepare_record(str(self.tid), self.site, self.coordinator,
                                sites=self.sites,
                                quorum_sizes=self.quorum.to_dict())
        return [ForceLog(record, NB_PREPARE_FORCE)]

    def on_log_forced(self, token: str) -> Effects:
        if token == NB_PREPARE_FORCE and self.state is NbSubState.FORCING_PREPARE:
            self.state = NbSubState.PREPARED
            return [
                SendDatagram(self.coordinator,
                             NbVote(tid=self.tid, sender=self.site,
                                    vote=Vote.YES)),
                StartTimer(NB_OUTCOME_TIMER, self.outcome_timeout_ms),
            ]
        if token == NB_REPL_FORCE and self.state is NbSubState.FORCING_REPLICATION:
            self.state = NbSubState.REPLICATED
            requester = self._pending_replicate_sender or self.coordinator
            self._pending_replicate_sender = None
            return [
                SendDatagram(requester,
                             NbReplicateAck(tid=self.tid, sender=self.site,
                                            ok=True)),
                CancelTimer(NB_OUTCOME_TIMER),
                StartTimer(NB_OUTCOME_TIMER, self.outcome_timeout_ms),
            ]
        if token == NB_PLEDGE_FORCE and self.state is NbSubState.FORCING_PLEDGE:
            self.state = NbSubState.PLEDGED
            requester = self._pending_pledge_sender or self.coordinator
            self._pending_pledge_sender = None
            return [
                SendDatagram(requester,
                             NbAbortJoinAck(tid=self.tid, sender=self.site,
                                            ok=True)),
                CancelTimer(NB_OUTCOME_TIMER),
                StartTimer(NB_OUTCOME_TIMER, self.outcome_timeout_ms),
            ]
        return []

    # ------------------------------------------------------------ inputs

    def on_message(self, msg: ProtocolMessage) -> Effects:
        if isinstance(msg, NbPrepare):
            return self._on_duplicate_prepare()
        if isinstance(msg, NbReplicate):
            return self._on_replicate(msg)
        if isinstance(msg, NbAbortJoin):
            return self._on_abort_join(msg)
        if isinstance(msg, NbOutcome):
            return self._on_outcome(msg)
        if isinstance(msg, NbStateRequest):
            return self._on_state_request(msg)
        return []

    def _on_duplicate_prepare(self) -> Effects:
        if self.vote is not None and self.state in (
                NbSubState.PREPARED, NbSubState.REPLICATED, NbSubState.PLEDGED):
            resend_vote = Vote.NO if self.state is NbSubState.PLEDGED else self.vote
            return [SendDatagram(self.coordinator,
                                 NbVote(tid=self.tid, sender=self.site,
                                        vote=resend_vote))]
        return []

    def _on_replicate(self, msg: NbReplicate) -> Effects:
        if self.state is NbSubState.PLEDGED:
            # Change 4: never join both quorums.
            return [SendDatagram(msg.sender,
                                 NbReplicateAck(tid=self.tid, sender=self.site,
                                                ok=False))]
        if self.state is NbSubState.REPLICATED:
            return [SendDatagram(msg.sender,
                                 NbReplicateAck(tid=self.tid, sender=self.site,
                                                ok=True))]
        if self.state is not NbSubState.PREPARED:
            return []
        self.state = NbSubState.FORCING_REPLICATION
        self.decision_data = dict(msg.decision_data)
        self._pending_replicate_sender = msg.sender
        record = replication_record(str(self.tid), self.site, self.decision_data)
        return [ForceLog(record, NB_REPL_FORCE)]

    def _on_abort_join(self, msg: NbAbortJoin) -> Effects:
        if self.state in (NbSubState.REPLICATED, NbSubState.FORCING_REPLICATION):
            # Change 4, the other direction.
            return [SendDatagram(msg.sender,
                                 NbAbortJoinAck(tid=self.tid, sender=self.site,
                                                ok=False))]
        if self.state is NbSubState.PLEDGED:
            return [SendDatagram(msg.sender,
                                 NbAbortJoinAck(tid=self.tid, sender=self.site,
                                                ok=True))]
        if self.state is not NbSubState.PREPARED:
            return []
        self.state = NbSubState.FORCING_PLEDGE
        self._pending_pledge_sender = msg.sender
        return [ForceLog(abort_pledge_record(str(self.tid), self.site),
                         NB_PLEDGE_FORCE)]

    def _on_outcome(self, msg: NbOutcome) -> Effects:
        effects: Effects = [SendDatagram(
            msg.sender, NbOutcomeAck(tid=self.tid, sender=self.site))]
        if self.outcome is not None:
            if self.outcome is not msg.outcome and self.outcome is not None:
                raise NbProtocolViolation(
                    f"{self.tid}: conflicting outcomes at {self.site}")
            return effects
        if self.state in (NbSubState.PREPARING, NbSubState.FORCING_PREPARE):
            # Outcome arrived before we even finished preparing (e.g. a
            # quick abort).  Adopt it; commit in this state is a protocol
            # violation because we never voted.
            if msg.outcome is Outcome.COMMITTED:
                raise NbProtocolViolation(
                    f"{self.tid}: commit outcome before vote at {self.site}")
        if msg.outcome is Outcome.COMMITTED:
            # A pledged site may still learn COMMITTED: its pledge only
            # kept it out of the commit quorum, which formed from other
            # sites.  Quorum intersection rules out a *decided* abort
            # coexisting, so adopting the outcome is safe.
            self.outcome = Outcome.COMMITTED
            self.state = NbSubState.DONE
            effects.extend([
                CancelTimer(NB_OUTCOME_TIMER),
                LocalCommit(self.tid),
                WriteLog(commit_record(str(self.tid), self.site)),
                Forget(self.tid),
            ])
            return effects
        self.outcome = Outcome.ABORTED
        self.state = NbSubState.DONE
        effects.extend([
            CancelTimer(NB_OUTCOME_TIMER),
            WriteLog(abort_record(str(self.tid), self.site)),
            LocalAbort(self.tid),
            Forget(self.tid),
        ])
        return effects

    def _on_state_request(self, msg: NbStateRequest) -> Effects:
        status, data = self.status_report()
        return [SendDatagram(msg.sender,
                             NbStateReport(tid=self.tid, sender=self.site,
                                           status=status, decision_data=data,
                                           round=msg.round))]

    def status_report(self) -> tuple[str, Optional[Dict[str, Any]]]:
        if self.outcome is Outcome.COMMITTED:
            return "committed", None
        if self.outcome is Outcome.ABORTED:
            return "aborted", None
        if self.state in (NbSubState.REPLICATED, NbSubState.FORCING_REPLICATION):
            return "replicated", self.decision_data
        if self.state in (NbSubState.PLEDGED, NbSubState.FORCING_PLEDGE):
            # A pledge force in flight cannot be cancelled, so report it
            # already — conservative on both sides (never counted as
            # replicated; never promoted).
            return "abort_pledged", None
        if self.state is NbSubState.PREPARED:
            return "prepared", None
        return "no_state", None

    # ------------------------------------------- local takeover sharing

    def note_local_replication(self) -> None:
        """A takeover on this same site forced our replication record
        (self-promotion); adopt the membership so we never pledge."""
        if self.state is NbSubState.PREPARED:
            self.state = NbSubState.REPLICATED

    def note_local_pledge(self) -> None:
        """A takeover on this same site forced our abort pledge."""
        if self.state is NbSubState.PREPARED:
            self.state = NbSubState.PLEDGED

    # ------------------------------------------------------------ timers

    def on_timer(self, token: str) -> Effects:
        if token != NB_OUTCOME_TIMER:
            return []
        if self.state in (NbSubState.PREPARED, NbSubState.REPLICATED,
                          NbSubState.PLEDGED):
            # Change 2: become a coordinator.  The host builds an
            # NbTakeover seeded from our durable state; we keep waiting
            # (and will learn the outcome from it like anyone else).
            return [
                Trace("nb.takeover", {"tid": str(self.tid), "site": self.site}),
                StartTakeover(self.tid),
                StartTimer(NB_OUTCOME_TIMER, self.outcome_timeout_ms),
            ]
        return []


class NbTakeoverState(Enum):
    POLLING = "polling"
    PROMOTING = "promoting"
    PLEDGING = "pledging"
    NOTIFYING = "notifying"
    DONE = "done"


class NbTakeover:
    """Termination protocol: a participant acting as a (new) coordinator.

    Also used by crash recovery to finish transactions found prepared or
    replicated in the log.  Several may run at once — quorum membership
    exclusivity (change 4) keeps them from deciding differently.
    """

    def __init__(self, tid: TID, site: str, sites: Sequence[str],
                 quorum: QuorumSpec, own_status: str,
                 own_decision_data: Optional[Dict[str, Any]] = None,
                 poll_timeout_ms: float = 800.0,
                 notify_timeout_ms: float = 1500.0,
                 max_notify_retries: int = 10):
        self.tid = tid
        self.site = site
        self.sites = list(sites)
        self.quorum = quorum
        self.poll_timeout_ms = poll_timeout_ms
        self.notify_timeout_ms = notify_timeout_ms
        self.max_notify_retries = max_notify_retries

        self.state = NbTakeoverState.POLLING
        self.round = 0
        self._evaluated_round = -1
        self.reports: Dict[str, str] = {site: own_status}
        self.decision_data: Optional[Dict[str, Any]] = own_decision_data
        self.outcome: Optional[Outcome] = None
        self.replicated: Set[str] = {site} if own_status == "replicated" else set()
        self.pledged: Set[str] = {site} if own_status == "abort_pledged" else set()
        self.outcome_acks: Set[str] = set()
        self.notify_retries = 0
        self.decided_by_peer = False

    # --------------------------------------------------------- lifecycle

    def start(self) -> Effects:
        own = self.reports.get(self.site)
        if own in ("committed", "aborted"):
            # Crash recovery found our own outcome but no end record:
            # just re-notify everyone else until they all acknowledge.
            self.decided_by_peer = True  # quorum evidence is in the log
            self.outcome_acks.add(self.site)  # lint: bounded(per-takeover machine, discarded on resolve)
            return self._decide(Outcome.COMMITTED if own == "committed"
                                else Outcome.ABORTED)
        return self._new_round()

    def _new_round(self) -> Effects:
        self.round += 1
        self.state = NbTakeoverState.POLLING
        # Keep durable facts (replication records, pledges) across rounds;
        # refresh soft statuses.
        others = [s for s in self.sites if s != self.site]
        effects: Effects = [
            SendDatagram(s, NbStateRequest(tid=self.tid, sender=self.site,
                                           round=self.round))
            for s in others
        ]
        effects.append(StartTimer(NB_TAKEOVER_TIMER, self.poll_timeout_ms))
        return effects

    # ------------------------------------------------------------ inputs

    def on_message(self, msg: ProtocolMessage) -> Effects:
        if isinstance(msg, NbStateReport):
            return self._on_report(msg)
        if isinstance(msg, NbReplicateAck):
            return self._on_replicate_ack(msg)
        if isinstance(msg, NbAbortJoinAck):
            return self._on_pledge_ack(msg)
        if isinstance(msg, NbOutcomeAck):
            return self._on_outcome_ack(msg)
        if isinstance(msg, NbOutcome):
            return self._on_peer_outcome(msg)
        return []

    def _on_report(self, msg: NbStateReport) -> Effects:
        if self.state is not NbTakeoverState.POLLING:
            return []
        self.reports[msg.sender] = msg.status  # lint: bounded(per-takeover machine, discarded on resolve)
        if msg.status == "replicated":
            self.replicated.add(msg.sender)
            if msg.decision_data:
                self.decision_data = dict(msg.decision_data)
        elif msg.status == "abort_pledged":
            self.pledged.add(msg.sender)
        if msg.status in ("committed", "aborted"):
            outcome = (Outcome.COMMITTED if msg.status == "committed"
                       else Outcome.ABORTED)
            # A decided site is itself proof the required quorum formed.
            self.decided_by_peer = True
            return self._decide(outcome)
        # Decisive early exit: a commit quorum already exists.
        if self.quorum.can_commit(len(self.replicated)):
            return self._decide(Outcome.COMMITTED)
        if len(self.reports) == len(self.sites):
            return self._evaluate()
        return []

    def on_timer(self, token: str) -> Effects:
        if token != NB_TAKEOVER_TIMER:
            return []
        if self.state is NbTakeoverState.POLLING:
            if self._evaluated_round >= self.round:
                # We already acted on this round's reports and blocked:
                # poll afresh — reachability may have changed.
                return self._new_round()
            return self._evaluate()
        if self.state in (NbTakeoverState.PROMOTING, NbTakeoverState.PLEDGING):
            # Quorum completion stalled (lost messages / mid-crash): poll
            # again from the top; durable facts are retained.
            return self._new_round()
        if self.state is NbTakeoverState.NOTIFYING:
            return self._resend_outcome()
        return []

    # --------------------------------------------------------- evaluation

    def _evaluate(self) -> Effects:
        """Act on what this round's reachable sites reported."""
        self._evaluated_round = self.round
        if self.quorum.can_commit(len(self.replicated)):
            return self._decide(Outcome.COMMITTED)
        promotable = [s for s in self.reports
                      if self.reports[s] == "prepared" and s not in self.replicated]
        if self.replicated and len(self.replicated) + len(promotable) >= \
                self.quorum.commit_quorum:
            # At least one replication record exists (so all votes were
            # YES) and enough prepared sites are reachable to finish the
            # commit quorum: promote them.
            self.state = NbTakeoverState.PROMOTING
            effects: Effects = [Trace("nb.promote",
                                      {"tid": str(self.tid),
                                       "targets": promotable})]
            msg = NbReplicate(tid=self.tid, sender=self.site,
                              decision_data=self.decision_data or {})
            for s in promotable:
                if s == self.site:
                    effects.append(ForceLog(
                        replication_record(str(self.tid), self.site,
                                           self.decision_data or {}),
                        NB_REPL_FORCE))
                else:
                    effects.append(SendDatagram(s, msg))
            effects.append(StartTimer(NB_TAKEOVER_TIMER, self.poll_timeout_ms))
            return effects
        # Try the abort quorum: sites that can pledge are the reachable
        # ones without replication records.
        pledgeable = [s for s in self.reports
                      if self.reports[s] in ("prepared", "no_state",
                                             "abort_pledged")
                      and s not in self.replicated]
        if len(self.pledged) >= self.quorum.abort_quorum:
            return self._decide(Outcome.ABORTED)
        if len(set(pledgeable) | self.pledged) >= self.quorum.abort_quorum:
            self.state = NbTakeoverState.PLEDGING
            effects = [Trace("nb.pledge_round",
                             {"tid": str(self.tid), "targets": pledgeable})]
            for s in pledgeable:
                if s in self.pledged:
                    continue
                if s == self.site:
                    effects.append(ForceLog(
                        abort_pledge_record(str(self.tid), self.site),
                        NB_PLEDGE_FORCE))
                else:
                    effects.append(SendDatagram(
                        s, NbAbortJoin(tid=self.tid, sender=self.site)))
            effects.append(StartTimer(NB_TAKEOVER_TIMER, self.poll_timeout_ms))
            return effects
        # Blocked: neither quorum reachable.  Poll again later — this is
        # the (provably unavoidable) multi-failure blocking case.
        return [Trace("nb.blocked", {"tid": str(self.tid),
                                     "replicated": sorted(self.replicated),
                                     "pledged": sorted(self.pledged)}),
                StartTimer(NB_TAKEOVER_TIMER, self.poll_timeout_ms * 2)]

    def on_log_forced(self, token: str) -> Effects:
        if token == NB_REPL_FORCE and self.state is NbTakeoverState.PROMOTING:
            self.replicated.add(self.site)
            if self.quorum.can_commit(len(self.replicated)):
                return self._decide(Outcome.COMMITTED)
            return []
        if token == NB_PLEDGE_FORCE and self.state is NbTakeoverState.PLEDGING:
            self.pledged.add(self.site)
            if self.quorum.can_abort(len(self.pledged)):
                return self._decide(Outcome.ABORTED)
            return []
        return []

    def _on_replicate_ack(self, msg: NbReplicateAck) -> Effects:
        if self.state is not NbTakeoverState.PROMOTING:
            return []
        if msg.ok:
            self.replicated.add(msg.sender)
            if self.quorum.can_commit(len(self.replicated)):
                return self._decide(Outcome.COMMITTED)
        else:
            self.reports[msg.sender] = "abort_pledged"
            self.pledged.add(msg.sender)
        return []

    def _on_pledge_ack(self, msg: NbAbortJoinAck) -> Effects:
        if self.state is not NbTakeoverState.PLEDGING:
            return []
        if msg.ok:
            self.pledged.add(msg.sender)
            if self.quorum.can_abort(len(self.pledged)):
                return self._decide(Outcome.ABORTED)
        else:
            self.reports[msg.sender] = "replicated"
            self.replicated.add(msg.sender)
        return []

    # ----------------------------------------------------------- outcome

    def _decide(self, outcome: Outcome) -> Effects:
        if self.outcome is not None:
            if self.outcome is not outcome:
                raise NbProtocolViolation(
                    f"{self.tid}: takeover at {self.site} flip-flopped "
                    f"{self.outcome} -> {outcome}")
            return []
        if outcome is Outcome.COMMITTED and not self.quorum.can_commit(
                len(self.replicated)) and not self.decided_by_peer:
            raise NbProtocolViolation(
                f"{self.tid}: commit without a commit quorum")
        self.outcome = outcome
        self.state = NbTakeoverState.NOTIFYING
        effects: Effects = [CancelTimer(NB_TAKEOVER_TIMER),
                            Trace("nb.takeover_decided",
                                  {"tid": str(self.tid),
                                   "outcome": outcome.value})]
        effects.extend(self._send_outcome(self._notify_targets()))
        effects.append(StartTimer(NB_TAKEOVER_TIMER, self.notify_timeout_ms))
        return effects

    def _notify_targets(self) -> List[str]:
        # Everyone, including our own site: the local participant machine
        # learns the outcome through the same message as everyone else.
        return [s for s in self.sites if s not in self.outcome_acks]

    def _send_outcome(self, targets: Sequence[str]) -> Effects:
        assert self.outcome is not None
        notice = NbOutcome(tid=self.tid, sender=self.site, outcome=self.outcome)
        return [SendDatagram(s, notice) for s in targets]

    def _resend_outcome(self) -> Effects:
        self.notify_retries += 1
        if self.notify_retries > self.max_notify_retries:
            # Unreachable sites will run their own takeover and find the
            # quorum evidence; we may stand down.
            self.state = NbTakeoverState.DONE
            return [Forget(self.tid)]
        effects = self._send_outcome(self._notify_targets())
        effects.append(StartTimer(NB_TAKEOVER_TIMER, self.notify_timeout_ms))
        return effects

    def _on_outcome_ack(self, msg: NbOutcomeAck) -> Effects:
        if self.state is not NbTakeoverState.NOTIFYING:
            return []
        self.outcome_acks.add(msg.sender)
        if not self._notify_targets():
            self.state = NbTakeoverState.DONE
            return [CancelTimer(NB_TAKEOVER_TIMER), Forget(self.tid)]
        return []

    def _on_peer_outcome(self, msg: NbOutcome) -> Effects:
        """Another coordinator beat us to it; adopt and stand down."""
        effects: Effects = [SendDatagram(
            msg.sender, NbOutcomeAck(tid=self.tid, sender=self.site))]
        if self.outcome is None:
            self.decided_by_peer = True
            effects.extend(self._decide(msg.outcome))
        elif self.outcome is not msg.outcome:
            raise NbProtocolViolation(
                f"{self.tid}: peer outcome {msg.outcome} conflicts with "
                f"{self.outcome} at {self.site}")
        return effects


class NbProtocolViolation(AssertionError):
    """An impossible non-blocking transition — a bug, never expected."""
