"""Commit/abort quorum arithmetic for the non-blocking protocol.

The protocol's third change to two-phase commit (paper §3.3): no site
may commit or abort "until it is certain the other outcome is excluded",
enforced with quorum consensus [Gifford 79 / Skeen 82].  A commit
requires ``commit_quorum`` sites holding durable replication records; an
abort (once the replication phase may have begun) requires
``abort_quorum`` sites durably pledging never to join a commit quorum.
Safety needs the two to intersect:

    commit_quorum + abort_quorum > n_sites

and the fourth change — no site joins both kinds of quorum for one
transaction — makes membership the serialising resource, which is why
"having several simultaneous coordinators is possible, but is not a
problem".
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class QuorumSpec:
    """Quorum sizes for one transaction's replication phase.

    Carried in the non-blocking prepare message and logged in every
    prepare record, so any takeover coordinator knows the rules.
    """

    n_sites: int
    commit_quorum: int
    abort_quorum: int

    def __post_init__(self) -> None:
        if self.n_sites < 1:
            raise ValueError("a transaction involves at least one site")
        if not 1 <= self.commit_quorum <= self.n_sites:
            raise ValueError(
                f"commit quorum {self.commit_quorum} out of range for "
                f"{self.n_sites} sites")
        if not 1 <= self.abort_quorum <= self.n_sites:
            raise ValueError(
                f"abort quorum {self.abort_quorum} out of range for "
                f"{self.n_sites} sites")
        if self.commit_quorum + self.abort_quorum <= self.n_sites:
            raise ValueError(
                f"quorums must intersect: Qc={self.commit_quorum} + "
                f"Qa={self.abort_quorum} <= N={self.n_sites}")

    @classmethod
    def majority(cls, n_sites: int) -> "QuorumSpec":
        """Balanced quorums: both a strict majority.

        For odd N this survives any minority partition on both the
        commit and abort side; for even N ties block (as they must).
        """
        qc = n_sites // 2 + 1
        qa = n_sites - qc + 1
        return cls(n_sites=n_sites, commit_quorum=qc, abort_quorum=qa)

    @classmethod
    def paxos(cls, n_acceptors: int) -> "QuorumSpec":
        """Paxos Commit acceptor quorums: N = 2F+1 acceptors, any F+1 of
        which form a quorum.  Even-sized acceptor sets are rejected at
        configuration time — they pay an extra acceptor without raising
        F, and two disjoint "majorities" of size F+1 would be possible.
        """
        if n_acceptors % 2 == 0:
            raise ValueError(
                f"paxos acceptor sets must be odd (N = 2F+1), got "
                f"{n_acceptors}")
        majority = n_acceptors // 2 + 1
        return cls(n_sites=n_acceptors, commit_quorum=majority,
                   abort_quorum=majority)

    @classmethod
    def commit_weighted(cls, n_sites: int) -> "QuorumSpec":
        """Favour commit availability: Qc = 1 lets the coordinator alone
        reach the commit point (degenerates toward 2PC's behaviour);
        abort then needs every site."""
        return cls(n_sites=n_sites, commit_quorum=1, abort_quorum=n_sites)

    def can_commit(self, replication_records: int) -> bool:
        return replication_records >= self.commit_quorum

    def can_abort(self, abort_pledges: int) -> bool:
        return abort_pledges >= self.abort_quorum

    def commit_excluded(self, ineligible_sites: int) -> bool:
        """True when so many sites can never join a commit quorum that
        commitment is impossible (enough abort pledges / no-state sites)."""
        return self.n_sites - ineligible_sites < self.commit_quorum

    def to_dict(self) -> dict:
        return {"n_sites": self.n_sites, "commit_quorum": self.commit_quorum,
                "abort_quorum": self.abort_quorum}

    @classmethod
    def from_dict(cls, data: dict) -> "QuorumSpec":
        return cls(n_sites=data["n_sites"], commit_quorum=data["commit_quorum"],
                   abort_quorum=data["abort_quorum"])
