"""The transaction manager core: Camelot's protocols, sans I/O.

Everything in this package is a *pure* protocol implementation: state
machines that consume protocol messages / completion notifications and
emit :mod:`~repro.core.effects` (send datagram, force log record, drop
locks, ...).  No simulator, no clock, no network — which is what makes
the protocols exhaustively testable, including under adversarial message
orderings and crash schedules, independent of the performance model.

Contents:

- :mod:`repro.core.tid` / :mod:`repro.core.family` — nested transaction
  identifiers and the family descriptor table (paper §3.4).
- :mod:`repro.core.twophase` — presumed-abort two-phase commit with the
  paper's delayed-commit optimization and all three measured variants
  (§3.2, Figure 2).
- :mod:`repro.core.nonblocking` — the non-blocking three-phase protocol:
  replication phase, quorum consensus, subordinate takeover (§3.3,
  Figure 3).
- :mod:`repro.core.quorum` — commit/abort quorum arithmetic.
- :mod:`repro.core.abortproto` — abort with incomplete site knowledge,
  nested abort propagation.
- :mod:`repro.core.tranman` — the transaction manager process that hosts
  the state machines on the simulated substrate.
"""

from repro.core.outcomes import Outcome, ProtocolKind, TwoPhaseVariant, Vote
from repro.core.quorum import QuorumSpec
from repro.core.tid import TID

__all__ = [
    "Outcome",
    "ProtocolKind",
    "QuorumSpec",
    "TID",
    "TwoPhaseVariant",
    "Vote",
]
