"""Protocol messages exchanged between transaction managers.

These ride the datagram layer (:mod:`repro.net.datagram`), never the
RPC path — TranMans talk datagrams for speed and implement their own
timeout/retry, so every message type defines a ``dedup_key`` that stays
stable across retransmissions.

Naming follows the paper: prepare / vote / commit / abort / commit-ack
for two-phase commit; the non-blocking protocol adds the replication
phase (replicate / replicate-ack), abort-quorum joining, and the
termination protocol's state-request / state-report used by subordinates
that time out and become coordinators.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.core.outcomes import Outcome, TwoPhaseVariant, Vote
from repro.core.quorum import QuorumSpec
from repro.core.tid import TID


@dataclass(frozen=True)
class ProtocolMessage:
    """Base class: every protocol message names its transaction/sender."""

    tid: TID
    sender: str

    @property
    def dedup_key(self) -> str:
        return f"{type(self).__name__}:{self.tid}:{self.sender}"


# --------------------------------------------------------------------- 2PC


@dataclass(frozen=True)
class PrepareRequest(ProtocolMessage):
    """Phase-one prepare from coordinator to a subordinate."""

    variant: TwoPhaseVariant = TwoPhaseVariant.OPTIMIZED


@dataclass(frozen=True)
class VoteResponse(ProtocolMessage):
    """Subordinate's vote back to the coordinator."""

    vote: Vote = Vote.YES


@dataclass(frozen=True)
class CommitNotice(ProtocolMessage):
    """Coordinator's commit decision (phase two)."""


@dataclass(frozen=True)
class AbortNotice(ProtocolMessage):
    """Coordinator's (or abort protocol's) abort notice."""


@dataclass(frozen=True)
class CommitAck(ProtocolMessage):
    """Subordinate's acknowledgement that its commit record is durable.

    Under the delayed-commit optimization this is what lets the
    coordinator finally forget the transaction.
    """


@dataclass(frozen=True)
class TxnInquiry(ProtocolMessage):
    """A blocked/recovering subordinate asks the coordinator for the
    outcome.  Presumed abort: a coordinator with no state answers
    aborted."""


@dataclass(frozen=True)
class InquiryResponse(ProtocolMessage):
    outcome: Outcome = Outcome.IN_DOUBT


# ------------------------------------------------------------ non-blocking


@dataclass(frozen=True)
class NbPrepare(ProtocolMessage):
    """Non-blocking prepare: carries the full site list and quorum sizes
    (paper §3.3, change 1)."""

    sites: Tuple[str, ...] = ()
    quorum: Optional[QuorumSpec] = None


@dataclass(frozen=True)
class NbVote(ProtocolMessage):
    vote: Vote = Vote.YES


@dataclass(frozen=True)
class NbReplicate(ProtocolMessage):
    """Replication-phase request: force this decision data, then ack.

    Also used by takeover coordinators to *promote* prepared sites into
    the commit quorum — identical semantics, different sender.
    """

    decision_data: Dict[str, Any] = field(default_factory=dict)

    @property
    def dedup_key(self) -> str:
        # A promotion after a retransmitted original must still deliver,
        # so the key includes the issuing coordinator.
        return f"NbReplicate:{self.tid}:{self.sender}"


@dataclass(frozen=True)
class NbReplicateAck(ProtocolMessage):
    """ok=True: replication record durable (sender joined the commit
    quorum).  ok=False: refused — the sender already pledged abort."""

    ok: bool = True


@dataclass(frozen=True)
class NbAbortJoin(ProtocolMessage):
    """Request to join the abort quorum: pledge (durably) never to join
    a commit quorum for this transaction."""


@dataclass(frozen=True)
class NbAbortJoinAck(ProtocolMessage):
    """ok=True: pledge durable.  ok=False: refused — sender holds a
    replication record (change 4: no site joins both quorums)."""

    ok: bool = True


@dataclass(frozen=True)
class NbOutcome(ProtocolMessage):
    """Notify-phase message: the decided outcome."""

    outcome: Outcome = Outcome.COMMITTED


@dataclass(frozen=True)
class NbStateRequest(ProtocolMessage):
    """Termination protocol: a timed-out subordinate, acting as a new
    coordinator, polls every site's state (change 2).  ``round`` makes
    successive polls distinguishable from wire duplicates."""

    round: int = 0

    @property
    def dedup_key(self) -> str:
        return f"NbStateRequest:{self.tid}:{self.sender}:{self.round}"


@dataclass(frozen=True)
class NbStateReport(ProtocolMessage):
    """Reply to a state request.

    ``status`` is one of ``"no_state"`` (nothing known — presumed
    abort), ``"prepared"``, ``"replicated"`` (holds a replication
    record), ``"abort_pledged"``, ``"committed"``, ``"aborted"``.
    ``decision_data`` rides along when status is ``"replicated"`` so the
    inquirer learns the vote vector and quorum spec.
    """

    status: str = "no_state"
    decision_data: Optional[Dict[str, Any]] = None
    round: int = 0

    @property
    def dedup_key(self) -> str:
        return f"NbStateReport:{self.tid}:{self.sender}:{self.round}"


@dataclass(frozen=True)
class NbOutcomeAck(ProtocolMessage):
    """Acknowledges NbOutcome so the coordinator can stop resending."""


# ------------------------------------------------------------ paxos commit


@dataclass(frozen=True)
class PcPrepare(ProtocolMessage):
    """Paxos Commit prepare from the leader to a resource manager.

    Carries the full configuration — site list and acceptor set — so a
    participant (or a late acceptor) can reconstruct the instance layout
    without further round trips.  The sender is the ballot-0 leader.
    """

    sites: Tuple[str, ...] = ()
    acceptors: Tuple[str, ...] = ()


@dataclass(frozen=True)
class PcVote(ProtocolMessage):
    """A resource manager's vote for its own Paxos instance.

    This *is* the ballot-0 phase-2a message, piggybacked on the prepare
    round (Gray & Lamport's co-location optimization): the RM proposes
    its own prepared/aborted value directly to every acceptor.  Carries
    the configuration so an acceptor that never saw the prepare can
    still participate.
    """

    vote: Vote = Vote.YES
    leader: str = ""
    sites: Tuple[str, ...] = ()
    acceptors: Tuple[str, ...] = ()


@dataclass(frozen=True)
class PcPhase2b(ProtocolMessage):
    """An acceptor's phase-2b: it accepted ``votes`` at ``ballot``.

    ``votes`` maps instances (RM site names) to vote values; ballot 0
    carries a single instance (the voting RM's), an election's phase-2b
    carries the candidate's whole value vector.
    """

    ballot: int = 0
    votes: Tuple[Tuple[str, str], ...] = ()

    @property
    def dedup_key(self) -> str:
        instances = ",".join(inst for inst, _ in self.votes)
        return (f"PcPhase2b:{self.tid}:{self.sender}:{self.ballot}:"
                f"{instances}")


@dataclass(frozen=True)
class PcP1a(ProtocolMessage):
    """Election phase-1a: a candidate leader asks every acceptor to
    promise ``ballot``.  Carries the configuration for stateless
    acceptor reconstruction after a crash-restart."""

    ballot: int = 0
    leader: str = ""
    sites: Tuple[str, ...] = ()
    acceptors: Tuple[str, ...] = ()

    @property
    def dedup_key(self) -> str:
        return f"PcP1a:{self.tid}:{self.sender}:{self.ballot}"


@dataclass(frozen=True)
class PcP1b(ProtocolMessage):
    """Phase-1b: the acceptor's promise (or nack when ``promised``
    exceeds the asked ballot), with every acceptance it holds as
    ``(instance, ballot, vote)`` triples."""

    ballot: int = 0
    promised: int = 0
    accepted: Tuple[Tuple[str, int, str], ...] = ()

    @property
    def dedup_key(self) -> str:
        return f"PcP1b:{self.tid}:{self.sender}:{self.ballot}"


@dataclass(frozen=True)
class PcP2a(ProtocolMessage):
    """Election phase-2a: the candidate's value vector — one vote value
    per instance, free instances filled with the abort value (any value
    not provably chosen may be aborted)."""

    ballot: int = 0
    values: Tuple[Tuple[str, str], ...] = ()
    leader: str = ""
    sites: Tuple[str, ...] = ()
    acceptors: Tuple[str, ...] = ()

    @property
    def dedup_key(self) -> str:
        return f"PcP2a:{self.tid}:{self.sender}:{self.ballot}"


@dataclass(frozen=True)
class PcOutcome(ProtocolMessage):
    """The decided outcome, sent by the leader (or a winning candidate)
    to every resource manager."""

    outcome: Outcome = Outcome.COMMITTED


@dataclass(frozen=True)
class PcOutcomeAck(ProtocolMessage):
    """Acknowledges PcOutcome so the notifier can stop resending."""


# ------------------------------------------------------------------ nested


@dataclass(frozen=True)
class NestedCommit(ProtocolMessage):
    """A subtransaction committed (relative to its parent): remote sites
    it touched must let the parent inherit its locks.  Volatile — Moss
    subtransaction commits write no log records; permanence comes only
    from the eventual top-level commit."""


# --------------------------------------------------------- abort protocol


@dataclass(frozen=True)
class FamilyAbort(ProtocolMessage):
    """Abort protocol message: abort this (sub)transaction everywhere.

    ``known_sites`` lets receivers propagate to sites the sender knew
    about; receivers merge with their own knowledge, so the abort
    reaches every participant even though no single site knows them all
    (the paper's abort protocol "can operate with incomplete knowledge
    about which sites are involved").
    """

    known_sites: Tuple[str, ...] = ()


@dataclass(frozen=True)
class FamilyAbortAck(ProtocolMessage):
    pass


ANY_MESSAGE = (
    PrepareRequest, VoteResponse, CommitNotice, AbortNotice, CommitAck,
    TxnInquiry, InquiryResponse,
    NbPrepare, NbVote, NbReplicate, NbReplicateAck, NbAbortJoin,
    NbAbortJoinAck, NbOutcome, NbOutcomeAck, NbStateRequest, NbStateReport,
    PcPrepare, PcVote, PcPhase2b, PcP1a, PcP1b, PcP2a, PcOutcome,
    PcOutcomeAck,
    NestedCommit, FamilyAbort, FamilyAbortAck,
)
