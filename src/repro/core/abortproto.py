"""The abort protocol: abort a (sub)transaction with incomplete knowledge.

Paper §3.1: "If some operation fails to respond, the site that invoked
it should eventually initiate the abort protocol, which can operate with
incomplete knowledge about which sites are involved."  The site-list
spying of the communication manager guarantees only that the *root* site
eventually learns all participants of a committed transaction; an abort
can start anywhere, any time, with a partial view.

The protocol (reconstructed from [Duchamp 89, TR CUCS-459-89]'s abstract
description in this paper): the initiator sends a FamilyAbort for the
aborting TID carrying every site it knows to be involved.  A receiver
aborts the subtree locally, merges the sender's site list with its own
knowledge, forwards the abort to sites the sender did not know about,
and acknowledges.  Because knowledge only grows and each site forwards
once per (tid, new-site) discovery, the abort floods to every reachable
participant — even though no single site knew them all.

This machine drives *nested* aborts too: aborting a subtransaction
undoes the subtree everywhere, while ancestors continue.
"""

from __future__ import annotations

from enum import Enum
from typing import List, Sequence, Set

from repro.core.effects import (
    CancelTimer,
    Complete,
    Effect,
    Forget,
    LocalAbort,
    SendDatagram,
    StartTimer,
    Trace,
    WriteLog,
)
from repro.core.messages import FamilyAbort, FamilyAbortAck, ProtocolMessage
from repro.core.outcomes import Outcome
from repro.core.tid import TID
from repro.log.records import abort_record

Effects = List[Effect]

ABORT_ACK_TIMER = "abortproto.acks"


class AbortInitiatorState(Enum):
    SPREADING = "spreading"
    DONE = "done"


class AbortInitiator:
    """Runs at the site where the abort originates."""

    def __init__(self, tid: TID, site: str, known_sites: Sequence[str],
                 ack_timeout_ms: float = 1000.0, max_retries: int = 5,
                 complete_call: bool = True):
        self.tid = tid
        self.site = site
        self.known_sites: Set[str] = {s for s in known_sites if s != site}
        self.ack_timeout_ms = ack_timeout_ms
        self.max_retries = max_retries
        self.complete_call = complete_call
        self.state = AbortInitiatorState.SPREADING
        self.acked: Set[str] = set()
        self.retries = 0

    def start(self) -> Effects:
        effects: Effects = [
            Trace("abort.initiate", {"tid": str(self.tid),
                                     "known": sorted(self.known_sites)}),
            WriteLog(abort_record(str(self.tid), self.site)),
            LocalAbort(self.tid),
        ]
        if self.complete_call:
            effects.append(Complete(self.tid, Outcome.ABORTED))
        effects.extend(self._send_aborts(self.known_sites))
        if self.known_sites:
            effects.append(StartTimer(ABORT_ACK_TIMER, self.ack_timeout_ms))
        else:
            effects.extend(self._finish())
        return effects

    def _send_aborts(self, dsts: Set[str]) -> Effects:
        msg_sites = tuple(sorted(self.known_sites | {self.site}))
        return [SendDatagram(dst, FamilyAbort(tid=self.tid, sender=self.site,
                                              known_sites=msg_sites))
                for dst in sorted(dsts)]

    def on_message(self, msg: ProtocolMessage) -> Effects:
        if isinstance(msg, FamilyAbortAck):
            return self._on_ack(msg)
        if isinstance(msg, FamilyAbort):
            # Someone else is also aborting this TID and knows sites we
            # may not; merge and ack them.
            new = set(msg.known_sites) - self.known_sites - {self.site}
            effects: Effects = [SendDatagram(
                msg.sender, FamilyAbortAck(tid=self.tid, sender=self.site))]
            if new and self.state is AbortInitiatorState.SPREADING:
                self.known_sites |= new
                effects.extend(self._send_aborts(new))
            return effects
        return []

    def _on_ack(self, msg: FamilyAbortAck) -> Effects:
        if self.state is not AbortInitiatorState.SPREADING:
            return []
        self.acked.add(msg.sender)  # lint: bounded(per-abort machine, discarded on resolve)
        if self.known_sites <= self.acked:
            effects: Effects = [CancelTimer(ABORT_ACK_TIMER)]
            effects.extend(self._finish())
            return effects
        return []

    def on_timer(self, token: str) -> Effects:
        if token != ABORT_ACK_TIMER or self.state is not AbortInitiatorState.SPREADING:
            return []
        self.retries += 1
        if self.retries > self.max_retries:
            # Presumed abort makes giving up safe: any site that never
            # hears the abort resolves it to abort on inquiry anyway.
            return self._finish()
        pending = self.known_sites - self.acked
        effects = self._send_aborts(pending)
        effects.append(StartTimer(ABORT_ACK_TIMER, self.ack_timeout_ms))
        return effects

    def _finish(self) -> Effects:
        self.state = AbortInitiatorState.DONE
        return [Forget(self.tid)]


class AbortParticipant:
    """Handles an incoming FamilyAbort at a participant site.

    Stateless beyond a single exchange: abort locally, ack, and forward
    to any involved sites the sender did not know about.
    """

    def __init__(self, site: str):
        self.site = site

    def on_abort(self, msg: FamilyAbort,
                 locally_known_sites: Sequence[str]) -> Effects:
        """``locally_known_sites``: sites this TranMan knows are involved
        (from its own descriptor's spying)."""
        sender_knew = set(msg.known_sites)
        forward_to = (set(locally_known_sites) - sender_knew
                      - {self.site, msg.sender})
        effects: Effects = [
            WriteLog(abort_record(str(msg.tid), self.site)),
            LocalAbort(msg.tid),
            SendDatagram(msg.sender,
                         FamilyAbortAck(tid=msg.tid, sender=self.site)),
        ]
        if forward_to:
            all_known = tuple(sorted(sender_knew | set(locally_known_sites)
                                     | {self.site}))
            effects.append(Trace("abort.forward",
                                 {"tid": str(msg.tid),
                                  "to": sorted(forward_to)}))
            effects.extend(SendDatagram(
                dst, FamilyAbort(tid=msg.tid, sender=self.site,
                                 known_sites=all_known))
                for dst in sorted(forward_to))
        return effects
