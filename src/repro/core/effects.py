"""Effects: what the protocol state machines ask their host to do.

The commit protocols are implemented sans-IO: a machine method consumes
one input (a protocol message, a completion notification, a timer) and
returns a list of effects.  The host — the simulated TranMan in
production, a hand-rolled harness in tests — executes them and feeds
completions back in:

- :class:`ForceLog` completes via ``machine.on_log_forced(token)``;
- :class:`WriteLog` (lazy) completes via
  ``machine.on_log_durable(token)`` whenever a later flush covers it;
- :class:`LocalPrepare` completes via
  ``machine.on_local_prepared(vote)``;
- :class:`StartTimer` fires via ``machine.on_timer(token)`` unless a
  later :class:`CancelTimer` with the same token was emitted.

Fire-and-forget effects (sends, lock drops, completions) need no reply.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.core.outcomes import Outcome
from repro.core.tid import TID
from repro.log.records import LogRecord


@dataclass(frozen=True)
class Effect:
    """Marker base class."""


@dataclass(frozen=True)
class SendDatagram(Effect):
    """One protocol message to one site (retries reuse the dedup key)."""

    dst: str
    message: Any


@dataclass(frozen=True)
class MulticastDatagram(Effect):
    """The same protocol message to several sites in one transmission."""

    dsts: Tuple[str, ...]
    message: Any


@dataclass(frozen=True)
class LazySendDatagram(Effect):
    """A message that may be *piggybacked*: queued and flushed with the
    next datagram to the same destination, or by a periodic sweep.  Used
    for delayed commit-acks — "Camelot batches only those messages that
    are not in the critical path"."""

    dst: str
    message: Any


@dataclass(frozen=True)
class ForceLog(Effect):
    """Append ``record`` and force it; host calls ``on_log_forced(token)``."""

    record: LogRecord
    token: str


@dataclass(frozen=True)
class WriteLog(Effect):
    """Append ``record`` lazily (no force).  If ``token`` is set the host
    watches for durability and calls ``on_log_durable(token)`` when some
    later force or background flush covers the record — this implements
    the piggybacked commit-ack of the delayed-commit optimization."""

    record: LogRecord
    token: Optional[str] = None


@dataclass(frozen=True)
class LocalPrepare(Effect):
    """Ask the local participant layer to prepare this transaction:
    collect server votes, force update/prepare records as needed.  Host
    answers with ``on_local_prepared(vote)``."""

    tid: TID
    # Non-blocking prepares log the site list + quorum alongside.
    extra_payload: Dict[str, Any] = field(default_factory=dict)
    read_only_hint: bool = False


@dataclass(frozen=True)
class LocalCommit(Effect):
    """Tell local servers to drop the transaction's locks (commit path).

    Emitted *before* the commit record is durable under the optimized
    variant — that reordering is the whole point of §3.2.
    """

    tid: TID


@dataclass(frozen=True)
class LocalAbort(Effect):
    """Undo local updates and drop locks (abort path)."""

    tid: TID


@dataclass(frozen=True)
class Complete(Effect):
    """The protocol finished from the caller's point of view: answer the
    commit-transaction call with this outcome."""

    tid: TID
    outcome: Outcome


@dataclass(frozen=True)
class Forget(Effect):
    """All obligations met: the host may expunge the machine/descriptor
    (paper: only after every site has committed or aborted)."""

    tid: TID


@dataclass(frozen=True)
class StartTakeover(Effect):
    """A timed-out non-blocking participant wants to become a coordinator
    (paper §3.3, change 2).  The host constructs an
    :class:`~repro.core.nonblocking.NbTakeover` seeded with this site's
    durable state and runs it alongside the participant machine."""

    tid: TID


@dataclass(frozen=True)
class StartTimer(Effect):
    """Request ``on_timer(token)`` after ``delay_ms`` (cancellable)."""

    token: str
    delay_ms: float


@dataclass(frozen=True)
class CancelTimer(Effect):
    token: str


@dataclass(frozen=True)
class Trace(Effect):
    """Diagnostic breadcrumb for experiment accounting."""

    kind: str
    detail: Dict[str, Any] = field(default_factory=dict)


Effects = list  # readability alias: functions return "Effects" (list of Effect)
