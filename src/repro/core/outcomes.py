"""Shared protocol vocabulary: votes, outcomes, protocol selection.

The type of commitment protocol to execute — two-phase versus
non-blocking — is specified as an argument to the commit-transaction
call (paper §3.3), hence :class:`ProtocolKind`.  The three measured
two-phase variants of Figure 2 are :class:`TwoPhaseVariant`.
"""

from __future__ import annotations

from enum import Enum


class Vote(str, Enum):
    """A participant's answer to prepare."""

    YES = "yes"
    NO = "no"
    READ_ONLY = "read_only"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class Outcome(str, Enum):
    """The fate of a transaction at one site."""

    COMMITTED = "committed"
    ABORTED = "aborted"
    IN_DOUBT = "in_doubt"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class ProtocolKind(str, Enum):
    """Which commitment protocol to run (a commit-transaction argument)."""

    TWO_PHASE = "two_phase"
    NON_BLOCKING = "non_blocking"
    PAXOS_COMMIT = "paxos_commit"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class TwoPhaseVariant(str, Enum):
    """The three implementations measured in Figure 2.

    - ``OPTIMIZED``: subordinate commit record *not* forced; commit-ack
      piggybacked (sent once the lazy record becomes durable).  This is
      the paper's §3.2 delayed-commit optimization.
    - ``SEMI_OPTIMIZED``: subordinate commit record forced, but the ack
      still delayed — the "dissection" case isolating the ack's cost.
    - ``UNOPTIMIZED``: subordinate commit record forced and the ack sent
      immediately as its own datagram — textbook presumed-abort 2PC.
    """

    OPTIMIZED = "optimized"
    SEMI_OPTIMIZED = "semi_optimized"
    UNOPTIMIZED = "unoptimized"

    @property
    def forces_commit_record(self) -> bool:
        return self is not TwoPhaseVariant.OPTIMIZED

    @property
    def piggybacks_ack(self) -> bool:
        return self is not TwoPhaseVariant.UNOPTIMIZED

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value
