"""The transaction manager process (TranMan).

"The transaction manager is essentially a protocol processor; most calls
from applications or servers invoke one protocol or another" (paper §3).
This module hosts the sans-IO state machines of
:mod:`repro.core.twophase`, :mod:`repro.core.nonblocking` and
:mod:`repro.core.abortproto` on the simulated substrate:

- a request port drained by a **C-Threads-style pool** (size is the
  experimental parameter of Figures 4-5); every thread waits for any
  type of input — application calls, server joins, inbound datagrams —
  processes it, and resumes waiting (paper §3.4);
- the **family descriptor hash table**, each family protected by its own
  lock so only same-family operations contend;
- an **effect executor** that maps machine effects onto the substrate:
  datagrams (with piggybacked lazy sends), log forces through the disk
  manager, local server prepare/commit/abort rounds, timers;
- the **stateless protocol edge**: presumed-abort answers for forgotten
  transactions, tombstones (change 4: never report "no state" for a
  transaction that decided), durable abort pledges, quorum helpers.
"""

from __future__ import annotations

from collections import deque
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    Generator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.config import CostModel
from repro.core.abortproto import AbortInitiator, AbortParticipant
from repro.core.effects import (
    CancelTimer,
    Complete,
    Effect,
    ForceLog,
    Forget,
    LazySendDatagram,
    LocalAbort,
    LocalCommit,
    LocalPrepare,
    MulticastDatagram,
    SendDatagram,
    StartTakeover,
    StartTimer,
    Trace,
    WriteLog,
)
from repro.core.family import FamilyTable
from repro.core.messages import (
    AbortNotice,
    CommitAck,
    CommitNotice,
    FamilyAbort,
    FamilyAbortAck,
    InquiryResponse,
    NbAbortJoin,
    NbAbortJoinAck,
    NbOutcome,
    NbOutcomeAck,
    NbPrepare,
    NbReplicate,
    NbReplicateAck,
    NbStateReport,
    NbStateRequest,
    NbVote,
    NestedCommit,
    PcOutcome,
    PcOutcomeAck,
    PcP1a,
    PcP1b,
    PcP2a,
    PcPhase2b,
    PcPrepare,
    PcVote,
    PrepareRequest,
    TxnInquiry,
    VoteResponse,
)
from repro.core.nonblocking import NbCoordinator, NbSubordinate, NbTakeover
from repro.core.paxoscommit import PcCandidate, PcLeader, PcParticipant
from repro.core.outcomes import Outcome, ProtocolKind, TwoPhaseVariant, Vote
from repro.core.quorum import QuorumSpec
from repro.core.tid import TID, TidGenerator
from repro.core.twophase import TwoPhaseCoordinator, TwoPhaseSubordinate
from repro.log.records import abort_pledge_record
from repro.mach.ipc import IpcFabric
from repro.mach.message import Message
from repro.mach.site import Site
from repro.mach.threads import CThreadsPool
from repro.net.datagram import Datagram, DatagramService
from repro.servers.diskman import DiskManager
from repro.sim.events import SimEvent, all_of
from repro.sim.kernel import Kernel, Timer
from repro.sim.process import Sleep, Wait
from repro.sim.resources import SimLock
from repro.sim.tracing import Tracer

PIGGYBACK_SWEEP_MS = 50.0


class TransactionManager:
    """One site's TranMan."""

    def __init__(self, kernel: Kernel, site: Site, fabric: IpcFabric,
                 dgram: DatagramService, diskman: DiskManager,
                 cost: CostModel, tracer: Tracer,
                 threads: int = 20, use_multicast: bool = False):
        self.kernel = kernel
        self.site = site
        self.fabric = fabric
        self.dgram = dgram
        self.diskman = diskman
        self.cost = cost
        self.tracer = tracer
        self.use_multicast = use_multicast

        self.families = FamilyTable()
        self.family_locks: Dict[str, SimLock] = {}
        self.tid_gen = TidGenerator(site.name)
        self.machines: Dict[TID, Any] = {}
        # Termination-protocol machines: NbTakeover or PcCandidate.
        self.takeovers: Dict[TID, Any] = {}
        self.tombstones: Dict[str, Outcome] = {}
        self.pledges: Set[str] = set()
        # TIDs this site answered READ_ONLY for: a retried prepare must
        # re-vote read-only, not NO (the machine is long forgotten).
        self.read_only_votes: Set[str] = set()
        # Completed-transaction bookkeeping (tombstones, pledges,
        # read-only votes) answers late inquiries, so entries must
        # outlive the protocol's retry horizon — but not the run: kept
        # forever, a million-transaction run leaks one entry per
        # transaction.  The retire log expires them once no straggler
        # can still ask (orphan timeout + protocol timeout is ~15x the
        # datagram retry window).
        self.tombstone_retention_ms = (cost.orphan_timeout
                                       + cost.protocol_timeout)
        self._retire_log: Deque[Tuple[float, str]] = deque()
        self._pending_calls: Dict[TID, Message] = {}
        self._timers: Dict[tuple, Timer] = {}
        self._lazy: Dict[str, List[Any]] = {}
        self._abort_participant = AbortParticipant(site.name)
        # Local data servers by name; filled in by system assembly.
        self.servers: Dict[str, Any] = {}

        self.stats = {
            "begun": 0, "committed": 0, "aborted": 0,
            "nested_begun": 0, "nested_committed": 0, "nested_aborted": 0,
        }

        self.port = site.create_port("tranman")
        self.pool = CThreadsPool(
            kernel, self.port, self._handle, size=threads,
            name=f"{site.name}/tranman",
            spawn=lambda body, name: site.spawn(body, name))
        self._pump = site.spawn(self._datagram_pump(), "tranman.dgram_pump")
        self._sweeper = site.spawn(self._piggyback_sweep(), "tranman.piggyback")
        self._orphan_reaper = site.spawn(self._orphan_sweep(),
                                         "tranman.orphans")
        site.on_crash.append(self._on_site_crash)

    # ------------------------------------------------------------ wiring

    def register_server(self, server: Any) -> None:
        self.servers[server.name] = server  # lint: bounded(bounded by the site's server count)

    def _family_lock(self, family: str) -> SimLock:
        lock = self.family_locks.get(family)
        if lock is None:
            lock = SimLock(self.kernel, name=f"{self.site.name}.fam.{family}")
            self.family_locks[family] = lock
        return lock

    def _datagram_pump(self) -> Generator[Any, Any, None]:
        """Move inbound datagrams onto the request port, so the one
        thread pool serves 'any type of input' as the paper describes."""
        while True:
            dgram = yield from self.dgram.inbox.get()
            self.port.enqueue(Message(kind="_datagram",
                                      body={"payload": dgram}))

    def _piggyback_sweep(self) -> Generator[Any, Any, None]:
        """Flush lazily queued (piggybacked) messages periodically."""
        while True:
            yield Sleep(PIGGYBACK_SWEEP_MS)
            for dst in list(self._lazy):
                self._flush_lazy(dst)

    def _orphan_sweep(self) -> Generator[Any, Any, None]:
        """Abort transactions whose coordinator evidently died.

        A family with no live protocol machine and no TranMan activity
        for ``orphan_timeout`` will never commit: its coordinator never
        started commitment (had it, a machine or tombstone would exist
        here).  Aborting locally is always safe before a YES vote —
        presumed abort lets a participant abort unilaterally at any time
        until it has voted.  Without this sweep, a coordinator crash
        before prepare strands its locks at every participant forever.
        """
        interval = max(self.cost.orphan_timeout / 4.0, 500.0)
        while True:
            yield Sleep(interval)
            now = self.kernel.now
            for family_name in self.families.active_families():
                fam = self.families.family(family_name)
                if fam is None or fam.empty:
                    continue
                if any(tid.family == family_name
                       for tid in self.machines):
                    continue
                if any(tid.family == family_name
                       for tid in self.takeovers):
                    continue
                last = max(d.last_activity for d in fam.transactions.values())
                if now - last < self.cost.orphan_timeout:
                    continue
                top = TID(family_name)
                self.tracer.record(now, "tranman.orphan_abort",
                                   site=self.site.name, tid=family_name)
                self.tombstones[family_name] = Outcome.ABORTED
                self.note_retirable(family_name)
                self._local_abort(top)
                self.families.forget_family(family_name)
                self.family_locks.pop(family_name, None)
                self.tid_gen.forget_family(family_name)

    def _touch(self, tid: TID) -> None:
        desc = self.families.descriptor(tid)
        if desc is not None:
            desc.last_activity = self.kernel.now

    def _flush_lazy(self, dst: str) -> None:
        queued = self._lazy.pop(dst, None)
        if not queued:
            return
        for message in queued:
            self.tracer.record(self.kernel.now, "tranman.piggyback",
                               site=self.site.name, dst=dst)
            self.dgram.send(dst, message)

    # --------------------------------------------------------- dispatch

    def _handle(self, msg: Message) -> Generator[Any, Any, None]:
        obs = self.tracer.obs
        if obs is not None and obs.keep:
            obs.gauge(self.kernel.now, f"cpu.queue_depth.{self.site.name}",
                      self.site.cpu.queue_depth)
            sid = obs.begin_cpu(self.kernel.now, "tranman", self.site.name,
                                msg)
            yield from self.site.consume_cpu(self.cost.tranman_service_cpu)
            obs.end(sid, self.kernel.now)
        else:
            if obs is not None:
                obs.count_cpu()
            yield from self.site.consume_cpu(self.cost.tranman_service_cpu)
        kind = msg.kind
        if kind == "_datagram":
            yield from self._on_datagram(msg.body["payload"])
        elif kind == "begin_transaction":
            yield from self._begin(msg)
        elif kind == "join":
            yield from self._join(msg)
        elif kind == "commit_transaction":
            yield from self._commit(msg)
        elif kind == "abort_transaction":
            yield from self._abort(msg)
        elif kind == "note_sites":
            self._note_sites_msg(msg)
        else:
            raise ValueError(f"tranman: unknown message kind {kind!r}")

    # ----------------------------------------------- application calls

    def _begin(self, msg: Message) -> Generator[Any, Any, None]:
        parent_raw = msg.body.get("parent")
        if parent_raw is None:
            tid = self.tid_gen.new_top_level()
            self.stats["begun"] += 1
        else:
            parent = TID.parse(parent_raw)
            parent_desc = self.families.descriptor(parent)
            if parent_desc is None or not parent_desc.active:
                self.fabric.reply(msg, msg.reply("begin_failed",
                                                 reason="unknown parent"))
                return
            tid = self.tid_gen.new_child(parent)
            self.stats["nested_begun"] += 1
        lock = self._family_lock(tid.family)
        yield from lock.acquire()
        try:
            desc = self.families.begin(tid)
            desc.last_activity = self.kernel.now
            raw_protocol = msg.body.get("protocol",
                                        ProtocolKind.TWO_PHASE.value)
            desc.protocol = ProtocolKind(raw_protocol)
        finally:
            lock.release()
        self.tracer.record(self.kernel.now, "tranman.begin",
                           site=self.site.name, tid=str(tid))
        self.fabric.reply(msg, msg.reply("begin_ok", tid=str(tid)),
                          flavour="immediate")

    def _join(self, msg: Message) -> Generator[Any, Any, None]:
        tid = TID.parse(msg.body["tid"])
        server = msg.body["server"]
        lock = self._family_lock(tid.family)
        yield from lock.acquire()
        try:
            desc = self.families.descriptor(tid)
            if desc is None:
                # A remote transaction doing its first operation here:
                # the descriptor materialises on join.
                desc = self.families.begin(tid)
            desc.note_server_joined(server)
            desc.last_activity = self.kernel.now
        finally:
            lock.release()
        self.tracer.record(self.kernel.now, "tranman.join",
                           site=self.site.name, tid=str(tid), server=server)
        if msg.reply_to is not None:
            self.fabric.reply(msg, msg.reply("join_ok"))

    def note_remote_site(self, tid: TID, remote: str) -> None:
        """ComMan spying, request direction."""
        desc = self.families.descriptor(tid)
        if desc is None:
            desc = self.families.begin(tid)
        desc.note_sites([remote])
        desc.last_activity = self.kernel.now

    def note_remote_sites(self, tid: TID, remotes: Sequence[str]) -> None:
        """ComMan spying, response direction (merged site lists)."""
        desc = self.families.descriptor(tid)
        if desc is None:
            desc = self.families.begin(tid)
        desc.note_sites(list(remotes))
        desc.last_activity = self.kernel.now

    def known_sites(self, tid: TID) -> Set[str]:
        fam = self.families.family_of(tid)
        if fam is None:
            return set()
        return fam.all_sites()

    def _note_sites_msg(self, msg: Message) -> None:
        self.note_remote_sites(TID.parse(msg.body["tid"]),
                               msg.body["sites"])

    # ------------------------------------------------------- commitment

    def _commit(self, msg: Message) -> Generator[Any, Any, None]:
        tid = TID.parse(msg.body["tid"])
        desc = self.families.descriptor(tid)
        if desc is None or not desc.active:
            self.fabric.reply(msg, msg.reply("commit_failed",
                                             reason="unknown transaction"))
            return
        if not tid.is_top_level:
            self._commit_nested(tid, msg)
            return
        protocol = ProtocolKind(msg.body.get("protocol", desc.protocol.value))
        variant = TwoPhaseVariant(msg.body.get(
            "variant", TwoPhaseVariant.OPTIMIZED.value))
        fam = self.families.family_of(tid)
        subordinates = sorted(s for s in fam.all_sites()
                              if s != self.site.name)
        self._pending_calls[tid] = msg
        if protocol is ProtocolKind.NON_BLOCKING:
            policy = msg.body.get("quorum_policy", "majority")
            n_sites = len(subordinates) + 1
            if policy == "commit_weighted":
                quorum = QuorumSpec.commit_weighted(n_sites)
            elif policy == "majority":
                quorum = QuorumSpec.majority(n_sites)
            else:
                raise ValueError(f"unknown quorum policy {policy!r}")
            machine: Any = NbCoordinator(
                tid, self.site.name, subordinates, quorum=quorum,
                use_multicast=self.use_multicast,
                vote_timeout_ms=self.cost.protocol_timeout,
                repl_timeout_ms=self.cost.protocol_timeout,
                notify_timeout_ms=self.cost.protocol_timeout,
                # A takeover may have extracted our abort pledge while
                # the family sat idle here; the coordinator must then
                # refuse to drive a commit (see on_local_prepared).
                already_pledged=str(tid) in self.pledges)
        elif protocol is ProtocolKind.PAXOS_COMMIT:
            # Acceptors are the leader-first odd prefix of the site list
            # (N = 2F+1): two sites degenerate to F=0 (leader is the
            # sole acceptor, 2PC's exact cost profile), three sites give
            # F=1, and so on.
            all_sites = [self.site.name] + subordinates
            n_acceptors = (len(all_sites) if len(all_sites) % 2
                           else len(all_sites) - 1)
            machine = PcLeader(
                tid, self.site.name, subordinates,
                acceptors=all_sites[:n_acceptors],
                quorum=QuorumSpec.paxos(n_acceptors),
                vote_timeout_ms=self.cost.protocol_timeout,
                notify_timeout_ms=self.cost.protocol_timeout)
        else:
            machine = TwoPhaseCoordinator(
                tid, self.site.name, subordinates, variant=variant,
                use_multicast=self.use_multicast,
                vote_timeout_ms=self.cost.protocol_timeout,
                ack_timeout_ms=self.cost.protocol_timeout)
        self.machines[tid] = machine
        self.tracer.record(self.kernel.now, "tranman.commit_call",
                           site=self.site.name, tid=str(tid),
                           protocol=protocol.value, subs=len(subordinates))
        yield from self._execute(machine, machine.start())

    def _commit_nested(self, tid: TID, msg: Message) -> None:
        """Moss subtransaction commit: volatile, relative to the parent."""
        desc = self.families.descriptor(tid)
        desc.outcome = Outcome.COMMITTED
        self.stats["nested_committed"] += 1
        fam = self.families.family_of(tid)
        # Local lock inheritance at every server the family touched.
        for server_name in sorted(fam.all_servers()):
            server = self.servers.get(server_name)
            if server is None:
                continue
            inherit = Message(kind="commit_child", body={"tid": str(tid)})
            self.fabric.send(server.port, inherit, flavour="oneway",
                             sender_site=self.site.name)
        # Remote inheritance: one (lazy) datagram per involved site.
        for remote in sorted(desc.sites_used):
            self._queue_lazy(remote, NestedCommit(tid=tid, sender=self.site.name))
        self.fabric.reply(msg, msg.reply("commit_ok",
                                         outcome=Outcome.COMMITTED.value))

    def _abort(self, msg: Message) -> Generator[Any, Any, None]:
        tid = TID.parse(msg.body["tid"])
        desc = self.families.descriptor(tid)
        if desc is None or not desc.active:
            self.fabric.reply(msg, msg.reply("abort_failed",
                                             reason="unknown transaction"))
            return
        machine = self.machines.get(tid)
        if machine is not None and hasattr(machine, "abort_now"):
            if getattr(machine, "outcome", None) is not None:
                # Commitment already decided: the abort loses the race.
                self.fabric.reply(msg, msg.reply(
                    "abort_failed", reason="already decided"))
                return
            from repro.core.nonblocking import NbProtocolViolation

            try:
                effects = machine.abort_now()
            except NbProtocolViolation:
                # Non-blocking commit past the replication phase: only
                # the quorum machinery may exclude commit now.
                self.fabric.reply(msg, msg.reply(
                    "abort_failed", reason="replication phase begun"))
                return
            self._pending_calls.setdefault(tid, msg)
            yield from self._execute(machine, effects)
            return
        if not tid.is_top_level:
            self.stats["nested_aborted"] += 1
            desc.outcome = Outcome.ABORTED
        fam = self.families.family_of(tid)
        known = sorted(fam.all_sites() - {self.site.name}) if fam else []
        initiator = AbortInitiator(tid, self.site.name, known,
                                   ack_timeout_ms=self.cost.protocol_timeout)
        self.machines[tid] = initiator
        self._pending_calls[tid] = msg
        yield from self._execute(initiator, initiator.start())

    # ----------------------------------------------- datagram dispatch

    def _on_datagram(self, dgram: Datagram) -> Generator[Any, Any, None]:
        pmsg = dgram.payload
        tid: TID = pmsg.tid
        self.tracer.record(self.kernel.now, "tranman.dgram_in",
                           site=self.site.name, kind_of=type(pmsg).__name__)
        # Takeover-coordinated message types go to the takeover first.
        takeover = self.takeovers.get(tid)
        if takeover is not None and isinstance(
                pmsg, (NbStateReport, NbReplicateAck, NbAbortJoinAck,
                       NbOutcomeAck, PcP1b, PcOutcomeAck)):
            yield from self._execute(takeover, takeover.on_message(pmsg))
            return
        machine = self.machines.get(tid)
        if isinstance(pmsg, PcPhase2b) and pmsg.ballot != 0 \
                and takeover is not None:
            # Election-ballot 2bs belong to the candidate; ballot-0 2bs
            # are the leader machine's prepare-round tally.
            yield from self._execute(takeover, takeover.on_message(pmsg))
            return
        if isinstance(pmsg, (NbOutcome, PcOutcome)):
            # Outcomes concern everyone at this site: participant machine,
            # takeover, or neither (tombstone ack).
            handled = False
            if machine is not None:
                yield from self._execute(machine, machine.on_message(pmsg))
                handled = True
            if takeover is not None:
                yield from self._execute(takeover, takeover.on_message(pmsg))
                handled = True
            if not handled:
                yield from self._stateless(pmsg)
            return
        if machine is not None:
            yield from self._execute(machine, machine.on_message(pmsg))
            return
        yield from self._stateless(pmsg)

    def _stateless(self, pmsg: Any) -> Generator[Any, Any, None]:
        """Protocol edge for transactions with no live machine here."""
        tid: TID = pmsg.tid
        tomb = self.tombstones.get(str(tid))
        if isinstance(pmsg, PrepareRequest):
            yield from self._stateless_prepare_2pc(pmsg, tomb)
        elif isinstance(pmsg, NbPrepare):
            yield from self._stateless_prepare_nb(pmsg, tomb)
        elif isinstance(pmsg, CommitNotice):
            if tomb is Outcome.COMMITTED:
                self.dgram.send(pmsg.sender,
                                CommitAck(tid=tid, sender=self.site.name))
        elif isinstance(pmsg, AbortNotice):
            pass  # nothing known, nothing to do (presumed abort)
        elif isinstance(pmsg, TxnInquiry):
            outcome = tomb if tomb is not None else Outcome.ABORTED
            live = self.families.descriptor(tid)
            if tomb is None and live is not None and live.active:
                return  # still running; the inquirer should not exist yet
            self.dgram.send(pmsg.sender,
                            InquiryResponse(tid=tid, sender=self.site.name,
                                            outcome=outcome))
        elif isinstance(pmsg, NbReplicate):
            yield from self._stateless_replicate(pmsg, tomb)
        elif isinstance(pmsg, NbAbortJoin):
            yield from self._stateless_abort_join(pmsg, tomb)
        elif isinstance(pmsg, NbStateRequest):
            self._stateless_state_request(pmsg, tomb)
        elif isinstance(pmsg, NbOutcome):
            if tomb is not None and tomb is not (
                    Outcome.COMMITTED if pmsg.outcome is Outcome.COMMITTED
                    else Outcome.ABORTED):
                raise AssertionError(
                    f"{tid}: outcome {pmsg.outcome} conflicts with tombstone "
                    f"{tomb} at {self.site.name}")
            self.dgram.send(pmsg.sender,
                            NbOutcomeAck(tid=tid, sender=self.site.name))
        elif isinstance(pmsg, PcPrepare):
            yield from self._stateless_prepare_pc(pmsg, tomb)
        elif isinstance(pmsg, (PcVote, PcP1a, PcP2a)):
            yield from self._stateless_pc_acceptor(pmsg, tomb)
        elif isinstance(pmsg, PcOutcome):
            if tomb is not None and tomb is not pmsg.outcome:
                raise AssertionError(
                    f"{tid}: outcome {pmsg.outcome} conflicts with "
                    f"tombstone {tomb} at {self.site.name}")
            self.dgram.send(pmsg.sender,
                            PcOutcomeAck(tid=tid, sender=self.site.name))
        elif isinstance(pmsg, NestedCommit):
            self._on_nested_commit(pmsg)
        elif isinstance(pmsg, FamilyAbort):
            yield from self._on_family_abort(pmsg)
        elif isinstance(pmsg, (VoteResponse, NbVote, CommitAck,
                               NbReplicateAck, NbAbortJoinAck, NbOutcomeAck,
                               NbStateReport, FamilyAbortAck,
                               InquiryResponse, PcPhase2b, PcP1b,
                               PcOutcomeAck)):
            pass  # stale response to a machine that already finished
        else:
            raise ValueError(f"unhandled datagram payload {pmsg!r}")

    def _stateless_prepare_2pc(self, pmsg: PrepareRequest,
                               tomb: Optional[Outcome]
                               ) -> Generator[Any, Any, None]:
        tid = pmsg.tid
        if tomb is Outcome.COMMITTED:
            # We finished and the coordinator retried: it wants the ack.
            self.dgram.send(pmsg.sender,
                            CommitAck(tid=tid, sender=self.site.name))
            return
        if str(tid) in self.read_only_votes:
            self.dgram.send(pmsg.sender,
                            VoteResponse(tid=tid, sender=self.site.name,
                                         vote=Vote.READ_ONLY))
            return
        if tomb is Outcome.ABORTED or self.families.family_of(tid) is None:
            # Presumed abort: no family state means any pre-crash work is
            # gone; we must refuse, never claim read-only.  (The family,
            # not the top-level descriptor: a remote site often knows the
            # transaction only through nested children that ran here.)
            self.dgram.send(pmsg.sender,
                            VoteResponse(tid=tid, sender=self.site.name,
                                         vote=Vote.NO))
            return
        sub = TwoPhaseSubordinate(tid, self.site.name, pmsg.sender,
                                  variant=pmsg.variant,
                                  outcome_timeout_ms=self.cost.protocol_timeout)
        self.machines[tid] = sub
        yield from self._execute(sub, sub.start())

    def _stateless_prepare_nb(self, pmsg: NbPrepare, tomb: Optional[Outcome]
                              ) -> Generator[Any, Any, None]:
        tid = pmsg.tid
        if tomb is Outcome.COMMITTED:
            self.dgram.send(pmsg.sender,
                            NbOutcomeAck(tid=tid, sender=self.site.name))
            return
        if str(tid) in self.read_only_votes:
            self.dgram.send(pmsg.sender,
                            NbVote(tid=tid, sender=self.site.name,
                                   vote=Vote.READ_ONLY))
            return
        pledged = str(tid) in self.pledges
        if (tomb is Outcome.ABORTED
                or (self.families.family_of(tid) is None and not pledged)):
            self.dgram.send(pmsg.sender,
                            NbVote(tid=tid, sender=self.site.name,
                                   vote=Vote.NO))
            return
        sub = NbSubordinate(tid, self.site.name, pmsg.sender,
                            list(pmsg.sites), pmsg.quorum,
                            outcome_timeout_ms=self.cost.protocol_timeout,
                            already_pledged=pledged)
        self.machines[tid] = sub
        yield from self._execute(sub, sub.start())

    def _stateless_replicate(self, pmsg: NbReplicate, tomb: Optional[Outcome]
                             ) -> Generator[Any, Any, None]:
        tid = pmsg.tid
        if str(tid) in self.pledges or tomb is Outcome.ABORTED:
            self.dgram.send(pmsg.sender,
                            NbReplicateAck(tid=tid, sender=self.site.name,
                                           ok=False))
            return
        if tomb is Outcome.COMMITTED:
            self.dgram.send(pmsg.sender,
                            NbReplicateAck(tid=tid, sender=self.site.name,
                                           ok=True))
            return
        # Quorum helper: a read-only (or forgotten) site drafted into the
        # commit quorum; the replicate message is self-contained.
        helper = NbSubordinate.helper(tid, self.site.name, pmsg,
                                      outcome_timeout_ms=self.cost.protocol_timeout)
        self.machines[tid] = helper
        yield from self._execute(helper, helper.on_message(pmsg))

    def _stateless_abort_join(self, pmsg: NbAbortJoin, tomb: Optional[Outcome]
                              ) -> Generator[Any, Any, None]:
        tid = pmsg.tid
        if tomb is Outcome.COMMITTED:
            self.dgram.send(pmsg.sender,
                            NbAbortJoinAck(tid=tid, sender=self.site.name,
                                           ok=False))
            return
        if str(tid) in self.pledges or tomb is Outcome.ABORTED:
            self.dgram.send(pmsg.sender,
                            NbAbortJoinAck(tid=tid, sender=self.site.name,
                                           ok=True))
            return
        # Durable pledge: force it, then acknowledge.
        record = self.diskman.append(
            abort_pledge_record(str(tid), self.site.name))
        obs = self.tracer.obs
        if obs is not None:
            sid = obs.begin(self.kernel.now, "log.force",
                            site=self.site.name, tid=str(tid),
                            record_kind="abort_pledge")
            yield from self.diskman.force(record.lsn)
            obs.end(sid, self.kernel.now)
        else:
            yield from self.diskman.force(record.lsn)
        self.pledges.add(str(tid))
        self.note_retirable(str(tid))
        self.tracer.record(self.kernel.now, "nb.stateless_pledge",
                           site=self.site.name, tid=str(tid))
        self.dgram.send(pmsg.sender,
                        NbAbortJoinAck(tid=tid, sender=self.site.name,
                                       ok=True))

    def _stateless_state_request(self, pmsg: NbStateRequest,
                                 tomb: Optional[Outcome]) -> None:
        tid = pmsg.tid
        if tomb is Outcome.COMMITTED:
            status = "committed"
        elif tomb is Outcome.ABORTED:
            status = "aborted"
        elif str(tid) in self.pledges:
            status = "abort_pledged"
        else:
            status = "no_state"
        self.dgram.send(pmsg.sender,
                        NbStateReport(tid=tid, sender=self.site.name,
                                      status=status, round=pmsg.round))

    def _stateless_prepare_pc(self, pmsg: PcPrepare, tomb: Optional[Outcome]
                              ) -> Generator[Any, Any, None]:
        tid = pmsg.tid
        if tomb is Outcome.COMMITTED:
            # Already resolved here; the leader only wants the ack.
            self.dgram.send(pmsg.sender,
                            PcOutcomeAck(tid=tid, sender=self.site.name))
            return
        if str(tid) in self.read_only_votes:
            # Re-vote read-only to the same targets the live machine
            # would use: every acceptor (the instance still needs an
            # acceptor quorum) plus the leader.
            targets = [a for a in pmsg.acceptors if a != self.site.name]
            if pmsg.sender not in targets:
                targets.append(pmsg.sender)
            for dst in targets:
                self.dgram.send(dst, PcVote(
                    tid=tid, sender=self.site.name, vote=Vote.READ_ONLY,
                    leader=pmsg.sender, sites=pmsg.sites,
                    acceptors=pmsg.acceptors))
            return
        if tomb is Outcome.ABORTED:
            # Already decided abort here: tell the leader outright.
            self.dgram.send(pmsg.sender,
                            PcOutcome(tid=tid, sender=self.site.name,
                                      outcome=Outcome.ABORTED))
            return
        if self.families.family_of(tid) is None:
            # No state: we may have voted READ_ONLY (volatile) before a
            # crash, and an RM must never propose two different ballot-0
            # values — a NO here could diverge from an instance that
            # already chose read-only.  Stay silent; the leader's
            # timeout (F=0) or an election (F>=1) resolves the
            # un-proposed instance to abort safely.
            return
        sub = PcParticipant(tid, self.site.name, pmsg.sender,
                            list(pmsg.sites), list(pmsg.acceptors),
                            QuorumSpec.paxos(len(pmsg.acceptors)),
                            protocol_timeout_ms=self.cost.protocol_timeout)
        self.machines[tid] = sub
        yield from self._execute(sub, sub.start())

    def _stateless_pc_acceptor(self, pmsg: Any, tomb: Optional[Outcome]
                               ) -> Generator[Any, Any, None]:
        """A Paxos message reached an acceptor site with no machine: a
        crash-restarted (or long-forgotten read-only) acceptor.  Rebuild
        an acceptor-only participant from the message's configuration —
        every Pc message carries it — and deliver."""
        tid = pmsg.tid
        if tomb is not None:
            # The outcome is known here: short-circuit the election.
            self.dgram.send(pmsg.sender,
                            PcOutcome(tid=tid, sender=self.site.name,
                                      outcome=tomb))
            return
        if self.site.name not in pmsg.acceptors:
            return  # stale / misrouted: we owe no acceptor duties
        if self.families.family_of(pmsg.tid) is not None:
            # Live family state means this site never crashed — the
            # acceptor traffic merely overtook the leader's PcPrepare on
            # the wire.  Spawn the full participant (it prepares and
            # votes like the PcPrepare path would) and let it answer
            # the acceptor duty that arrived early.
            sub = PcParticipant(tid, self.site.name,
                                pmsg.leader or pmsg.sender,
                                list(pmsg.sites), list(pmsg.acceptors),
                                QuorumSpec.paxos(len(pmsg.acceptors)),
                                protocol_timeout_ms=self.cost.protocol_timeout)
            self.machines[tid] = sub
            yield from self._execute(sub, sub.start())
            yield from self._execute(sub, sub.on_message(pmsg))
            return
        sub = PcParticipant.recovered(
            tid, self.site.name, leader=pmsg.leader or pmsg.sender,
            sites=list(pmsg.sites), acceptors=list(pmsg.acceptors),
            prepared=False,
            protocol_timeout_ms=self.cost.protocol_timeout)
        self.machines[tid] = sub
        self.tracer.record(self.kernel.now, "pc.acceptor_rebuilt",
                           site=self.site.name, tid=str(tid),
                           kind_of=type(pmsg).__name__)
        yield from self._execute(sub, sub.on_message(pmsg))

    def _on_nested_commit(self, pmsg: NestedCommit) -> None:
        tid = pmsg.tid
        fam = self.families.family_of(tid)
        if fam is None:
            return
        for server_name in sorted(fam.all_servers()):
            server = self.servers.get(server_name)
            if server is None:
                continue
            inherit = Message(kind="commit_child", body={"tid": str(tid)})
            self.fabric.send(server.port, inherit, flavour="oneway",
                             sender_site=self.site.name)

    def _on_family_abort(self, pmsg: FamilyAbort) -> Generator[Any, Any, None]:
        known = sorted(self.known_sites(pmsg.tid) - {self.site.name})
        effects = self._abort_participant.on_abort(pmsg, known)
        yield from self._execute(None, effects)
        desc = self.families.descriptor(pmsg.tid)
        if desc is not None:
            desc.outcome = Outcome.ABORTED

    # ----------------------------------------------- effect execution

    def _execute(self, machine: Optional[Any],
                 effects: Sequence[Effect]) -> Generator[Any, Any, None]:
        """Run an effect batch; continuations recurse through here."""
        for effect in effects:
            if isinstance(effect, SendDatagram):
                self._flush_lazy(effect.dst)  # piggyback opportunity
                self.tracer.record(self.kernel.now, "tranman.datagram",
                                   site=self.site.name, dst=effect.dst,
                                   kind_of=type(effect.message).__name__)
                self.dgram.send(effect.dst, effect.message)
            elif isinstance(effect, MulticastDatagram):
                self.tracer.record(self.kernel.now, "tranman.multicast",
                                   site=self.site.name,
                                   fanout=len(effect.dsts),
                                   kind_of=type(effect.message).__name__)
                self.dgram.multicast(list(effect.dsts), effect.message)
            elif isinstance(effect, LazySendDatagram):
                self._queue_lazy(effect.dst, effect.message)
            elif isinstance(effect, ForceLog):
                record = self.diskman.append(effect.record)
                self._note_membership(effect.record)
                obs = self.tracer.obs
                if obs is not None:
                    sid = obs.begin(self.kernel.now, "log.force",
                                    site=self.site.name,
                                    tid=effect.record.tid or None,
                                    record_kind=effect.record.kind.value)
                    yield from self.diskman.force(record.lsn)
                    obs.end(sid, self.kernel.now)
                else:
                    yield from self.diskman.force(record.lsn)
                yield from self._continue(machine, "on_log_forced",
                                          effect.token)
            elif isinstance(effect, WriteLog):
                record = self.diskman.append(effect.record)
                self._note_membership(effect.record)
                if effect.token is not None:
                    self.diskman.watch_durable(
                        record.lsn,
                        self._spawn_continuation(machine, "on_log_durable",
                                                 effect.token))
            elif isinstance(effect, LocalPrepare):
                yield from self._local_prepare(machine, effect)
            elif isinstance(effect, LocalCommit):
                self._local_commit(effect.tid)
            elif isinstance(effect, LocalAbort):
                self._local_abort(effect.tid)
            elif isinstance(effect, Complete):
                self._complete(effect)
            elif isinstance(effect, Forget):
                self._forget(machine, effect.tid)
            elif isinstance(effect, StartTimer):
                self._start_timer(machine, effect)
            elif isinstance(effect, CancelTimer):
                self._cancel_timer(machine, effect.token)
            elif isinstance(effect, StartTakeover):
                yield from self._start_takeover(effect.tid)
            elif isinstance(effect, Trace):
                detail = {k: v for k, v in effect.detail.items()
                          if k != "site"}
                self.tracer.record(self.kernel.now, effect.kind,
                                   site=self.site.name, **detail)
            else:
                raise ValueError(f"unknown effect {effect!r}")

    def _continue(self, machine: Optional[Any], method: str,
                  *args: Any) -> Generator[Any, Any, None]:
        if machine is None:
            return
        more = getattr(machine, method)(*args)
        if more:
            yield from self._execute(machine, more)

    def _spawn_continuation(self, machine: Optional[Any], method: str,
                            *args: Any) -> Callable[[], None]:
        def fire() -> None:
            if machine is None:
                return
            more = getattr(machine, method)(*args)
            if more:
                self.site.spawn(self._execute(machine, more),
                                f"tranman.cont.{method}")
        return fire

    def _note_membership(self, record: Any) -> None:
        """Track quorum membership facts as their records are written."""
        from repro.log.records import RecordKind

        if record.kind is RecordKind.ABORT_PLEDGE:
            self.pledges.add(record.tid)
            self.note_retirable(record.tid)
            tid = TID.parse(record.tid)
            sub = self.machines.get(tid)
            if isinstance(sub, NbSubordinate):
                # A takeover's self-pledge must also bind the co-resident
                # participant machine, or it could later accept a
                # replicate and put this site in both quorums.
                self.kernel.post_soon(sub.note_local_pledge)
        elif record.kind is RecordKind.REPLICATION:
            tid = TID.parse(record.tid)
            sub = self.machines.get(tid)
            if isinstance(sub, NbSubordinate):
                # Keep a concurrently-running participant machine's view
                # of our membership coherent with the takeover's action.
                self.kernel.post_soon(sub.note_local_replication)

    # ------------------------------------------------- local participant

    def _local_prepare(self, machine: Any, effect: LocalPrepare
                       ) -> Generator[Any, Any, None]:
        tid = effect.tid
        fam = self.families.family_of(tid)
        servers = sorted(fam.all_servers()) if fam is not None else []
        votes: List[Vote] = []
        if not servers:
            combined = Vote.READ_ONLY
        else:
            events = []
            for name in servers:
                server = self.servers.get(name)
                if server is None:
                    votes.append(Vote.NO)
                    continue
                done = SimEvent(self.kernel, name=f"prep.{name}")
                events.append(done)
                self.site.spawn(self._ask_server_vote(server, tid, done),
                                f"tranman.prep.{name}")
            if events:
                results = yield from _wait_all(self.kernel, events)
                votes.extend(results)
            combined = _combine_votes(votes)
        if combined is Vote.READ_ONLY:
            self.read_only_votes.add(str(tid))
            self.note_retirable(str(tid))
        self.tracer.record(self.kernel.now, "tranman.local_prepared",
                           site=self.site.name, tid=str(tid),
                           vote=combined.value)
        yield from self._continue(machine, "on_local_prepared", combined)

    def _ask_server_vote(self, server: Any, tid: TID,
                         done: SimEvent) -> Generator[Any, Any, None]:
        msg = Message(kind="prepare", body={"tid": str(tid)})
        try:
            reply = yield from self.fabric.call(server.port, msg,
                                                sender_site=self.site.name)
        except Exception:
            done.trigger(Vote.NO)
            return
        done.trigger(Vote(reply.body["vote"]))

    def _local_commit(self, tid: TID) -> None:
        """Event 11: tell joined servers to drop the family's locks."""
        fam = self.families.family_of(tid)
        if fam is None:
            return
        for name in sorted(fam.all_servers()):
            server = self.servers.get(name)
            if server is None:
                continue
            msg = Message(kind="drop_locks", body={"tid": str(tid)})
            self.fabric.send(server.port, msg, flavour="oneway",
                             sender_site=self.site.name)

    def _local_abort(self, tid: TID) -> None:
        fam = self.families.family_of(tid)
        if fam is None:
            return
        for name in sorted(fam.all_servers()):
            server = self.servers.get(name)
            if server is None:
                continue
            msg = Message(kind="abort", body={"tid": str(tid)})
            self.fabric.send(server.port, msg, flavour="oneway",
                             sender_site=self.site.name)

    # ------------------------------------------------------ completions

    def note_retirable(self, tid_str: str) -> None:
        """Schedule completed-transaction bookkeeping for expiry.

        Called whenever a tombstone, abort pledge, or read-only vote is
        recorded; prunes entries past the retention horizon as it goes
        (amortized O(1) per completion), so these maps stay bounded by
        the retention window's transaction count, not the run's.
        """
        log = self._retire_log
        log.append((self.kernel.now, tid_str))
        horizon = self.kernel.now - self.tombstone_retention_ms
        while log and log[0][0] < horizon:
            __, old = log.popleft()
            self.tombstones.pop(old, None)
            self.pledges.discard(old)
            self.read_only_votes.discard(old)

    def _complete(self, effect: Complete) -> None:
        tid = effect.tid
        self.tombstones[str(tid)] = effect.outcome
        self.note_retirable(str(tid))
        if tid.is_top_level:
            if effect.outcome is Outcome.COMMITTED:
                self.stats["committed"] += 1
            else:
                self.stats["aborted"] += 1
        call = self._pending_calls.pop(tid, None)
        self.tracer.record(self.kernel.now, "tranman.complete",
                           site=self.site.name, tid=str(tid),
                           outcome=effect.outcome.value)
        obs = self.tracer.obs
        if obs is not None:
            obs.instant(self.kernel.now, "tranman.complete",
                        site=self.site.name, tid=tid,
                        outcome=effect.outcome.value)
        if call is not None:
            self.fabric.reply(call, call.reply(
                "commit_ok" if effect.outcome is Outcome.COMMITTED
                else "commit_aborted",
                outcome=effect.outcome.value))

    def _forget(self, machine: Optional[Any], tid: TID) -> None:
        outcome = getattr(machine, "outcome", None)
        if outcome is not None:
            self.tombstones[str(tid)] = outcome
            self.note_retirable(str(tid))
        current = self.machines.get(tid)
        if current is machine:
            del self.machines[tid]
        if self.takeovers.get(tid) is machine:
            del self.takeovers[tid]
        for key in [k for k in self._timers if k[0] is machine]:
            self._timers.pop(key).cancel()
        # Family state goes when the top-level transaction resolves (and
        # no takeover for it is still notifying peers).
        if tid.is_top_level and tid not in self.takeovers:
            self.families.forget_family(tid.family)
            self.family_locks.pop(tid.family, None)
            self.tid_gen.forget_family(tid.family)

    # ------------------------------------------------------------ timers

    def _start_timer(self, machine: Optional[Any], effect: StartTimer) -> None:
        key = (machine, effect.token)
        existing = self._timers.pop(key, None)
        if existing is not None:
            existing.cancel()
        self._timers[key] = self.kernel.schedule(
            effect.delay_ms, self._fire_timer, machine, effect.token)

    def _cancel_timer(self, machine: Optional[Any], token: str) -> None:
        timer = self._timers.pop((machine, token), None)
        if timer is not None:
            timer.cancel()

    def _on_site_crash(self) -> None:
        """Volatile state dies with the site: timers, queues, machines."""
        for timer in self._timers.values():
            timer.cancel()
        self._timers.clear()
        self._lazy.clear()
        self.machines.clear()
        self.takeovers.clear()
        self._pending_calls.clear()

    def _fire_timer(self, machine: Optional[Any], token: str) -> None:
        self._timers.pop((machine, token), None)
        if not self.site.alive:
            return
        if machine is None or not self._machine_live(machine):
            return
        more = machine.on_timer(token)
        if more:
            self.site.spawn(self._execute(machine, more),
                            f"tranman.timer.{token}")

    def _machine_live(self, machine: Any) -> bool:
        tid = getattr(machine, "tid", None)
        if tid is None:
            return False
        return (self.machines.get(tid) is machine
                or self.takeovers.get(tid) is machine)

    # ---------------------------------------------------------- takeover

    def _start_takeover(self, tid: TID) -> Generator[Any, Any, None]:
        if tid in self.takeovers:
            return
        sub = self.machines.get(tid)
        if isinstance(sub, (PcParticipant, PcLeader)):
            # Paxos Commit termination: run the leader election.  The
            # leader itself lands here too, when votes never arrive and
            # unilateral abort would be unsafe (F >= 1).
            candidate = PcCandidate(
                tid, self.site.name, sub.sites, sub.acceptors, sub.quorum,
                poll_timeout_ms=self.cost.protocol_timeout / 2,
                notify_timeout_ms=self.cost.protocol_timeout)
            self.takeovers[tid] = candidate
            self.tracer.record(self.kernel.now, "tranman.takeover",
                               site=self.site.name, tid=str(tid),
                               status="paxos_election")
            yield from self._execute(candidate, candidate.start())
            return
        if not isinstance(sub, NbSubordinate):
            return
        status, data = sub.status_report()
        takeover = NbTakeover(tid, self.site.name, sub.sites, sub.quorum,
                              own_status=status, own_decision_data=data,
                              poll_timeout_ms=self.cost.protocol_timeout / 2,
                              notify_timeout_ms=self.cost.protocol_timeout)
        self.takeovers[tid] = takeover
        self.tracer.record(self.kernel.now, "tranman.takeover",
                           site=self.site.name, tid=str(tid), status=status)
        yield from self._execute(takeover, takeover.start())

    def heuristic_resolve(self, tid: TID, outcome: Outcome) -> None:
        """Operator/program resolution of a blocked transaction (the LU
        6.2-style "heuristic commit" of the paper's related work): drop
        the locks now by guessing the outcome.  If the coordinator later
        decides the other way, the machine reports *heuristic damage*
        (``2pc.heuristic_damage`` in the trace) — correctness is
        explicitly not guaranteed, which is the feature's whole trade.
        """
        machine = self.machines.get(tid)
        if not isinstance(machine, TwoPhaseSubordinate):
            raise ValueError(
                f"{tid}: no blocked two-phase subordinate at {self.site.name}")
        effects = machine.heuristic_resolve(outcome)
        self.site.spawn(self._execute(machine, effects), "tranman.heuristic")

    def adopt_recovered_machine(self, machine: Any,
                                resume_effects: Sequence[Effect]) -> None:
        """Install a machine rebuilt by crash recovery and run its
        resumption effects."""
        if isinstance(machine, (NbTakeover, PcCandidate)):
            self.takeovers[machine.tid] = machine
        else:
            self.machines[machine.tid] = machine
        self.site.spawn(self._execute(machine, list(resume_effects)),
                        "tranman.recovered")

    def _queue_lazy(self, dst: str, message: Any) -> None:
        if dst == self.site.name:
            self.dgram.send(dst, message)
            return
        self._lazy.setdefault(dst, []).append(message)


def _combine_votes(votes: List[Vote]) -> Vote:
    if any(v is Vote.NO for v in votes):
        return Vote.NO
    if any(v is Vote.YES for v in votes):
        return Vote.YES
    return Vote.READ_ONLY


def _wait_all(kernel: Kernel, events: List[SimEvent]
              ) -> Generator[Any, Any, List[Any]]:
    combined = all_of(kernel, events, name="tranman.votes")
    results = yield Wait(combined)
    return results
