"""Transaction identifiers with Moss-model nesting.

A TID names a transaction within a *family*: the tree rooted at one
top-level transaction.  The family identifier embeds the originating
site and a counter ("T7@site0"); nested transactions extend the parent's
path with a per-parent child counter, so "T7@site0:2.1" is the first
child of the second child of the top-level transaction.

Every Camelot operation explicitly lists its TID; the transaction
manager's primary data structure is a hash table of family descriptors,
each holding its transactions (paper §3.4) — hence families are the unit
of concurrency and locking there.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator, Optional, Tuple


@dataclass(frozen=True, order=True)
class TID:
    """Immutable transaction identifier: family plus nesting path."""

    family: str
    path: Tuple[int, ...] = ()

    def __str__(self) -> str:
        if not self.path:
            return self.family
        return f"{self.family}:{'.'.join(str(p) for p in self.path)}"

    # ------------------------------------------------------- structure

    @property
    def is_top_level(self) -> bool:
        return not self.path

    @property
    def depth(self) -> int:
        """Nesting depth: 0 for a top-level transaction."""
        return len(self.path)

    @property
    def parent(self) -> Optional["TID"]:
        if not self.path:
            return None
        return TID(self.family, self.path[:-1])

    @property
    def top_level(self) -> "TID":
        return TID(self.family, ())

    def child(self, index: int) -> "TID":
        if index < 1:
            raise ValueError("child indices start at 1")
        return TID(self.family, self.path + (index,))

    def ancestors(self) -> Iterator["TID"]:
        """Proper ancestors, nearest first (parent, grandparent, ...)."""
        tid = self.parent
        while tid is not None:
            yield tid
            tid = tid.parent

    def is_ancestor_of(self, other: "TID") -> bool:
        """Proper ancestor test (a transaction is not its own ancestor)."""
        return (self.family == other.family
                and len(self.path) < len(other.path)
                and other.path[:len(self.path)] == self.path)

    def is_descendant_of(self, other: "TID") -> bool:
        return other.is_ancestor_of(self)

    def is_related_to(self, other: "TID") -> bool:
        """Same family: ancestor, descendant, sibling, or self."""
        return self.family == other.family

    def lowest_common_ancestor(self, other: "TID") -> "TID":
        if self.family != other.family:
            raise ValueError("no common ancestor across families")
        common = []
        for a, b in zip(self.path, other.path):
            if a != b:
                break
            common.append(a)
        return TID(self.family, tuple(common))

    # ----------------------------------------------------------- parse

    @classmethod
    def parse(cls, text: str) -> "TID":
        """Inverse of ``str()``: ``"T7@site0:2.1"`` round-trips."""
        if ":" not in text:
            return cls(text, ())
        family, _, path_part = text.partition(":")
        try:
            path = tuple(int(p) for p in path_part.split("."))
        except ValueError:
            raise ValueError(f"malformed TID {text!r}") from None
        if any(p < 1 for p in path):
            raise ValueError(f"malformed TID {text!r}: indices start at 1")
        return cls(family, path)


class TidGenerator:
    """Mints family IDs for one site and child TIDs within families.

    Family counters are per-generator (per-site), so two sites never mint
    the same family name; child counters are per-parent.
    """

    def __init__(self, site: str):
        self.site = site
        self._family_counter = itertools.count(1)
        self._child_counters: dict[TID, itertools.count] = {}

    def new_top_level(self) -> TID:
        return TID(f"T{next(self._family_counter)}@{self.site}", ())

    def new_child(self, parent: TID) -> TID:
        counter = self._child_counters.get(parent)
        if counter is None:
            counter = itertools.count(1)
            self._child_counters[parent] = counter
        return parent.child(next(counter))

    def forget_family(self, family: str) -> None:
        """Drop child counters for a finished family (bounded memory)."""
        stale = [tid for tid in self._child_counters if tid.family == family]
        for tid in stale:
            del self._child_counters[tid]
