"""Family and transaction descriptors — TranMan's primary data structure.

Paper §3.4: "The principal data structure is a hash table of family
descriptors, each with an attached hash table of transaction
descriptors.  Each family descriptor is protected by its own lock."
Locking permits concurrency only among different transaction families,
because Camelot's applications "mostly execute small non-nested
transactions serially" — concurrent requests within one family are rare.

The descriptors here carry everything the transaction manager tracks per
transaction: nesting structure, which local servers joined, which remote
sites the transaction spread to (fed by ComMan's spying), protocol
state, and the final outcome.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set

from repro.core.outcomes import Outcome, ProtocolKind
from repro.core.tid import TID


@dataclass
class TransactionDescriptor:
    """Per-transaction bookkeeping at one site's transaction manager."""

    tid: TID
    # Local data servers that joined this transaction (paper event 4).
    joined_servers: Set[str] = field(default_factory=set)
    # Remote sites this transaction (or its descendants) spread to,
    # merged from ComMan's response-message site lists.
    sites_used: Set[str] = field(default_factory=set)
    # Which commit family TranMan spawns machines from at top-level
    # commit: TWO_PHASE (TwoPhaseCoordinator/Subordinate), NON_BLOCKING
    # (NbCoordinator/Subordinate), or PAXOS_COMMIT (PcLeader/
    # PcParticipant, N=2F+1 acceptors).
    protocol: ProtocolKind = ProtocolKind.TWO_PHASE
    outcome: Optional[Outcome] = None
    # Children indices handed out so far (nested transactions).
    children: List[TID] = field(default_factory=list)
    # Virtual time of the last TranMan interaction; drives orphan
    # detection (a dead coordinator leaves descriptors going stale).
    last_activity: float = 0.0

    @property
    def active(self) -> bool:
        return self.outcome is None

    def note_server_joined(self, server: str) -> bool:
        """Record a join; True if this server is new to the transaction."""
        if server in self.joined_servers:
            return False
        self.joined_servers.add(server)
        return True

    def note_sites(self, sites: Iterator[str] | List[str] | Set[str]) -> None:
        self.sites_used.update(sites)


@dataclass
class FamilyDescriptor:
    """One transaction family: the tree under a top-level transaction."""

    family: str
    transactions: Dict[TID, TransactionDescriptor] = field(default_factory=dict)

    def get(self, tid: TID) -> Optional[TransactionDescriptor]:
        return self.transactions.get(tid)

    def add(self, tid: TID) -> TransactionDescriptor:
        if tid in self.transactions:
            raise ValueError(f"duplicate transaction {tid}")
        desc = TransactionDescriptor(tid=tid)
        self.transactions[tid] = desc
        parent = tid.parent
        if parent is not None:
            parent_desc = self.transactions.get(parent)
            if parent_desc is not None:
                parent_desc.children.append(tid)
        return desc

    def descendants_of(self, tid: TID) -> List[TransactionDescriptor]:
        """Descriptors for proper descendants of ``tid`` in this table."""
        return [d for t, d in self.transactions.items()
                if tid.is_ancestor_of(t)]

    def all_sites(self) -> Set[str]:
        """Every site any family member spread to — the participant set
        for top-level commitment."""
        sites: Set[str] = set()
        for desc in self.transactions.values():
            sites.update(desc.sites_used)
        return sites

    def all_servers(self) -> Set[str]:
        servers: Set[str] = set()
        for desc in self.transactions.values():
            servers.update(desc.joined_servers)
        return servers

    @property
    def empty(self) -> bool:
        return not self.transactions


class FamilyTable:
    """The hash of family descriptors.

    The per-family lock of the paper exists at the TranMan process level
    (a :class:`~repro.sim.resources.SimLock` per family); this class is
    the pure data structure so it stays unit-testable without a kernel.
    """

    def __init__(self) -> None:
        self._families: Dict[str, FamilyDescriptor] = {}

    def __len__(self) -> int:
        return len(self._families)

    def __contains__(self, family: str) -> bool:
        return family in self._families

    def family(self, family: str) -> Optional[FamilyDescriptor]:
        return self._families.get(family)

    def family_of(self, tid: TID) -> Optional[FamilyDescriptor]:
        return self._families.get(tid.family)

    def descriptor(self, tid: TID) -> Optional[TransactionDescriptor]:
        fam = self._families.get(tid.family)
        if fam is None:
            return None
        return fam.get(tid)

    def begin(self, tid: TID) -> TransactionDescriptor:
        """Register a new transaction, creating its family if needed."""
        fam = self._families.get(tid.family)
        if fam is None:
            fam = FamilyDescriptor(family=tid.family)
            self._families[tid.family] = fam
        return fam.add(tid)

    def forget_family(self, family: str) -> None:
        self._families.pop(family, None)

    def forget_transaction(self, tid: TID) -> None:
        fam = self._families.get(tid.family)
        if fam is None:
            return
        fam.transactions.pop(tid, None)
        if fam.empty:
            del self._families[tid.family]

    def active_families(self) -> List[str]:
        return sorted(self._families)
