"""Command-line entry point: regenerate any table/figure directly.

Usage::

    python -m repro list
    python -m repro figure2 --trials 30
    python -m repro figure4 --duration 10000
    python -m repro all --jobs 4              # fan cells across processes
    python -m repro all --trials-scale 4      # 4x the trials, same shape
    python -m repro figure2 --no-cache        # force recomputation

Each experiment prints in the paper's format; see EXPERIMENTS.md for a
recorded run and the benchmarks/ suite for the asserted shape checks.

Every multi-cell experiment (Figures 2-5, Table 3, multicast variance,
the ablations) goes through :mod:`repro.bench.parallel`: ``--jobs N``
fans the independent cells across N worker processes with results keyed
by cell spec, so output is byte-identical to a serial run.  Results are
memoised in an on-disk cache (:mod:`repro.bench.cache`) keyed by cell
spec, seed, and cost-model fingerprint; ``--no-cache`` bypasses it.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict

from repro.analysis.primitives import table2_rows
from repro.bench import figures
from repro.bench.cache import ResultCache
from repro.bench.parallel import Cell, auto_jobs, cell_values, run_cells
from repro.bench.report import (
    render_figure,
    render_multicast,
    render_primitive_table,
    render_rpc_breakdown,
    render_table,
    render_table3,
    render_throughput,
)


def run_table1(args: argparse.Namespace) -> str:
    return render_primitive_table("Table 1  Benchmarks of PC-RT and Mach",
                                  figures.table1_report())


def run_table2(args: argparse.Namespace) -> str:
    measured = figures.table2_measured(trials=args.trials)
    configured = render_primitive_table(
        "Table 2  Latency of Camelot primitives (configured)",
        table2_rows())
    live = render_table(
        "Table 2  configured vs measured in the simulator",
        ["PRIMITIVE", "CONFIGURED ms", "MEASURED ms"],
        [(m.name, f"{m.configured:6.2f}", f"{m.measured:6.2f}")
         for m in measured])
    return configured + "\n\n" + live


def run_rpc(args: argparse.Namespace) -> str:
    return render_rpc_breakdown(figures.rpc_breakdown(calls=args.trials * 4))


def run_figure2(args: argparse.Namespace) -> str:
    return render_figure("Figure 2  2PC latency vs subordinates (ms)",
                         figures.figure2(trials=args.trials,
                                         jobs=args.jobs, cache=args.cache))


def run_table3(args: argparse.Namespace) -> str:
    return render_table3(figures.table3(trials=args.trials,
                                        jobs=args.jobs, cache=args.cache))


def run_figure3(args: argparse.Namespace) -> str:
    return render_figure("Figure 3  Non-blocking latency vs subordinates (ms)",
                         figures.figure3(trials=args.trials,
                                         jobs=args.jobs, cache=args.cache))


def run_figure4(args: argparse.Namespace) -> str:
    return render_throughput("Figure 4  Update throughput (TPS)",
                             figures.figure4(duration_ms=args.duration,
                                             jobs=args.jobs,
                                             cache=args.cache))


def run_figure5(args: argparse.Namespace) -> str:
    return render_throughput("Figure 5  Read throughput (TPS)",
                             figures.figure5(duration_ms=args.duration,
                                             jobs=args.jobs,
                                             cache=args.cache))


def run_multicast(args: argparse.Namespace) -> str:
    return render_multicast(figures.multicast_variance(trials=args.trials,
                                                       jobs=args.jobs,
                                                       cache=args.cache))


def run_contention(args: argparse.Namespace) -> str:
    result = figures.lock_contention(txns=args.trials)
    return render_table(
        "S4.2  Lock waits, back-to-back same-object transactions",
        ["VARIANT", "LOCK WAITS"], sorted(result.per_variant.items()))


def run_ablations(args: argparse.Namespace) -> str:
    # Four independent studies: submit them as cells so --jobs overlaps
    # them (each is internally serial but they share nothing).
    cells = [
        Cell.make("read_only_ablation", trials=max(8, args.trials // 2)),
        Cell.make("quorum_policy_ablation", trials=max(6, args.trials // 3)),
        Cell.make("group_commit_window_ablation"),
        Cell.make("protocol_overhead_ablation",
                  trials=max(4, args.trials // 4)),
    ]
    ro, quorum, window, overhead = cell_values(
        run_cells(cells, jobs=args.jobs, cache=args.cache))
    parts = []
    parts.append(render_table(
        "Ablation: read-only optimization (1-sub read)",
        ["CONFIG", "LATENCY ms", "FORCES/txn"],
        [("on", f"{ro.optimized.mean:6.1f}", f"{ro.optimized_forces:.1f}"),
         ("off", f"{ro.unoptimized.mean:6.1f}",
          f"{ro.unoptimized_forces:.1f}")]))
    parts.append(render_table(
        "Ablation: non-blocking quorum policy",
        ["POLICY", "LATENCY ms", "SURVIVORS DECIDE?"],
        [(p, f"{quorum.latency[p].mean:6.1f}",
          "yes" if quorum.survivors_decide[p] else "NO")
         for p in sorted(quorum.latency)]))
    parts.append(render_table(
        "Ablation: group-commit window",
        ["WINDOW ms", "TPS", "LATENCY ms"],
        [(f"{p.window_ms:.0f}", f"{p.tps:6.1f}",
          f"{p.mean_latency_ms:7.1f}") for p in window]))
    parts.append(render_table(
        "Ablation: NB-vs-2PC overhead by size and network",
        ["NET", "OPS", "2PC ms", "NB ms", "PREMIUM"],
        [(p.profile, p.ops_per_site, f"{p.two_phase_ms:7.1f}",
          f"{p.non_blocking_ms:7.1f}",
          f"{p.overhead_fraction * 100:5.1f} %") for p in overhead]))
    return "\n\n".join(parts)


EXPERIMENTS: Dict[str, Callable[[argparse.Namespace], str]] = {
    "table1": run_table1,
    "table2": run_table2,
    "rpc": run_rpc,
    "figure2": run_figure2,
    "table3": run_table3,
    "figure3": run_figure3,
    "figure4": run_figure4,
    "figure5": run_figure5,
    "multicast": run_multicast,
    "contention": run_contention,
    "ablations": run_ablations,
}


def _jobs_arg(text: str) -> int:
    """``--jobs`` accepts an integer or ``auto`` (size to the machine)."""
    if text == "auto":
        return auto_jobs()
    return int(text)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the paper's tables and figures.")
    parser.add_argument("experiment",
                        choices=sorted(EXPERIMENTS) + ["list", "all"],
                        help="which experiment to run")
    parser.add_argument("--trials", type=int, default=20,
                        help="trials per measurement point (default 20)")
    parser.add_argument("--trials-scale", type=float, default=1.0,
                        help="multiply every trial count (crank statistics "
                             "without re-deriving per-figure counts)")
    parser.add_argument("--duration", type=float, default=8_000.0,
                        help="throughput window in sim-ms (default 8000)")
    parser.add_argument("--jobs", type=_jobs_arg, default=1,
                        help="worker processes for independent cells "
                             "(default 1 = in-process; 'auto' sizes to "
                             "the machine)")
    parser.add_argument("--no-cache", action="store_true",
                        help="recompute every cell, bypassing the on-disk "
                             "result cache")
    parser.add_argument("--cache-dir", default=None,
                        help="result cache directory (default .repro-cache "
                             "or $REPRO_CACHE_DIR)")
    args = parser.parse_args(argv)
    args.trials = max(1, round(args.trials * args.trials_scale))
    args.cache = None if args.no_cache else ResultCache(args.cache_dir)

    if args.experiment == "list":
        for name in sorted(EXPERIMENTS):
            print(name)
        return 0
    names = sorted(EXPERIMENTS) if args.experiment == "all" \
        else [args.experiment]
    for name in names:
        print(EXPERIMENTS[name](args))
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
