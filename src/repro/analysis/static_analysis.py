"""Critical-path and completion-path formulas (the paper's Table 3).

Two events matter for commitment latency: "the moment at which all locks
have been dropped, and the moment when the synchronous
commit-transaction call returns.  The critical path ... is the shortest
sequence of actions that must be done sequentially before all locks are
dropped and the call returns.  The shortest sequence of actions before
(only) the call returns is the completion path.  In Camelot, the
critical path is always longer than the completion path."

Each formula returns a :class:`StaticPath`: an ordered list of
(primitive, count, unit-cost) terms whose sum is the prediction.  The
assumptions are the paper's: identical parallel operations proceed
perfectly in parallel with constant service time, and minor costs (CPU
inside processes) are ignored — which is why static analysis
*underestimates* the measured time, as the paper observes and this
reproduction confirms (see EXPERIMENTS.md).

Primitive-count ratios (paper §4.3): an optimized two-phase update
commit has 2 log forces + 3 datagrams on its critical path; the
non-blocking protocol has 4 + 5, whence the roughly 2:1 latency ratio
that Dwork & Skeen's lower bound says is inherent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.config import CostModel


@dataclass(frozen=True)
class PathTerm:
    """``count`` occurrences of one primitive on the path."""

    name: str
    count: float
    unit_cost: float

    @property
    def total(self) -> float:
        return self.count * self.unit_cost


@dataclass
class StaticPath:
    """An ordered breakdown of one latency path."""

    label: str
    terms: List[PathTerm]

    @property
    def total(self) -> float:
        return sum(t.total for t in self.terms)

    def count_of(self, name: str) -> float:
        return sum(t.count for t in self.terms if t.name == name)

    def rows(self) -> List[str]:
        out = [f"{t.name:38s} x{t.count:<4g} {t.total:7.1f} ms"
               for t in self.terms]
        out.append(f"{'TOTAL ' + self.label:38s}       {self.total:7.1f} ms")
        return out


def _c(cost: Optional[CostModel]) -> CostModel:
    return cost or CostModel()


def _begin_and_ops(c: CostModel, n_subs: int, write: bool) -> List[PathTerm]:
    """The non-commitment prefix: begin + one operation per site.

    Operation cost is the paper's: 3.5 ms local (3 op IPC + 0.5 lock),
    29 ms remote (28.5 RPC + 0.5 lock).  Remote operations are issued in
    sequence by the application, so they sum.
    """
    terms = [PathTerm("begin-transaction IPC", 1, c.local_ipc),
             PathTerm("local operation (IPC to server)", 1, 2 * c.local_ipc),
             PathTerm("get lock (local)", 1, c.get_lock)]
    if n_subs:
        remote_rpc = (c.netmsg_rpc + 2 * c.local_ipc
                      + 2 * c.comman_cpu_per_call)
        terms.append(PathTerm("remote operation (Camelot RPC)", n_subs,
                              remote_rpc))
        terms.append(PathTerm("get lock (remote)", n_subs, c.get_lock))
    return terms


def _commit_call(c: CostModel) -> List[PathTerm]:
    return [PathTerm("commit-transaction IPC", 1, c.local_ipc)]


def _local_vote_round(c: CostModel) -> List[PathTerm]:
    return [PathTerm("local vote round (IPC to server)", 1, 2 * c.local_ipc)]


def _reply(c: CostModel) -> List[PathTerm]:
    return [PathTerm("commit reply IPC", 1, c.local_ipc)]


# ------------------------------------------------------------- local txns


def local_update_completion(cost: Optional[CostModel] = None) -> StaticPath:
    """Local update: one log write (forced) commits it — 24.5 ms static
    against the paper's 31 ms measured."""
    c = _c(cost)
    terms = (_begin_and_ops(c, 0, write=True) + _commit_call(c)
             + _local_vote_round(c)
             + [PathTerm("log force (commit record)", 1, c.log_force)])
    return StaticPath("local update completion", terms)


def local_read_completion(cost: Optional[CostModel] = None) -> StaticPath:
    """Local read: no log writes at all — 9.5 ms static vs 13 measured."""
    c = _c(cost)
    terms = (_begin_and_ops(c, 0, write=False) + _commit_call(c)
             + _local_vote_round(c))
    return StaticPath("local read completion", terms)


# ---------------------------------------------------------- 2PC, update


def twophase_update_completion(n_subs: int,
                               cost: Optional[CostModel] = None) -> StaticPath:
    """Optimized 2PC update, call-return path: 2 forces + 2 datagrams."""
    c = _c(cost)
    terms = (_begin_and_ops(c, n_subs, write=True) + _commit_call(c)
             + _local_vote_round(c))
    if n_subs:
        terms += [
            PathTerm("datagram (prepare)", 1, c.datagram),
            PathTerm("subordinate vote round", 1, 2 * c.local_ipc),
            PathTerm("log force (subordinate prepare)", 1, c.log_force),
            PathTerm("datagram (vote)", 1, c.datagram),
        ]
    terms += [PathTerm("log force (coordinator commit)", 1, c.log_force)]
    terms += _reply(c)
    return StaticPath(f"2PC update completion, {n_subs} subs", terms)


def twophase_update_critical(n_subs: int,
                             cost: Optional[CostModel] = None) -> StaticPath:
    """Critical path: completion plus the commit notice reaching the
    subordinates and their lock drops (the paper's '2 log writes (both
    forces) and two inter-site messages' beyond the vote round)."""
    c = _c(cost)
    path = twophase_update_completion(n_subs, c)
    terms = list(path.terms)
    if n_subs:
        terms += [
            PathTerm("datagram (commit notice)", 1, c.datagram),
            PathTerm("drop locks at subordinate", 1,
                     c.local_oneway_message + c.drop_lock),
        ]
    return StaticPath(f"2PC update critical, {n_subs} subs", terms)


def twophase_read_completion(n_subs: int,
                             cost: Optional[CostModel] = None) -> StaticPath:
    """Read-only 2PC: one message round, zero log writes."""
    c = _c(cost)
    terms = (_begin_and_ops(c, n_subs, write=False) + _commit_call(c)
             + _local_vote_round(c))
    if n_subs:
        terms += [
            PathTerm("datagram (prepare)", 1, c.datagram),
            PathTerm("subordinate vote round", 1, 2 * c.local_ipc),
            PathTerm("datagram (read vote)", 1, c.datagram),
        ]
    terms += _reply(c)
    return StaticPath(f"2PC read completion, {n_subs} subs", terms)


# -------------------------------------------------------- non-blocking


def nonblocking_update_completion(n_subs: int,
                                  cost: Optional[CostModel] = None
                                  ) -> StaticPath:
    """Non-blocking update: 4 forces + 4 datagrams to the commit point
    (the 5th datagram — the outcome notice — is beyond call return,
    'the completion path is one datagram shorter')."""
    c = _c(cost)
    terms = (_begin_and_ops(c, n_subs, write=True) + _commit_call(c)
             + _local_vote_round(c)
             + [PathTerm("log force (coordinator prepare)", 1, c.log_force)])
    if n_subs:
        terms += [
            PathTerm("datagram (prepare)", 1, c.datagram),
            PathTerm("subordinate vote round", 1, 2 * c.local_ipc),
            PathTerm("log force (subordinate prepare)", 1, c.log_force),
            PathTerm("datagram (vote)", 1, c.datagram),
        ]
    terms += [PathTerm("log force (coordinator replication)", 1, c.log_force)]
    if n_subs:
        terms += [
            PathTerm("datagram (replicate)", 1, c.datagram),
            PathTerm("log force (subordinate replication)", 1, c.log_force),
            PathTerm("datagram (replicate ack)", 1, c.datagram),
        ]
    terms += _reply(c)
    return StaticPath(f"NB update completion, {n_subs} subs", terms)


def nonblocking_update_critical(n_subs: int,
                                cost: Optional[CostModel] = None
                                ) -> StaticPath:
    c = _c(cost)
    path = nonblocking_update_completion(n_subs, c)
    terms = list(path.terms)
    if n_subs:
        terms += [
            PathTerm("datagram (outcome notice)", 1, c.datagram),
            PathTerm("drop locks at subordinate", 1,
                     c.local_oneway_message + c.drop_lock),
        ]
    return StaticPath(f"NB update critical, {n_subs} subs", terms)


def nonblocking_read_completion(n_subs: int,
                                cost: Optional[CostModel] = None
                                ) -> StaticPath:
    """Fully read-only: identical critical path to two-phase commit —
    the paper's headline read-only result."""
    path = twophase_read_completion(n_subs, cost)
    return StaticPath(f"NB read completion, {n_subs} subs", path.terms)


# -------------------------------------------------------- paxos commit


def paxos_update_completion(n_subs: int,
                            cost: Optional[CostModel] = None,
                            faults_tolerated: int = 0) -> StaticPath:
    """Paxos Commit update at F faults tolerated (N = 2F+1 acceptors).

    F=0 degenerates to optimized 2PC's exact path — the leader is the
    sole acceptor, the subordinate's prepare force doubles as its
    ballot-0 acceptance, and the leader's decision force is the
    commitment point (Gray & Lamport §4: "with F=0, Paxos Commit is
    essentially 2PC").  Each extra fault tolerated adds, per
    subordinate, one vote fan-out datagram to the 2F extra acceptors,
    their acceptance forces, and their phase-2b reports; the completion
    path grows by one acceptor force + two datagrams per F on the
    slowest instance's chain.
    """
    c = _c(cost)
    terms = (_begin_and_ops(c, n_subs, write=True) + _commit_call(c)
             + _local_vote_round(c))
    if faults_tolerated:
        terms += [PathTerm("log force (leader prepare)", 1, c.log_force)]
    if n_subs:
        terms += [
            PathTerm("datagram (prepare)", 1, c.datagram),
            PathTerm("subordinate vote round", 1, 2 * c.local_ipc),
            PathTerm("log force (subordinate prepare)", 1, c.log_force),
            PathTerm("datagram (vote / ballot-0 2a)", 1, c.datagram),
        ]
        if faults_tolerated:
            terms += [
                PathTerm("log force (acceptor acceptance)",
                         faults_tolerated, c.log_force),
                PathTerm("datagram (phase-2b report)",
                         faults_tolerated, 2 * c.datagram),
            ]
    terms += [PathTerm("log force (leader decision)", 1, c.log_force)]
    terms += _reply(c)
    return StaticPath(
        f"Paxos Commit update completion, {n_subs} subs, F="
        f"{faults_tolerated}", terms)


def paxos_update_critical(n_subs: int,
                          cost: Optional[CostModel] = None,
                          faults_tolerated: int = 0) -> StaticPath:
    c = _c(cost)
    path = paxos_update_completion(n_subs, c, faults_tolerated)
    terms = list(path.terms)
    if n_subs:
        terms += [
            PathTerm("datagram (outcome notice)", 1, c.datagram),
            PathTerm("drop locks at subordinate", 1,
                     c.local_oneway_message + c.drop_lock),
        ]
    return StaticPath(
        f"Paxos Commit update critical, {n_subs} subs, F="
        f"{faults_tolerated}", terms)


def paxos_read_completion(n_subs: int,
                          cost: Optional[CostModel] = None) -> StaticPath:
    """Fully read-only Paxos Commit: votes need no durability, so the
    path collapses to the same one message round as read-only 2PC."""
    path = twophase_read_completion(n_subs, cost)
    return StaticPath(f"Paxos Commit read completion, {n_subs} subs",
                      path.terms)


# -------------------------------------------------------------- counts


def path_counts(protocol: str, op: str, n_subs: int) -> Dict[str, int]:
    """Critical-path primitive counts (the §4.3 ratios).

    Returns {'log_forces': ..., 'datagrams': ...} for one transaction
    with ``n_subs`` subordinates.
    """
    if protocol not in ("two_phase", "non_blocking", "paxos_commit"):
        raise ValueError(f"unknown protocol {protocol!r}")
    if op not in ("read", "write"):
        raise ValueError(f"unknown op {op!r} (expected 'read' or 'write')")
    if op == "read":
        return {"log_forces": 0, "datagrams": 2 if n_subs else 0}
    if protocol in ("two_phase", "paxos_commit"):
        # Paxos Commit at F=0 degenerates to optimized 2PC exactly.
        return {"log_forces": 2, "datagrams": 3 if n_subs else 0}
    return {"log_forces": 4, "datagrams": 5 if n_subs else 0}


def protocol_graph_counts(protocol: str) -> Dict[str, int]:
    """The same write-path counts, but *measured* from source.

    Walks the transition graphs that :mod:`repro.lint.flow.protograph`
    extracts from the live protocol modules (one coordinator against
    one subordinate) and tallies forced log writes and delivered
    datagrams.  ``python -m repro.lint`` cross-checks this against
    :func:`path_counts` on every run, so the formulas above cannot
    silently drift from the code they describe.
    """
    from pathlib import Path

    from repro.lint.engine import build_context
    from repro.lint.flow import flow_program
    from repro.lint.flow.protograph import happy_path_counts

    pairs = {
        "two_phase": ("TwoPhaseCoordinator", "TwoPhaseSubordinate"),
        "non_blocking": ("NbCoordinator", "NbSubordinate"),
        "paxos_commit": ("PcLeader", "PcParticipant"),
    }
    if protocol not in pairs:
        raise ValueError(f"unknown protocol {protocol!r}")
    import repro
    root = Path(repro.__file__).resolve().parent
    program = flow_program(build_context(root))
    coord, sub = pairs[protocol]
    counts = happy_path_counts(program, coord, sub)
    if counts is None:
        raise RuntimeError(
            f"no admissible happy path extracted for {protocol}")
    return counts
