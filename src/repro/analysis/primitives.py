"""The paper's Tables 1 and 2 as data.

Table 1 benchmarks the raw machine + Mach (IBM PC-RT model 125, Mach
2.0); Table 2 lists the latencies of the Camelot-level primitives that
dominate protocol paths.  Both are derived from the active
:class:`~repro.config.CostModel`, so sweeping a cost parameter sweeps
the printed tables and the static analysis coherently.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.config import CostModel


@dataclass(frozen=True)
class PrimitiveRow:
    """One table row: a named primitive and its cost."""

    name: str
    value: float
    unit: str
    note: str = ""

    def formatted(self) -> str:
        if self.unit == "us":
            return f"{self.value:8.1f} us"
        return f"{self.value:8.2f} ms"


def table1_rows(cost: Optional[CostModel] = None) -> List[PrimitiveRow]:
    """Benchmarks of PC-RT and Mach (paper Table 1)."""
    c = cost or CostModel()
    return [
        PrimitiveRow("Procedure call, 32-byte arg", c.procedure_call_us, "us"),
        PrimitiveRow("Data copy, bcopy()", c.bcopy_base_us, "us",
                     note=f"+ {c.bcopy_per_kb_us:.0f} us/KB"),
        PrimitiveRow("Kernel call, getpid()", c.kernel_call_us, "us"),
        PrimitiveRow("Copy data in/out of kernel", c.kernel_copy_base_us,
                     "us", note="+ copy time"),
        PrimitiveRow("Local IPC, 8-byte in-line", c.local_ipc, "ms"),
        PrimitiveRow("Remote IPC, 8-byte in-line", c.netmsg_rpc, "ms"),
        PrimitiveRow("Context switch, swtch()", c.context_switch_us, "us"),
        PrimitiveRow("Raw disk write, 1 track", c.raw_disk_track_write, "ms"),
    ]


def table2_rows(cost: Optional[CostModel] = None) -> List[PrimitiveRow]:
    """Latency of Camelot primitives (paper Table 2)."""
    c = cost or CostModel()
    return [
        PrimitiveRow("Local in-line IPC", c.local_ipc, "ms"),
        PrimitiveRow("Local in-line IPC to server", 2 * c.local_ipc, "ms",
                     note="request + reply"),
        PrimitiveRow("Local out-of-line IPC", c.local_outofline_ipc, "ms"),
        PrimitiveRow("Local one-way inline message", c.local_oneway_message,
                     "ms"),
        PrimitiveRow("Remote RPC", c.netmsg_rpc + 2 * c.local_ipc
                     + 2 * c.comman_cpu_per_call + c.get_lock, "ms",
                     note="28.5 TM path + 0.5 locking"),
        PrimitiveRow("Log force", c.log_force, "ms"),
        PrimitiveRow("Datagram", c.datagram, "ms"),
        PrimitiveRow("Get lock", c.get_lock, "ms"),
        PrimitiveRow("Drop lock", c.drop_lock, "ms"),
        PrimitiveRow("Data access: read", c.data_access_read, "ms",
                     note="negligible"),
        PrimitiveRow("Data access: write", c.data_access_write, "ms",
                     note="negligible"),
    ]


def rpc_breakdown_rows(cost: Optional[CostModel] = None) -> List[PrimitiveRow]:
    """The §4.1 dissection of the 28.5 ms Camelot RPC."""
    c = cost or CostModel()
    nms = c.netmsg_rpc
    extra_ipc = 2 * c.local_ipc
    comman = 2 * c.comman_cpu_per_call
    return [
        PrimitiveRow("NetMsgServer-to-NetMsgServer RPC", nms, "ms"),
        PrimitiveRow("Extra IPC, ComMan <-> NetMsgServer", extra_ipc, "ms",
                     note="2 x local IPC"),
        PrimitiveRow("ComMan CPU (both sites)", comman, "ms",
                     note=f"{c.comman_cpu_per_call:.1f} ms per site"),
        PrimitiveRow("Total Camelot RPC", nms + extra_ipc + comman, "ms"),
    ]
