"""Static (non-empirical) analysis, paper-style.

"Commitment protocols are amenable to 'static' analysis because serial
and parallel portions are clearly separated ...  the length of either
path can be evaluated approximately by adding the latencies of the major
actions (or primitives) along the path" (paper §4.2).  This package
provides:

- :mod:`repro.analysis.primitives` — the paper's Tables 1 and 2 as data,
  tied to the live :class:`~repro.config.CostModel`;
- :mod:`repro.analysis.static_analysis` — critical-path and
  completion-path formulas for every measured protocol variant (the
  paper's Table 3 and §4.3 ratios);
- :mod:`repro.analysis.stats` — the summary statistics the figures
  report (mean, sample stddev, confidence intervals).
"""

from repro.analysis.primitives import table1_rows, table2_rows
from repro.analysis.static_analysis import (
    PathTerm,
    StaticPath,
    local_read_completion,
    local_update_completion,
    nonblocking_read_completion,
    nonblocking_update_completion,
    path_counts,
    twophase_read_completion,
    twophase_update_completion,
    twophase_update_critical,
)
from repro.analysis.stats import Summary, summarize

__all__ = [
    "PathTerm",
    "StaticPath",
    "Summary",
    "local_read_completion",
    "local_update_completion",
    "nonblocking_read_completion",
    "nonblocking_update_completion",
    "path_counts",
    "summarize",
    "table1_rows",
    "table2_rows",
    "twophase_read_completion",
    "twophase_update_completion",
    "twophase_update_critical",
]
