"""Analytic throughput model for the Figure 4/5 experiments.

The paper's throughput discussion is qualitative ("the logger is the
bottleneck", "a single thread can accommodate more than 1 client but
not more than 2").  This model makes it quantitative, in the same
spirit as the latency static analysis: a transaction's demand on each
serial resource is summed from primitives, and the system throughput at
``n`` closed-loop pairs is the minimum of the per-resource ceilings and
the offered load:

    TPS(n) = min( n / L,                    offered load (closed loop)
                  T * 1000 / thread_occ,    TranMan thread-pool ceiling
                  C * 1000 / cpu_demand,    CPU ceiling
                  1000 / disk_occ * B )     log-device ceiling (update)

where L is the per-transaction latency, T the TranMan thread count, C
the CPU count, and B the group-commit batching factor (1 when off).

The model deliberately ignores queueing curvature near saturation — it
predicts the plateaus and their ordering, which is what Figures 4-5
assert, and lands within a few tens of percent of the simulation (see
tests/test_throughput_model.py).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.config import CostModel, vax_mp_profile

# Message/request counts for one minimal local transaction, from the
# system's actual interaction pattern (begin, join, commit + vote round,
# plus the operation itself).
TRANMAN_REQUESTS_PER_TXN = 3      # begin, join, commit handler
SERVER_REQUESTS_PER_TXN = 3      # operation, prepare, drop_locks
IPC_LEGS_PER_TXN = 8             # begin rt, op rt, commit rt, vote rt


@dataclass(frozen=True)
class ThroughputPrediction:
    offered_tps: float
    thread_ceiling_tps: float
    cpu_ceiling_tps: float
    disk_ceiling_tps: float

    @property
    def tps(self) -> float:
        return min(self.offered_tps, self.thread_ceiling_tps,
                   self.cpu_ceiling_tps, self.disk_ceiling_tps)

    @property
    def bottleneck(self) -> str:
        ceilings = {
            "offered": self.offered_tps,
            "tranman_threads": self.thread_ceiling_tps,
            "cpu": self.cpu_ceiling_tps,
            "logger": self.disk_ceiling_tps,
        }
        return min(ceilings, key=ceilings.get)


def _per_txn_costs(cost: CostModel, op: str, group_commit: bool):
    """(latency_ms, tranman_thread_occupancy_ms, cpu_demand_ms,
    disk_occupancy_ms) for one minimal local transaction."""
    ctx = cost.context_switch_us / 1000.0
    tranman_cpu = cost.scaled_cpu(cost.tranman_service_cpu) + ctx
    server_cpu = cost.scaled_cpu(cost.server_service_cpu) + ctx
    logger_cpu = cost.scaled_cpu(cost.logger_service_cpu) + ctx

    ipc = IPC_LEGS_PER_TXN * cost.local_ipc
    cpu_demand = (TRANMAN_REQUESTS_PER_TXN * tranman_cpu
                  + SERVER_REQUESTS_PER_TXN * server_cpu)
    latency = ipc + cpu_demand + cost.get_lock + cost.drop_lock

    disk_occ = 0.0
    if op == "write":
        force = cost.log_force + logger_cpu
        latency += force
        cpu_demand += logger_cpu
        disk_occ = cost.log_force
        if group_commit:
            # Half the batching window adds latency on average.
            latency += cost.log_batch_timer / 2.0

    # The commit handler occupies its TranMan thread through the local
    # vote round and (for updates) the log force.
    thread_occ = (TRANMAN_REQUESTS_PER_TXN * tranman_cpu
                  + 2 * cost.local_ipc)  # vote round trip
    if op == "write":
        thread_occ += cost.log_force + logger_cpu
        if group_commit:
            thread_occ += cost.log_batch_timer / 2.0
    return latency, thread_occ, cpu_demand, disk_occ


def predict(pairs: int, threads: int, group_commit: bool, op: str = "write",
            cost: Optional[CostModel] = None,
            batching_factor: Optional[float] = None) -> ThroughputPrediction:
    """Predict the Figure 4/5 cell at ``pairs`` app/server pairs."""
    c = cost or vax_mp_profile()
    latency, thread_occ, cpu_demand, disk_occ = _per_txn_costs(
        c, op, group_commit)
    offered = pairs * 1000.0 / latency
    thread_ceiling = threads * 1000.0 / thread_occ
    cpu_ceiling = c.num_cpus * 1000.0 / cpu_demand if cpu_demand else float("inf")
    if disk_occ > 0:
        batch = batching_factor
        if batch is None:
            if group_commit:
                # Commits arriving during one round's window *plus* its
                # disk write all fold into rounds; at offered rate r the
                # expected batch is r * (window + write time).
                cycle_s = (c.log_batch_timer + disk_occ) / 1000.0
                batch = max(1.0, min(float(pairs), offered * cycle_s))
            else:
                batch = 1.0
        disk_ceiling = 1000.0 / disk_occ * batch
    else:
        disk_ceiling = float("inf")
    return ThroughputPrediction(
        offered_tps=offered,
        thread_ceiling_tps=thread_ceiling,
        cpu_ceiling_tps=cpu_ceiling,
        disk_ceiling_tps=disk_ceiling,
    )
