"""Summary statistics for experiment series.

The paper reports means with standard deviations in parentheses
(Figures 2-3); :func:`summarize` produces exactly that, plus the
percentiles and confidence half-widths the benchmark harness prints.
Implemented directly (no numpy dependency in the hot path) so the pure
protocol tests stay dependency-light.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class Summary:
    """Descriptive statistics of one latency/throughput series."""

    n: int
    mean: float
    stdev: float
    minimum: float
    maximum: float
    p50: float
    p95: float

    def paper_style(self) -> str:
        """Mean with stddev in parentheses, as the paper's figures."""
        return f"{self.mean:.1f} ({self.stdev:.0f})"

    def ci95_half_width(self) -> float:
        """Normal-approximation 95% confidence half-width of the mean."""
        if self.n < 2:
            return 0.0
        return 1.96 * self.stdev / math.sqrt(self.n)


def percentile(sorted_values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile of pre-sorted data, q in [0, 1]."""
    if not sorted_values:
        raise ValueError("empty series")
    if len(sorted_values) == 1:
        return sorted_values[0]
    pos = q * (len(sorted_values) - 1)
    lo = int(math.floor(pos))
    hi = int(math.ceil(pos))
    frac = pos - lo
    return sorted_values[lo] * (1 - frac) + sorted_values[hi] * frac


def summarize(values: Sequence[float]) -> Summary:
    """Descriptive statistics; sample (n-1) standard deviation."""
    if not values:
        raise ValueError("cannot summarize an empty series")
    data = sorted(values)
    n = len(data)
    mean = sum(data) / n
    if n > 1:
        var = sum((x - mean) ** 2 for x in data) / (n - 1)
        stdev = math.sqrt(var)
    else:
        stdev = 0.0
    return Summary(
        n=n,
        mean=mean,
        stdev=stdev,
        minimum=data[0],
        maximum=data[-1],
        p50=percentile(data, 0.50),
        p95=percentile(data, 0.95),
    )


def coefficient_of_variation(values: Sequence[float]) -> float:
    """stdev / mean — the variance metric the multicast experiment uses."""
    s = summarize(values)
    if s.mean == 0:
        return 0.0
    return s.stdev / s.mean
