"""Simulation race detector: same-timestamp events on a shared object.

The kernel breaks same-instant ties by scheduling sequence number, so a
single run is always reproducible.  But when two events land at the same
virtual time on the same port/lock/WAL object *from independent causal
chains*, their relative order is decided only by which ``schedule`` call
happened to run first — a global, history-shaped tie-break.  Any code
change that reorders unrelated scheduling (adding a trace, batching a
send) silently flips the outcome, which is exactly the class of bug the
byte-equality harness cannot localise.  Events scheduled by the *same*
parent event are exempt: their order is written down in the parent's
code, a deterministic tie-break sequence.

Usage::

    detector = RaceDetector()
    kernel.monitor = detector          # opt-in kernel mode
    ... run the simulation ...
    for race in detector.finish():     # RaceReport records
        ...

:func:`scan_for_races` runs the stock distributed scenario with the
detector attached and converts the reports into lint findings, so
``python -m repro.lint --races`` folds dynamic races into the same
report/baseline pipeline as the static rules.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.lint.findings import Finding


def _default_resource_classes() -> tuple:
    from repro.log.wal import WriteAheadLog
    from repro.mach.ports import Port
    from repro.sim.events import SimEvent
    from repro.sim.resources import Channel, Condition, Semaphore, SimLock
    return (Port, Channel, SimLock, Semaphore, Condition, SimEvent,
            WriteAheadLog)


def _describe(obj: Any) -> str:
    name = getattr(obj, "name", None)
    label = f" {name}" if isinstance(name, str) and name else ""
    return f"{type(obj).__name__}{label}"


def _callback_site(fn: Callable) -> Tuple[str, int, str]:
    """(file, line, qualname) of a callback, unwrapping bound methods."""
    inner = getattr(fn, "__func__", fn)
    code = getattr(inner, "__code__", None)
    if code is None:
        return ("<builtin>", 0, repr(fn))
    return (code.co_filename, code.co_firstlineno,
            getattr(inner, "__qualname__", inner.__name__))


@dataclass(frozen=True)
class RaceReport:
    """Two same-timestamp events from independent parents sharing an
    object; ordering between them is an accident of scheduling order."""

    time: float
    resource: str
    first: str      # "qualname (file:line)" of the earlier-seq callback
    second: str
    first_site: Tuple[str, int]
    second_site: Tuple[str, int]

    def describe(self) -> str:
        return (f"t={self.time:g}: {self.first} vs {self.second} both "
                f"touch {self.resource} with no deterministic tie-break")


class RaceDetector:
    """Kernel monitor (see :attr:`repro.sim.kernel.Kernel.monitor`).

    Tracks, for every fired event, which event scheduled it and which
    resource objects its callback touches (the bound receiver plus any
    argument that is a port/channel/lock/event/WAL).  Within each group
    of events firing at one instant, pairs that share a resource and are
    not causally ordered inside the group are reported as races.
    """

    def __init__(self, resource_classes: Optional[tuple] = None,
                 max_reports: int = 200):
        self._resource_classes = (resource_classes
                                  or _default_resource_classes())
        self.max_reports = max_reports
        self.races: List[RaceReport] = []
        self.events_seen = 0
        self._current_seq: Optional[int] = None
        self._parents: Dict[int, Optional[int]] = {}
        self._group_time: Optional[float] = None
        # (seq, parent_seq, resource ids, (id -> description), site)
        self._group: List[Tuple[int, Optional[int], frozenset,
                                Dict[int, str], Tuple[str, int, str]]] = []
        self._seen_pairs: set = set()

    # ------------------------------------------------- kernel protocol

    def on_schedule(self, seq: int) -> None:
        self._parents[seq] = self._current_seq

    def before_fire(self, time: float, seq: int, fn: Callable,
                    args: tuple) -> None:
        self.events_seen += 1
        if time != self._group_time:
            self._flush_group()
            self._group_time = time
        resources: Dict[int, str] = {}
        receiver = getattr(fn, "__self__", None)
        for obj in (receiver, *args):
            if isinstance(obj, self._resource_classes):
                resources[id(obj)] = _describe(obj)
        parent = self._parents.pop(seq, None)
        self._group.append((seq, parent, frozenset(resources), resources,
                            _callback_site(fn)))
        self._current_seq = seq

    # ---------------------------------------------------------- results

    def finish(self) -> List[RaceReport]:
        """Close the open group and return all reports found so far."""
        self._flush_group()
        self._group_time = None
        return list(self.races)

    def _flush_group(self) -> None:
        group, self._group = self._group, []
        if len(group) < 2 or len(self.races) >= self.max_reports:
            return
        in_group = {seq: parent for seq, parent, *_ in group}

        def causally_ordered(a_seq: int, b_seq: int) -> bool:
            # Walk b's parent chain while it stays inside this instant.
            cur: Optional[int] = b_seq
            while cur is not None and cur in in_group:
                cur = in_group[cur]
                if cur == a_seq:
                    return True
            return False

        for i, (a_seq, a_parent, a_res, a_desc, a_site) in enumerate(group):
            if not a_res:
                continue
            for (b_seq, b_parent, b_res, b_desc, b_site) in group[i + 1:]:
                shared = a_res & b_res
                if not shared:
                    continue
                if a_parent == b_parent:
                    continue  # sibling order is written in the parent
                if causally_ordered(a_seq, b_seq) \
                        or causally_ordered(b_seq, a_seq):
                    continue
                resource = sorted(a_desc[rid] for rid in shared)[0]
                pair = (a_site[:2], b_site[:2], resource)
                if pair in self._seen_pairs:
                    continue
                self._seen_pairs.add(pair)
                self.races.append(RaceReport(
                    time=self._group_time or 0.0,
                    resource=resource,
                    first=f"{a_site[2]}",
                    second=f"{b_site[2]}",
                    first_site=a_site[:2],
                    second_site=b_site[:2]))
                if len(self.races) >= self.max_reports:
                    return


# ------------------------------------------------------- lint integration


def reports_to_findings(reports: List[RaceReport]) -> List[Finding]:
    out = []
    for r in reports:
        path, line = r.first_site
        rel = path
        for marker in ("src/",):
            if marker in path:
                rel = path[path.index(marker):]
                break
        out.append(Finding(
            rule="event-race", file=rel, line=line,
            message=(f"same-timestamp race: {r.describe()}"),
            key=f"{r.first}|{r.second}|{r.resource}"))
    return out


def scan_for_races(duration_ms: float = 4000.0) -> List[Finding]:
    """Run the stock two-site update scenario with the detector on.

    This is the dynamic half of ``python -m repro.lint``: a small
    simulation of both commit protocols with the race detector attached,
    its reports folded into the normal findings stream.
    """
    from repro.config import SystemConfig
    from repro.core.outcomes import ProtocolKind
    from repro.system import CamelotSystem

    findings: List[Finding] = []
    for protocol in (ProtocolKind.TWO_PHASE, ProtocolKind.NON_BLOCKING):
        system = CamelotSystem(SystemConfig(sites={"a": 1, "b": 1}, seed=7))
        detector = RaceDetector()
        system.kernel.monitor = detector
        app = system.application("a")

        def workload(app: Any = app,
                     protocol: Any = protocol) -> Any:
            for i in range(3):
                tid = yield from app.begin(protocol=protocol)
                yield from app.write(tid, "server0@a", f"x{i}", i)
                yield from app.write(tid, "server0@b", f"y{i}", i)
                yield from app.commit(tid)

        system.run_process(workload(), timeout_ms=duration_ms)
        findings.extend(reports_to_findings(detector.finish()))
    # Two protocol passes can rediscover the same pair; dedupe on key.
    unique: Dict[str, Finding] = {}
    for f in findings:
        unique.setdefault(f.key, f)
    return list(unique.values())
