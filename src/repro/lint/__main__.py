"""CLI: ``python -m repro.lint``.

Examples::

    python -m repro.lint                       # static rules, text report
    python -m repro.lint --format json         # machine-readable (CI)
    python -m repro.lint --races               # + simulation race scan
    python -m repro.lint --rules wallclock,no-environ
    python -m repro.lint --update-baseline     # accept current findings
    python -m repro.lint path/to/tree          # lint a different tree

Exit status: 0 when no non-baselined findings, 1 otherwise, 2 on usage
errors.  The baseline (``lint-baseline.json`` at the repo root) carries
a justification per accepted finding; CI fails on anything new.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.lint.baseline import (
    DEFAULT_BASELINE_NAME,
    load_baseline,
    write_baseline,
)
from repro.lint.engine import run_lint
from repro.lint.findings import render_json, render_text


def _default_baseline() -> Optional[Path]:
    """Walk up from the package (then cwd) looking for the repo baseline."""
    import repro
    starts = [Path(repro.__file__).resolve().parent, Path.cwd()]
    for start in starts:
        for candidate in [start, *start.parents]:
            path = candidate / DEFAULT_BASELINE_NAME
            if path.is_file():
                return path
            if (candidate / "pyproject.toml").is_file():
                # Repo root reached; this is where a baseline would live.
                return path if path.is_file() else None
    return None


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="Codebase-aware determinism/protocol lint for repro.")
    parser.add_argument("paths", nargs="*",
                        help="tree(s) to lint (default: the repro package)")
    parser.add_argument("--format", choices=("text", "json"), default="text")
    parser.add_argument("--rules", default=None,
                        help="comma-separated rule ids (default: all)")
    parser.add_argument("--baseline", default=None,
                        help="baseline file (default: lint-baseline.json "
                             "at the repo root)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="report every finding, ignoring the baseline")
    parser.add_argument("--update-baseline", action="store_true",
                        help="accept all current findings into the baseline "
                             "(existing justifications are kept)")
    parser.add_argument("--races", action="store_true",
                        help="also run the simulation race detector "
                             "(same-timestamp event pairs on shared "
                             "ports/locks/WAL)")
    parser.add_argument("--verbose", action="store_true",
                        help="text format: also list baselined findings")
    parser.add_argument("--emit-graphs", metavar="DIR", default=None,
                        help="write extracted protocol transition graphs "
                             "(one JSON spec + Graphviz .dot per machine) "
                             "to DIR and exit")
    args = parser.parse_args(argv)

    if args.emit_graphs is not None:
        from repro.lint.engine import build_context
        from repro.lint.flow.protograph import emit_graphs
        if args.paths:
            root = Path(args.paths[0])
        else:
            import repro
            root = Path(repro.__file__).resolve().parent
        written = emit_graphs(build_context(root), Path(args.emit_graphs))
        for path in written:
            print(path)
        return 0

    rule_ids = ([r.strip() for r in args.rules.split(",") if r.strip()]
                if args.rules else None)
    if args.no_baseline:
        baseline_path: Optional[Path] = None
    elif args.baseline:
        baseline_path = Path(args.baseline)
    else:
        baseline_path = _default_baseline()

    extra = None
    if args.races:
        from repro.lint.races import scan_for_races
        extra = scan_for_races()

    roots = [Path(p) for p in args.paths] or [None]
    reports = []
    try:
        for root in roots:
            reports.append(run_lint(root=root, rule_ids=rule_ids,
                                    baseline_path=baseline_path,
                                    extra_findings=extra))
            extra = None  # race findings attach to the first tree only
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    report = reports[0]
    for other in reports[1:]:
        report.findings.extend(other.findings)
        report.baselined.extend(other.baselined)
        report.checked_files += other.checked_files

    if args.update_baseline:
        path = baseline_path or Path.cwd() / DEFAULT_BASELINE_NAME
        previous = load_baseline(path if path.is_file() else None)
        count = write_baseline(report.findings + report.baselined, path,
                               previous=previous)
        print(f"baseline written: {path} ({count} entries)")
        return 0

    if args.format == "json":
        print(render_json(report))
    else:
        print(render_text(report, verbose=args.verbose))
    return 0 if report.clean else 1


if __name__ == "__main__":
    sys.exit(main())
