"""Lint engine: parse the tree once, build cross-file facts, run rules.

The engine is what makes the rules *codebase-aware*: before any rule
runs it extracts, from the tree being linted,

- the protocol message classes declared in ``core/messages.py`` and the
  classes actually dispatched on (``isinstance``) anywhere in ``core/``,
- the ``CostModel`` dataclass fields and methods from ``config.py``,
- (when linting the live package) the set of fields actually covered by
  the bench cache's cost-model fingerprint, imported dynamically — so
  the "every referenced CostModel attribute is fingerprinted" rule
  checks the real cache, not a parallel reimplementation.

Rules receive one :class:`LintContext` and return findings; the engine
fills in default stable keys (the stripped source line) and applies the
baseline.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set

from repro.lint.baseline import apply_baseline, load_baseline
from repro.lint.findings import Finding, LintReport, source_line
from repro.lint.registry import all_rules

# Package subtrees whose code runs *inside* the simulation: the
# determinism rules (wall-clock, RNG, iteration order, environment)
# apply here.  bench/ and analysis/ run outside the sim clock and may
# legitimately read wall time (they time the harness itself).  chaos/
# qualifies because its schedules, oracles, and shrinker must be
# byte-deterministic for repros to replay.  obs/ runs inside the sim
# (the recorder is fed from instrumented substrates), so the same
# determinism rules apply there.
SIM_SCOPED_DIRS = ("sim", "core", "net", "mach", "log", "servers", "chaos",
                   "obs")
SIM_SCOPED_FILES = ("system.py", "config.py")


@dataclass
class FileInfo:
    """One parsed source file plus the paths rules need."""

    path: Path            # absolute
    rel: str              # display path (repo-relative when possible)
    sub: str              # path relative to the lint root (scoping key)
    source: str = ""
    lines: List[str] = field(default_factory=list)
    tree: Optional[ast.AST] = None

    @property
    def sim_scoped(self) -> bool:
        first = self.sub.split("/", 1)[0]
        return first in SIM_SCOPED_DIRS or self.sub in SIM_SCOPED_FILES


@dataclass
class LintContext:
    """Everything a rule may consult."""

    root: Path
    files: List[FileInfo] = field(default_factory=list)
    # ---- cross-file facts -------------------------------------------
    message_classes: Dict[str, int] = field(default_factory=dict)
    any_message_names: Set[str] = field(default_factory=set)
    handled_classes: Set[str] = field(default_factory=set)
    costmodel_fields: Set[str] = field(default_factory=set)
    costmodel_methods: Set[str] = field(default_factory=set)
    fingerprint_covered: Optional[Set[str]] = None
    # Cached whole-program model (built on demand by the flow rules via
    # :func:`repro.lint.flow.flow_program`; typed loosely to keep the
    # engine import-independent of the flow package).
    flow: Optional[object] = None

    def sim_files(self) -> Iterable[FileInfo]:
        return (f for f in self.files if f.sim_scoped)

    def file(self, sub: str) -> Optional[FileInfo]:
        for f in self.files:
            if f.sub == sub:
                return f
        return None

    def finding(self, info: FileInfo, node: ast.AST, rule_id: str,
                message: str, key: str = "") -> Finding:
        lineno = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(rule=rule_id, file=info.rel, line=lineno,
                       message=message, key=key, column=col)


def _display_rel(path: Path, sub: str) -> str:
    """Repo-relative display path: trim everything above ``src/``."""
    parts = path.resolve().parts
    if "src" in parts:
        idx = len(parts) - 1 - parts[::-1].index("src")
        return "/".join(parts[idx:])
    return sub


def collect_files(root: Path) -> List[FileInfo]:
    infos: List[FileInfo] = []
    for path in sorted(root.rglob("*.py")):
        if "__pycache__" in path.parts:
            continue
        sub = path.relative_to(root).as_posix()
        info = FileInfo(path=path, rel=_display_rel(path, sub), sub=sub)
        try:
            info.source = path.read_text()
            info.tree = ast.parse(info.source, filename=str(path))
            info.lines = info.source.splitlines()
        except (OSError, SyntaxError):
            info.tree = None
        infos.append(info)
    return infos


# ------------------------------------------------------ cross-file facts


def _message_facts(ctx: LintContext) -> None:
    """Declared message classes, the ANY_MESSAGE roster, and every class
    name dispatched on via ``isinstance`` anywhere under ``core/``."""
    info = ctx.file("core/messages.py")
    if info is not None and info.tree is not None:
        declared: Set[str] = {"ProtocolMessage"}
        for node in info.tree.body:
            if not isinstance(node, ast.ClassDef):
                continue
            bases = {b.id for b in node.bases if isinstance(b, ast.Name)}
            if bases & declared:
                declared.add(node.name)
                ctx.message_classes[node.name] = node.lineno
        for node in info.tree.body:
            if (isinstance(node, ast.Assign) and node.targets
                    and isinstance(node.targets[0], ast.Name)
                    and node.targets[0].id == "ANY_MESSAGE"
                    and isinstance(node.value, ast.Tuple)):
                ctx.any_message_names = {
                    e.id for e in node.value.elts if isinstance(e, ast.Name)}
    for f in ctx.files:
        if not f.sub.startswith("core/") or f.tree is None:
            continue
        for node in ast.walk(f.tree):
            if (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
                    and node.func.id == "isinstance" and len(node.args) == 2):
                target = node.args[1]
                names = ([target] if isinstance(target, ast.Name)
                         else list(target.elts)
                         if isinstance(target, ast.Tuple) else [])
                for n in names:
                    if isinstance(n, ast.Name):
                        ctx.handled_classes.add(n.id)


def _costmodel_facts(ctx: LintContext) -> None:
    info = ctx.file("config.py")
    if info is None or info.tree is None:
        return
    for node in info.tree.body:
        if isinstance(node, ast.ClassDef) and node.name == "CostModel":
            for stmt in node.body:
                if (isinstance(stmt, ast.AnnAssign)
                        and isinstance(stmt.target, ast.Name)):
                    ctx.costmodel_fields.add(stmt.target.id)
                elif isinstance(stmt, (ast.FunctionDef,
                                       ast.AsyncFunctionDef)):
                    ctx.costmodel_methods.add(stmt.name)


def _fingerprint_facts(ctx: LintContext) -> None:
    """When linting the installed package, ask the *real* bench cache
    which fields its fingerprint covers (no parallel reimplementation)."""
    try:
        import repro
        live_root = Path(repro.__file__).resolve().parent
        if ctx.root.resolve() != live_root:
            return
        from repro.bench.cache import _canonical
        from repro.config import PROFILES
        covered: Set[str] = set()
        for factory in PROFILES.values():
            blob = _canonical(factory())
            covered |= set(blob.get("fields", {}).keys())
        ctx.fingerprint_covered = covered
    except Exception:
        ctx.fingerprint_covered = None


def build_context(root: Path) -> LintContext:
    ctx = LintContext(root=root, files=collect_files(root))
    _message_facts(ctx)
    _costmodel_facts(ctx)
    _fingerprint_facts(ctx)
    return ctx


# ---------------------------------------------------------------- runner


def run_lint(root: Optional[Path] = None,
             rule_ids: Optional[Sequence[str]] = None,
             baseline_path: Optional[Path] = None,
             extra_findings: Optional[Iterable[Finding]] = None
             ) -> LintReport:
    """Lint ``root`` (default: the installed ``repro`` package).

    ``extra_findings`` lets dynamic passes (the race detector) feed the
    same report/baseline pipeline as the AST rules.
    """
    if root is None:
        import repro
        root = Path(repro.__file__).resolve().parent
    ctx = build_context(Path(root))
    rules = all_rules()
    if rule_ids is not None:
        unknown = set(rule_ids) - set(rules)
        if unknown:
            raise ValueError(f"unknown lint rule(s): {sorted(unknown)}")
        rules = {rid: rules[rid] for rid in rule_ids}

    findings: List[Finding] = []
    for rid in sorted(rules):
        findings.extend(rules[rid](ctx))
    if extra_findings:
        findings.extend(extra_findings)

    # Default stable keys: the stripped source line at the finding.
    keyed: List[Finding] = []
    by_rel = {f.rel: f for f in ctx.files}
    for f in findings:
        if not f.key:
            info = by_rel.get(f.file)
            line = source_line(info.lines, f.line) if info else None
            f = replace(f, key=line or f.message)
        keyed.append(f)

    baseline = load_baseline(baseline_path)
    new, suppressed = apply_baseline(keyed, baseline)
    return LintReport(findings=new, baselined=suppressed,
                      checked_files=len(ctx.files),
                      rules_run=sorted(rules))
