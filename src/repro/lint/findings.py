"""Finding record and report rendering (text + JSON).

A finding is one rule violation at one source location.  Its
``fingerprint`` is what the baseline file matches on: rule id, file
(repo-relative), and a *stable key* — by default the stripped source
line, so findings survive unrelated edits that shift line numbers.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import List, Optional


@dataclass(frozen=True)
class Finding:
    """One rule violation.

    ``key`` is the stable identity used for baselining; rules that can
    name a symbol (a message class, a CostModel attribute) should pass
    one explicitly, otherwise the engine fills in the stripped source
    line of ``line``.
    """

    rule: str
    file: str              # repo-relative posix path
    line: int
    message: str
    key: str = ""
    column: int = 0

    @property
    def fingerprint(self) -> str:
        payload = f"{self.rule}|{self.file}|{self.key or self.message}"
        return hashlib.sha256(payload.encode()).hexdigest()[:16]

    @property
    def location(self) -> str:
        return f"{self.file}:{self.line}"


@dataclass
class LintReport:
    """Everything one lint run produced, before/after baseline filtering."""

    findings: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    checked_files: int = 0
    rules_run: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.findings


def render_text(report: LintReport, verbose: bool = False) -> str:
    lines: List[str] = []
    for f in sorted(report.findings, key=lambda f: (f.file, f.line, f.rule)):
        lines.append(f"{f.location}: [{f.rule}] {f.message}")
    if verbose:
        for f in sorted(report.baselined, key=lambda f: (f.file, f.line)):
            lines.append(f"{f.location}: [{f.rule}] baselined: {f.message}")
    summary = (f"{len(report.findings)} finding(s), "
               f"{len(report.baselined)} baselined, "
               f"{report.checked_files} file(s) checked, "
               f"{len(report.rules_run)} rule(s)")
    lines.append(summary)
    return "\n".join(lines)


def _as_dict(f: Finding) -> dict:
    return {
        "rule": f.rule,
        "file": f.file,
        "line": f.line,
        "column": f.column,
        "message": f.message,
        "fingerprint": f.fingerprint,
    }


def render_json(report: LintReport) -> str:
    return json.dumps(
        {
            "findings": [_as_dict(f) for f in sorted(
                report.findings, key=lambda f: (f.file, f.line, f.rule))],
            "baselined": [_as_dict(f) for f in sorted(
                report.baselined, key=lambda f: (f.file, f.line, f.rule))],
            "checked_files": report.checked_files,
            "rules": sorted(report.rules_run),
            "clean": report.clean,
        },
        indent=2, sort_keys=False)


def source_line(source_lines: List[str], lineno: int) -> Optional[str]:
    """1-based line fetch used to build default finding keys."""
    if 1 <= lineno <= len(source_lines):
        return source_lines[lineno - 1].strip()
    return None
