"""Project-wide function index and call graph.

Builds, from the already-parsed :class:`~repro.lint.engine.FileInfo`
list, a :class:`Program`:

- every module-level function and every method as a :class:`FuncNode`
  (qualified name ``"<sub>::<Class>.<name>"``),
- every class as a :class:`ClassNode` with its method table, resolved
  base classes, and constructor-inferred attribute types,
- per-module symbol tables built from the import statements, so that
  ``from repro.core.effects import ForceLog`` and
  ``from .effects import ForceLog`` resolve to the same class, and
  ``from time import time as now`` normalizes calls on ``now`` to the
  external primitive ``time.time``.

Call sites are resolved conservatively: a call is only edged to a
callee the resolver can *name* (module function, ``self.method``,
``cls.method``, annotated/constructor-typed local or attribute,
``module.function``, class construction).  Anything else is dropped,
never guessed — a false edge would turn the downstream taint and
purity findings into noise.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.lint.engine import FileInfo

# Builtin callables that matter to the purity analysis even though they
# never appear in an import table.
_IO_BUILTINS = {"open", "input", "print", "exec", "eval", "__import__"}


def dotted_name(node: ast.AST) -> Optional[str]:
    """'a.b.c' for nested Name/Attribute chains, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


@dataclass
class ExternalRef:
    """A call (or attribute read) that leaves the linted tree, with the
    import-alias-normalized dotted name."""

    dotted: str
    node: ast.AST
    is_call: bool
    argless: bool = False


@dataclass
class CallEdge:
    """One resolved internal call site."""

    callee: str                  # FuncNode qname, or ClassNode qname for "init"
    node: ast.Call
    kind: str                    # "func" | "init"


@dataclass
class FuncNode:
    qname: str
    module: str                  # FileInfo.sub
    cls: Optional[str]           # enclosing class name, if a method
    name: str
    node: ast.AST                # FunctionDef | AsyncFunctionDef
    info: FileInfo
    is_classmethod: bool = False
    is_staticmethod: bool = False
    calls: List[CallEdge] = field(default_factory=list)
    externals: List[ExternalRef] = field(default_factory=list)


@dataclass
class ClassNode:
    qname: str                   # "<sub>::<name>"
    module: str
    name: str
    node: ast.ClassDef
    info: FileInfo
    methods: Dict[str, str] = field(default_factory=dict)   # name -> func qname
    attr_types: Dict[str, str] = field(default_factory=dict)  # self.x -> class qname
    bases: List[str] = field(default_factory=list)          # resolved class qnames


# Symbol table entries: (kind, payload)
#   ("func", qname) ("class", qname) ("module", sub) ("external", dotted)
Symbol = Tuple[str, str]


@dataclass
class Program:
    """The whole-program model the flow analyses consume."""

    files: List[FileInfo]
    funcs: Dict[str, FuncNode] = field(default_factory=dict)
    classes: Dict[str, ClassNode] = field(default_factory=dict)
    module_symbols: Dict[str, Dict[str, Symbol]] = field(default_factory=dict)
    module_lookup: Dict[str, str] = field(default_factory=dict)  # dotted -> sub

    # ------------------------------------------------------------ lookups

    def func(self, qname: str) -> Optional[FuncNode]:
        return self.funcs.get(qname)

    def cls(self, qname: str) -> Optional[ClassNode]:
        return self.classes.get(qname)

    def class_method(self, class_qname: str, name: str,
                     _depth: int = 0) -> Optional[str]:
        """Method lookup through the (project-internal) MRO, depth-capped."""
        cls = self.classes.get(class_qname)
        if cls is None or _depth > 4:
            return None
        if name in cls.methods:
            return cls.methods[name]
        for base in cls.bases:
            found = self.class_method(base, name, _depth + 1)
            if found is not None:
                return found
        return None

    def callees(self, qname: str) -> Iterable[str]:
        """Callee func qnames of one function (class edges follow to
        ``__init__`` when it exists)."""
        fn = self.funcs.get(qname)
        if fn is None:
            return
        for edge in fn.calls:
            if edge.kind == "func":
                yield edge.callee
            else:
                init = self.class_method(edge.callee, "__init__")
                if init is not None:
                    yield init

    def module_classes(self, sub: str) -> List[ClassNode]:
        return [c for c in self.classes.values() if c.module == sub]

    def resolve_symbol(self, sub: str, name: str,
                       _depth: int = 0) -> Optional[Symbol]:
        """Chase a name through module symbol tables (re-exports)."""
        table = self.module_symbols.get(sub)
        if table is None or _depth > 3:
            return None
        return table.get(name)

    def resolve_module(self, modpath: str, level: int,
                       current_sub: str) -> Optional[str]:
        """File sub for an imported module path, or None if external.

        Absolute paths also retry with the first component stripped, so
        linting a tree rooted *inside* the package (``repro.core.x`` vs
        ``core/x.py``) still resolves.
        """
        lookup = self.module_lookup
        if level > 0:
            base = current_sub.rsplit("/", 1)[0] if "/" in current_sub else ""
            for _ in range(level - 1):
                base = base.rsplit("/", 1)[0] if "/" in base else ""
            parts = ([base.replace("/", ".")] if base else [])
            if modpath:
                parts.append(modpath)
            dotted = ".".join(parts)
            return lookup.get(dotted)
        if modpath in lookup:
            return lookup[modpath]
        head, _, rest = modpath.partition(".")
        if rest and rest in lookup:
            return lookup[rest]
        return None


# ---------------------------------------------------------------- builder


def _module_dotted_candidates(sub: str) -> List[str]:
    """Dotted names under which a file sub is importable."""
    if sub.endswith("/__init__.py"):
        return [sub[: -len("/__init__.py")].replace("/", ".")]
    if sub == "__init__.py":
        return []
    return [sub[:-3].replace("/", ".")] if sub.endswith(".py") else []


class _Builder:
    def __init__(self, files: Sequence[FileInfo]) -> None:
        self.program = Program(files=list(files))
        for info in files:
            for dotted in _module_dotted_candidates(info.sub):
                self.program.module_lookup[dotted] = info.sub

    # ------------------------------------------------------ module paths

    def resolve_module(self, modpath: str, level: int,
                       current_sub: str) -> Optional[str]:
        return self.program.resolve_module(modpath, level, current_sub)

    # ---------------------------------------------------------- indexing

    def index_defs(self) -> None:
        for info in self.program.files:
            if info.tree is None:
                continue
            table: Dict[str, Symbol] = {}
            self.program.module_symbols[info.sub] = table
            for node in info.tree.body:
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qname = f"{info.sub}::{node.name}"
                    self.program.funcs[qname] = FuncNode(
                        qname=qname, module=info.sub, cls=None,
                        name=node.name, node=node, info=info)
                    table[node.name] = ("func", qname)
                elif isinstance(node, ast.ClassDef):
                    self._index_class(info, node, table)

    def _index_class(self, info: FileInfo, node: ast.ClassDef,
                     table: Dict[str, Symbol]) -> None:
        qname = f"{info.sub}::{node.name}"
        cls = ClassNode(qname=qname, module=info.sub, name=node.name,
                        node=node, info=info)
        self.program.classes[qname] = cls
        table[node.name] = ("class", qname)
        for item in node.body:
            if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            mq = f"{info.sub}::{node.name}.{item.name}"
            deco = {dotted_name(d) for d in item.decorator_list}
            fn = FuncNode(qname=mq, module=info.sub, cls=node.name,
                          name=item.name, node=item, info=info,
                          is_classmethod="classmethod" in deco,
                          is_staticmethod="staticmethod" in deco)
            self.program.funcs[mq] = fn
            cls.methods[item.name] = mq

    # ----------------------------------------------------------- imports

    def resolve_imports(self) -> None:
        for info in self.program.files:
            if info.tree is None:
                continue
            table = self.program.module_symbols.setdefault(info.sub, {})
            for node in ast.walk(info.tree):
                if isinstance(node, ast.Import):
                    for alias in node.names:
                        self._bind_import(table, info.sub, alias)
                elif isinstance(node, ast.ImportFrom):
                    self._bind_import_from(table, info.sub, node)

    def _bind_import(self, table: Dict[str, Symbol], sub: str,
                     alias: ast.alias) -> None:
        target = self.resolve_module(alias.name, 0, sub)
        bound = alias.asname or alias.name.split(".", 1)[0]
        if alias.asname is not None:
            if target is not None:
                table[bound] = ("module", target)
            else:
                table[bound] = ("external", alias.name)
        else:
            # `import a.b` binds `a`; a bare internal top package is
            # rare, so treat the head as itself (external names pass
            # through unchanged, which is the identity normalization).
            head_target = self.resolve_module(bound, 0, sub)
            if head_target is not None:
                table[bound] = ("module", head_target)
            else:
                table[bound] = ("external", bound)

    def _bind_import_from(self, table: Dict[str, Symbol], sub: str,
                          node: ast.ImportFrom) -> None:
        modpath = node.module or ""
        mod_sub = self.resolve_module(modpath, node.level, sub)
        for alias in node.names:
            if alias.name == "*":
                continue
            bound = alias.asname or alias.name
            # `from pkg import submodule` binds a module, not a symbol.
            as_module = self.resolve_module(
                f"{modpath}.{alias.name}" if modpath else alias.name,
                node.level, sub)
            if as_module is not None:
                table[bound] = ("module", as_module)
                continue
            if mod_sub is None:
                table[bound] = ("external", f"{modpath}.{alias.name}"
                                if modpath else alias.name)
                continue
            symbol = self.program.resolve_symbol(mod_sub, alias.name)
            if symbol is not None:
                table[bound] = symbol
            # Unresolvable re-export: leave unbound (never guess).

    # ------------------------------------------------------- class types

    def infer_class_facts(self) -> None:
        for cls in self.program.classes.values():
            table = self.program.module_symbols.get(cls.module, {})
            for base in cls.node.bases:
                name = dotted_name(base)
                if name is None:
                    continue
                sym = table.get(name.split(".", 1)[0])
                if sym is not None and sym[0] == "class":
                    cls.bases.append(sym[1])
                elif name in {n for n in table} and table[name][0] == "class":
                    cls.bases.append(table[name][1])
            self._infer_attr_types(cls, table)

    def _ann_class(self, ann: Optional[ast.AST],
                   table: Dict[str, Symbol]) -> Optional[str]:
        """First project class named anywhere inside an annotation
        (handles ``Optional[QuorumSpec]`` and string annotations)."""
        if ann is None:
            return None
        if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
            try:
                ann = ast.parse(ann.value, mode="eval").body
            except SyntaxError:
                return None
        for node in ast.walk(ann):
            name = None
            if isinstance(node, ast.Name):
                name = node.id
            elif isinstance(node, ast.Attribute):
                name = node.attr
            if name is None:
                continue
            sym = table.get(name)
            if sym is not None and sym[0] == "class":
                return sym[1]
        return None

    def _value_class(self, value: ast.AST, table: Dict[str, Symbol],
                     param_types: Dict[str, str]) -> Optional[str]:
        """Class qname a ``self.x = <value>`` assignment implies."""
        if isinstance(value, ast.Name):
            return param_types.get(value.id)
        if isinstance(value, ast.BoolOp):
            for v in value.values:
                t = self._value_class(v, table, param_types)
                if t is not None:
                    return t
            return None
        if isinstance(value, ast.Call):
            name = dotted_name(value.func)
            if name is None:
                return None
            head = name.split(".", 1)[0]
            sym = table.get(head)
            if sym is None:
                return None
            if sym[0] == "class":
                # Ctor, or a classmethod constructor (Cls.majority(...)).
                return sym[1]
            if sym[0] == "module" and "." in name:
                inner = self.program.resolve_symbol(sym[1],
                                                    name.split(".")[1])
                if inner is not None and inner[0] == "class":
                    return inner[1]
        return None

    def _infer_attr_types(self, cls: ClassNode,
                          table: Dict[str, Symbol]) -> None:
        for item in cls.node.body:
            if isinstance(item, ast.AnnAssign) and \
                    isinstance(item.target, ast.Name):
                t = self._ann_class(item.annotation, table)
                if t is not None:
                    cls.attr_types[item.target.id] = t
        init_q = cls.methods.get("__init__")
        init = self.program.funcs.get(init_q) if init_q else None
        if init is None or not isinstance(
                init.node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return
        param_types: Dict[str, str] = {}
        args = init.node.args
        for a in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            t = self._ann_class(a.annotation, table)
            if t is not None:
                param_types[a.arg] = t
        for node in ast.walk(init.node):
            target: Optional[ast.AST] = None
            value: Optional[ast.AST] = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            elif isinstance(node, ast.AnnAssign):
                target, value = node.target, node.value
                if isinstance(node, ast.AnnAssign):
                    t_ann = self._ann_class(node.annotation, table)
                    if t_ann is not None and isinstance(target, ast.Attribute) \
                            and isinstance(target.value, ast.Name) \
                            and target.value.id == "self":
                        cls.attr_types.setdefault(target.attr, t_ann)
            if target is None or value is None:
                continue
            if isinstance(target, ast.Attribute) \
                    and isinstance(target.value, ast.Name) \
                    and target.value.id == "self":
                t = self._value_class(value, table, param_types)
                if t is not None:
                    cls.attr_types.setdefault(target.attr, t)

    # ------------------------------------------------------ call linking

    def link_calls(self) -> None:
        for fn in self.program.funcs.values():
            self._link_one(fn)

    def _local_types(self, fn: FuncNode,
                     table: Dict[str, Symbol]) -> Dict[str, str]:
        types: Dict[str, str] = {}
        node = fn.node
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return types
        args = node.args
        for a in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            t = self._ann_class(a.annotation, table)
            if t is not None:
                types[a.arg] = t
        cls = self.program.classes.get(f"{fn.module}::{fn.cls}") \
            if fn.cls else None
        if cls is not None and not fn.is_staticmethod:
            first = (args.posonlyargs or args.args)
            if first:
                types[first[0].arg] = cls.qname
        for n in ast.walk(node):
            if isinstance(n, ast.Assign) and len(n.targets) == 1 \
                    and isinstance(n.targets[0], ast.Name):
                t = self._value_class(n.value, table, types)
                if t is not None:
                    types[n.targets[0].id] = t
            elif isinstance(n, ast.AnnAssign) \
                    and isinstance(n.target, ast.Name):
                t = self._ann_class(n.annotation, table)
                if t is not None:
                    types[n.target.id] = t
        return types

    def _normalize_external(self, dotted: str,
                            table: Dict[str, Symbol]) -> Optional[str]:
        """Rewrite the head of a dotted usage through its import alias."""
        head, _, rest = dotted.partition(".")
        sym = table.get(head)
        if sym is None:
            return None
        if sym[0] == "external":
            return f"{sym[1]}.{rest}" if rest else sym[1]
        return None

    def _link_one(self, fn: FuncNode) -> None:
        table = self.program.module_symbols.get(fn.module, {})
        types = self._local_types(fn, table)
        cls = self.program.classes.get(f"{fn.module}::{fn.cls}") \
            if fn.cls else None

        def resolve_call(call: ast.Call) -> None:
            name = dotted_name(call.func)
            if name is None:
                return
            argless = not call.args and not call.keywords
            parts = name.split(".")
            head = parts[0]
            # Plain name: module symbol or IO builtin.
            if len(parts) == 1:
                sym = table.get(head)
                if sym is None:
                    if head in _IO_BUILTINS:
                        fn.externals.append(ExternalRef(head, call, True,
                                                        argless))
                    return
                if sym[0] == "func":
                    fn.calls.append(CallEdge(sym[1], call, "func"))
                elif sym[0] == "class":
                    fn.calls.append(CallEdge(sym[1], call, "init"))
                elif sym[0] == "external":
                    fn.externals.append(ExternalRef(sym[1], call, True,
                                                    argless))
                return
            # self.m(...) / cls.m(...) / typed_local.m(...)
            owner: Optional[str] = None
            if head in types and len(parts) == 2:
                owner = types[head]
            elif head in types and len(parts) == 3 and cls is not None \
                    and types[head] == cls.qname:
                # self.attr.m(...): typed attribute of our own class.
                attr_cls = cls.attr_types.get(parts[1])
                if attr_cls is not None:
                    mq = self.program.class_method(attr_cls, parts[2])
                    if mq is not None:
                        fn.calls.append(CallEdge(mq, call, "func"))
                return
            if owner is not None:
                mq = self.program.class_method(owner, parts[1])
                if mq is not None:
                    fn.calls.append(CallEdge(mq, call, "func"))
                return
            # module.f(...) / ClassName.m(...) / external alias chain.
            sym = table.get(head)
            if sym is None:
                return
            if sym[0] == "module":
                inner = self.program.resolve_symbol(sym[1], parts[1])
                if inner is None:
                    return
                if inner[0] == "func" and len(parts) == 2:
                    fn.calls.append(CallEdge(inner[1], call, "func"))
                elif inner[0] == "class":
                    if len(parts) == 2:
                        fn.calls.append(CallEdge(inner[1], call, "init"))
                    else:
                        mq = self.program.class_method(inner[1], parts[2])
                        if mq is not None:
                            fn.calls.append(CallEdge(mq, call, "func"))
            elif sym[0] == "class":
                mq = self.program.class_method(sym[1], parts[1])
                if mq is not None:
                    fn.calls.append(CallEdge(mq, call, "func"))
            elif sym[0] == "external":
                rest = ".".join(parts[1:])
                fn.externals.append(ExternalRef(f"{sym[1]}.{rest}", call,
                                                True, argless))

        seen_attr_lines: Set[Tuple[int, str]] = set()
        for n in ast.walk(fn.node):
            if isinstance(n, ast.Call):
                resolve_call(n)
            elif isinstance(n, ast.Attribute):
                # Non-call attribute reads: only environment access is
                # interesting (``os.environ[...]`` and friends).
                name = dotted_name(n)
                if name is None:
                    continue
                normalized = self._normalize_external(name, table) or name
                if normalized.startswith(("os.environ", "os.environb")):
                    key = (getattr(n, "lineno", 0), normalized)
                    if key not in seen_attr_lines:
                        seen_attr_lines.add(key)
                        fn.externals.append(ExternalRef(normalized, n, False))


def build_program(files: Sequence[FileInfo]) -> Program:
    builder = _Builder(files)
    builder.index_defs()
    builder.resolve_imports()
    builder.infer_class_facts()
    builder.link_calls()
    return builder.program
