"""Interprocedural determinism taint (rule ``flow-determinism``).

The per-file ``wallclock`` / ``unseeded-random`` / ``env-read`` rules
flag nondeterministic primitives *inside* sim-scoped files.  What they
cannot see is a helper one module away::

    # analysis/util.py (not sim-scoped -> per-file rules stay silent)
    def stamp() -> float:
        return time.time()

    # sim/kernel.py (sim-scoped)
    self.t0 = stamp()          # nondeterminism smuggled in

This analysis marks every function that *itself* reads a
nondeterministic primitive (wall clock, global/unseeded RNG,
environment), propagates the taint over the project call graph to a
least fixed point, and then flags each call site in sim-scoped code
whose resolved callee is tainted and lives in a module the per-file
rules do not cover.  Each finding carries the full witness chain down
to the primitive.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.lint.engine import LintContext
from repro.lint.findings import Finding
from repro.lint.flow.callgraph import FuncNode, Program
# The primitive vocabularies are shared with the per-file rules so the
# two layers can never disagree about what "nondeterministic" means.
from repro.lint.rules import _GLOBAL_RANDOM_FNS, _WALLCLOCK


def _own_primitive(fn: FuncNode) -> Optional[str]:
    """The nondeterministic primitive this function reads directly."""
    for ref in fn.externals:
        d = ref.dotted
        if d in _WALLCLOCK:
            return f"{d}()"
        if d.startswith("random.") and ref.is_call \
                and d.split(".", 1)[1] in _GLOBAL_RANDOM_FNS:
            return f"{d}()"
        if d in ("random.Random", "Random") and ref.is_call and ref.argless:
            return "Random() without a seed"
        if d == "os.getenv" or d.startswith(("os.environ", "os.environb")):
            return d
    return None


# Witness: qname -> ("prim", detail) | ("call", callee_qname)
_Why = Tuple[str, str]


def _propagate(program: Program) -> Dict[str, _Why]:
    tainted: Dict[str, _Why] = {}
    for qname, fn in program.funcs.items():
        prim = _own_primitive(fn)
        if prim is not None:
            tainted[qname] = ("prim", prim)
    changed = True
    while changed:
        changed = False
        for qname in program.funcs:
            if qname in tainted:
                continue
            for callee in program.callees(qname):
                if callee in tainted:
                    tainted[qname] = ("call", callee)
                    changed = True
                    break
    return tainted


def chain(tainted: Dict[str, _Why], qname: str, limit: int = 12) -> str:
    parts: List[str] = []
    cur: Optional[str] = qname
    for _ in range(limit):
        if cur is None or cur not in tainted:
            break
        kind, detail = tainted[cur]
        parts.append(cur.split("::")[-1])
        if kind == "prim":
            parts.append(detail)
            cur = None
        else:
            cur = detail
    return " -> ".join(parts)


def run(ctx: LintContext, program: Program) -> List[Finding]:
    tainted = _propagate(program)
    out: List[Finding] = []
    for fn in program.funcs.values():
        if not fn.info.sim_scoped:
            continue
        for edge in fn.calls:
            if edge.kind == "init":
                init = program.class_method(edge.callee, "__init__")
                callee = init if init is not None else None
            else:
                callee = edge.callee
            if callee is None or callee not in tainted:
                continue
            callee_fn = program.funcs[callee]
            if callee_fn.info.sim_scoped:
                # In-scope primitives and helpers are the per-file
                # rules' territory; flagging them here would duplicate
                # every finding.
                continue
            witness = chain(tainted, callee)
            out.append(ctx.finding(
                fn.info, edge.node, "flow-determinism",
                f"{fn.qname.split('::')[-1]} (sim-scoped) calls "
                f"nondeterministic {witness}; route through the seeded "
                f"RngStreams / virtual clock instead",
                key=f"{fn.qname}->{callee}"))
    return out
