"""Registration of the four whole-program flow rules.

Each rule is a thin adapter: build (or reuse) the shared
:class:`~repro.lint.flow.callgraph.Program` for the tree being linted,
then hand it to the analysis module.  Keeping registration separate
from the analyses lets tests drive ``taint.run`` / ``purity.run`` /
``forcepath.run`` / ``protograph.run`` directly on synthetic trees
without touching the global registry.
"""

from __future__ import annotations

from typing import List

from repro.lint.engine import LintContext
from repro.lint.findings import Finding
from repro.lint.flow import flow_program
from repro.lint.flow import forcepath as _forcepath
from repro.lint.flow import livefence as _livefence
from repro.lint.flow import protograph as _protograph
from repro.lint.flow import purity as _purity
from repro.lint.flow import taint as _taint
from repro.lint.registry import rule


@rule("flow-determinism",
      "sim-scoped code must not reach wall-clock/RNG/env through helpers "
      "in other modules (interprocedural taint)")
def check_flow_determinism(ctx: LintContext) -> List[Finding]:
    return _taint.run(ctx, flow_program(ctx))


@rule("flow-sansio-purity",
      "core/ protocol modules: import fence, no reachable IO primitive, "
      "no host resources in machine constructors")
def check_flow_sansio_purity(ctx: LintContext) -> List[Finding]:
    return _purity.run(ctx, flow_program(ctx))


@rule("flow-force-discipline",
      "every CFG path that sends a COMMIT/vote-carrying message must be "
      "dominated by a log force, quorum, or durable-state guard")
def check_flow_force_discipline(ctx: LintContext) -> List[Finding]:
    return _forcepath.run(ctx, flow_program(ctx))


@rule("live-io-fence",
      "asyncio/socket/selectors/os.fsync may appear only under repro/live: "
      "the live substrate owns real IO, everything else stays sans-IO")
def check_live_io_fence(ctx: LintContext) -> List[Finding]:
    return _livefence.run(ctx)


@rule("flow-protocol-graph",
      "extract (state, input) -> (state', effects, forces) tables; flag "
      "unreachable/dead-end states and count drift vs the analytic model")
def check_flow_protocol_graph(ctx: LintContext) -> List[Finding]:
    return _protograph.run(ctx, flow_program(ctx))
