"""Static protocol transition-graph extraction (rule ``flow-protocol-graph``).

The protocol machines *are* transition systems; this module recovers
them from source.  Every enumerated CFG path through a machine entry
method becomes one row

    (state, input) -> (state', effects, forces)

where the input is the dispatched message class, a timer/log token, or
the entry name itself.  The rows feed four artifacts:

- machine-readable specs (``--emit-graphs`` writes one JSON per
  machine) plus Graphviz ``.dot`` renderings;
- an **unreachable-state** check: an enum member of a ``*State`` class
  that no statement in the tree ever assigns is dead protocol surface;
- a **dead-end** check: a non-terminal state that is entered somewhere
  but never consulted by any guard can never be left deliberately;
- an **extraction self-check**: every message class a machine
  ``isinstance``-dispatches on must surface as a transition input —
  if not, the extractor (not the machine) lost a row;
- a **count cross-check**: a deterministic walk of the extracted rows
  replays one write transaction coordinator-against-subordinate and
  compares the forced-write and datagram tallies with the closed-form
  :func:`repro.analysis.static_analysis.path_counts` — the paper's §4.3
  figures (optimized 2PC: 2 forces / 3 datagrams; non-blocking:
  4 / 5).  The protocol code and the analytic model can no longer
  drift apart silently.

The walk is *static*: it never imports or executes protocol code.  It
evaluates guard atoms against a small abstract machine state (current
state enum, votes seen, replication count) and treats anything it
cannot decide as unknown, preferring the most-determined admissible
path.  See DESIGN.md for the soundness limits shared with the rest of
the flow package.
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass, field
from pathlib import Path as FsPath
from typing import Dict, List, Optional, Set, Tuple

from repro.lint.engine import LintContext
from repro.lint.findings import Finding
from repro.lint.flow import cfg
from repro.lint.flow.callgraph import ClassNode, Program, dotted_name
from repro.lint.flow.forcepath import entry_paths, machine_classes

# ----------------------------------------------------------- transitions


@dataclass(frozen=True)
class Transition:
    """One extracted row of a machine's transition table."""

    machine: str
    method: str
    input: str            # "start" | message class | "forced:TOK" | ...
    src: str              # state member or "*"
    dst: str              # state member (src when unchanged)
    effects: Tuple[str, ...]
    forces: int
    raised: bool
    guards: Tuple[str, ...]


def _token_term(text: str) -> Optional[str]:
    """A token value out of a guard term: a string literal or the name
    of an ALL_CAPS module constant (how the tree spells its tokens)."""
    if len(text) >= 2 and text[0] in "'\"" and text[-1] == text[0]:
        return text[1:-1]
    if text.replace("_", "").isupper() and "." not in text:
        return text
    return None


def _token_of(path: cfg.Path, param: Optional[str]) -> Optional[str]:
    if param is None:
        return None
    for a in path.facts:
        if a.kind == "cmp" and a.positive and a.op in ("==", "is") \
                and a.lhs == param:
            lit = _token_term(a.rhs)
            if lit is not None:
                return lit
    return None


def _input_label(method: str, path: cfg.Path, param: Optional[str],
                 message_names: Set[str]) -> str:
    if method == "start":
        return "start"
    if method == "on_local_prepared":
        return "local_prepared"
    if method in ("on_log_forced", "on_log_durable", "on_timer"):
        tag = {"on_log_forced": "forced", "on_log_durable": "durable",
               "on_timer": "timer"}[method]
        tok = _token_of(path, param)
        return f"{tag}:{tok}" if tok else f"{tag}:*"
    if method == "on_message":
        for a in path.facts:
            if a.kind == "isinstance" and a.positive:
                name = a.rhs.strip("()").split(",")[0].strip()
                if not message_names or name in message_names:
                    return name
        return "message:*"
    return method


def _src_state(path: cfg.Path) -> str:
    members: Set[str] = set()
    for a in cfg.entry_state_atoms(path):
        if not a.positive or a.lhs != "self.state":
            continue
        if a.kind == "cmp" and a.op in ("is", "=="):
            members.add(a.rhs.rsplit(".", 1)[-1])
    return members.pop() if len(members) == 1 else "*"


def _effect_label(ev: cfg.EffectEv) -> str:
    if ev.kind in cfg.SEND_KINDS and ev.message_cls:
        return f"{ev.kind}({ev.message_cls})"
    if ev.kind in ("ForceLog", "WriteLog") and ev.token:
        return f"{ev.kind}[{ev.token}]"
    return ev.kind


def extract(program: Program, cls: ClassNode,
            paths: Dict[str, List[cfg.Path]],
            message_names: Set[str]) -> List[Transition]:
    rows: List[Transition] = []
    for method, plist in sorted(paths.items()):
        fn = program.funcs[cls.methods[method]]
        param = cfg.first_param(fn)
        for path in plist:
            src = _src_state(path)
            dst = src
            effects: List[str] = []
            forces = 0
            for ev in path.events:
                if isinstance(ev, cfg.StateEv):
                    if ev.attr == "state":
                        dst = ev.member
                elif isinstance(ev, cfg.EffectEv):
                    effects.append(_effect_label(ev))
                    if ev.kind == "ForceLog":
                        forces += 1
            if not effects and dst == src and not path.raised:
                continue
            rows.append(Transition(
                machine=cls.name, method=method,
                input=_input_label(method, path, param, message_names),
                src=src, dst=dst, effects=tuple(effects), forces=forces,
                raised=path.raised,
                guards=tuple(sorted(a.render() for a in path.facts))))
    return rows


# ------------------------------------------------------ spec / graphviz


def _state_enum(program: Program, cls: ClassNode) -> Tuple[str, List[str]]:
    """(enum class name, members) for a machine's ``self.state`` enum."""
    init_q = cls.methods.get("__init__")
    enum_name = ""
    if init_q is not None:
        for attr, ecls, _member, _n in cfg.enum_assign_sites(
                program.funcs[init_q].node):
            if attr == "state":
                enum_name = ecls
                break
    members: List[str] = []
    if enum_name:
        for other in program.classes.values():
            if other.module == cls.module and other.name == enum_name:
                for stmt in other.node.body:
                    if isinstance(stmt, ast.Assign):
                        for t in stmt.targets:
                            if isinstance(t, ast.Name) \
                                    and not t.id.startswith("_"):
                                members.append(t.id)
    return enum_name, members


def _initial_state(program: Program, cls: ClassNode) -> Optional[str]:
    init_q = cls.methods.get("__init__")
    if init_q is None:
        return None
    for attr, _ecls, member, _n in cfg.enum_assign_sites(
            program.funcs[init_q].node):
        if attr == "state":
            return member
    return None


def spec(program: Program, cls: ClassNode,
         rows: List[Transition]) -> Dict[str, object]:
    enum_name, members = _state_enum(program, cls)
    return {
        "machine": cls.name,
        "module": cls.module,
        "state_enum": enum_name,
        "states": members,
        "initial": _initial_state(program, cls),
        "transitions": [
            {"input": r.input, "src": r.src, "dst": r.dst,
             "effects": list(r.effects), "forces": r.forces,
             "raises": r.raised}
            for r in rows],
    }


def to_dot(machine_spec: Dict[str, object]) -> str:
    name = machine_spec["machine"]
    lines = [f'digraph "{name}" {{',
             '  rankdir=LR; node [shape=box, fontname="monospace"];']
    initial = machine_spec.get("initial")
    if initial:
        lines.append(f'  "{initial}" [style=bold];')
    seen: Set[Tuple[str, str, str]] = set()
    for row in machine_spec["transitions"]:          # type: ignore[union-attr]
        label = row["input"]
        if row["forces"]:
            label += f" / {row['forces']}F"
        sends = [e for e in row["effects"] if "(" in e]
        if sends:
            label += " / " + ", ".join(
                e.split("(", 1)[1].rstrip(")") for e in sends)
        if row["raises"]:
            label += " / raise"
        dedup = (row["src"], row["dst"], label)
        if dedup in seen:
            continue
        seen.add(dedup)
        lines.append(f'  "{row["src"]}" -> "{row["dst"]}" '
                     f'[label="{label}"];')
    lines.append("}")
    return "\n".join(lines)


def emit_graphs(ctx: LintContext, outdir: FsPath) -> List[FsPath]:
    """Write per-machine JSON specs and .dot files; returns the paths."""
    from repro.lint.flow import flow_program
    program = flow_program(ctx)
    effect_names = cfg.effect_names_for(program)
    message_names = set(ctx.message_classes)
    outdir.mkdir(parents=True, exist_ok=True)
    written: List[FsPath] = []
    cache: Dict[str, List[cfg.Path]] = {}
    for cls in machine_classes(program):
        paths = entry_paths(program, cls, effect_names, cache)
        rows = extract(program, cls, paths, message_names)
        mspec = spec(program, cls, rows)
        jpath = outdir / f"{cls.name}.json"
        jpath.write_text(json.dumps(mspec, indent=2) + "\n")
        dpath = outdir / f"{cls.name}.dot"
        dpath.write_text(to_dot(mspec) + "\n")
        written.extend([jpath, dpath])
    return written


# ------------------------------------------------- happy-path count walk


@dataclass
class _Machine:
    """Abstract runtime state for the deterministic walk."""

    name: str
    cls: ClassNode
    paths: Dict[str, List[cfg.Path]]
    params: Dict[str, Optional[str]]
    state: Optional[str] = None
    started: bool = False
    local_vote_seen: bool = False
    outcome_set: bool = False
    votes_received: int = 0
    replicated: int = 0
    complete: bool = False
    local_commit: bool = False


@dataclass
class _Delivery:
    param: Optional[str]
    msg_cls: Optional[str] = None
    kwargs: Dict[str, str] = field(default_factory=dict)
    token: Optional[str] = None
    vote: Optional[str] = None


_TRUTHY_TRUE = {"self.update_subs", "self.subordinates", "self.update_sites",
                "targets", "remote", "self.notify_targets", "dsts",
                "self.sites"}
_TRUTHY_FALSE = {"self.use_multicast", "self.already_pledged",
                 "self.remote_acceptors"}
_IN_TRUE = {"targets", "self.subordinates", "self.replication_targets",
            "self.sites", "self.update_sites"}
_IN_FALSE = {"self.votes", "self.outcome_acks", "self.replicated"}
_LEN_FIXED = {"len(self.subordinates)": 1, "len(self.sites)": 2}
_LITERALISH = ("Vote.", "Outcome.", "True", "False", "None", "'", '"')


def _eval_base(a: cfg.Atom, m: _Machine, d: _Delivery,
               n_subs: int) -> Optional[bool]:
    lhs, rhs = a.lhs, a.rhs
    # --- self.state (reached only via entry_state_atoms) -------------
    if lhs == "self.state":
        if m.state is None:
            return None
        if a.kind == "cmp" and a.op in ("is", "=="):
            return rhs.rsplit(".", 1)[-1] == m.state
        if a.kind == "in":
            members = [p.rsplit(".", 1)[-1].strip()
                       for p in rhs.strip("()").split(",") if p.strip()]
            return m.state in members
        return None
    # --- quorum -------------------------------------------------------
    if "can_commit(" in lhs:
        return m.replicated >= 2
    # --- delivered token / vote / message fields ----------------------
    if d.param is not None:
        if lhs == d.param and a.kind == "cmp":
            if d.token is not None:
                lit = _token_term(rhs)
                return lit == d.token if lit is not None else None
            if d.vote is not None and rhs.startswith("Vote."):
                return rhs == d.vote
        if a.kind == "isinstance" and lhs == d.param \
                and d.msg_cls is not None:
            names = [p.strip() for p in rhs.strip("()").split(",")]
            return d.msg_cls in names
        if lhs.startswith(d.param + "."):
            fld = lhs[len(d.param) + 1:]
            val = d.kwargs.get(fld)
            if a.kind == "truthy":
                if val == "True":
                    return True
                if val in ("False", "None"):
                    return False
                return None
            if a.kind == "cmp" and val is not None:
                if val == rhs:
                    return True
                if val.startswith(_LITERALISH) and rhs.startswith(_LITERALISH):
                    return False
                return None
    # --- membership tables --------------------------------------------
    if a.kind == "in":
        if rhs in _IN_TRUE:
            return True
        if rhs in _IN_FALSE:
            return False
        return None
    # --- numeric len() comparisons ------------------------------------
    if a.kind == "cmp":
        def num(term: str) -> Optional[int]:
            if term == "len(self.votes)":
                return m.votes_received
            if term == "len(self.replicated)":
                return m.replicated
            if term == "len(self.subordinates)":
                return n_subs
            if term in _LEN_FIXED:
                return _LEN_FIXED[term]
            try:
                return int(term)
            except ValueError:
                return None
        lv, rv = num(lhs), num(rhs)
        if lv is not None and rv is not None:
            return {"<": lv < rv, "<=": lv <= rv, ">": lv > rv,
                    ">=": lv >= rv, "==": lv == rv,
                    "is": lv == rv}.get(a.op)
        # variant selection: the walk models the OPTIMIZED variants
        if "Variant." in rhs:
            return rhs.endswith(".OPTIMIZED")
        if rhs == "None" and lhs in ("self.local_vote", "self.vote"):
            return not m.local_vote_seen
        if rhs == "None" and lhs == "self.outcome":
            return not m.outcome_set
        return None
    if a.kind == "truthy":
        if lhs in _TRUTHY_TRUE:
            return True
        if lhs in _TRUTHY_FALSE or "read_only" in lhs:
            return False
        return None
    return None


def _eval_atom(a: cfg.Atom, m: _Machine, d: _Delivery,
               n_subs: int) -> Optional[bool]:
    base = _eval_base(a, m, d, n_subs)
    if base is None:
        return None
    return base if a.positive else not base


# Subjects whose truth value flips mid-path when assigned (None-ness
# checks evaluated through walk flags that only update per delivery).
# Atoms about them downstream of an assignment describe a world the
# flags do not model yet, so they are treated as indeterminate.  All
# other assigned subjects (targets, update lists, vote counters) are
# evaluated through the table/counter conventions, which are defined
# in post-assignment terms.
_VOLATILE = ("self.outcome", "self.local_vote", "self.vote")


def _mentions(text: str, subject: str) -> bool:
    return (text == subject or text.startswith(subject + ".")
            or f"({subject})" in text)


def _admit_path(path: cfg.Path, m: _Machine, d: _Delivery,
                n_subs: int) -> Optional[int]:
    """Determinacy score when the path is admissible, else None."""
    score = 0
    for a in cfg.entry_state_atoms(path):
        v = _eval_atom(a, m, d, n_subs)
        if v is False:
            return None
        if v is True:
            score += 1
    for a in path.facts:
        if "self.state" in a.lhs or "self.state" in a.rhs:
            continue               # entry form handled above
        if any(sub in path.assigned
               and (_mentions(a.lhs, sub) or _mentions(a.rhs, sub))
               for sub in _VOLATILE):
            continue               # post-assignment world: indeterminate
        v = _eval_atom(a, m, d, n_subs)
        if v is False:
            return None
        if v is True:
            score += 1
    return score


def _choose(plist: List[cfg.Path], m: _Machine, d: _Delivery,
            n_subs: int) -> Optional[cfg.Path]:
    best: Optional[Tuple[int, int, int]] = None
    chosen: Optional[cfg.Path] = None
    for idx, path in enumerate(plist):
        score = _admit_path(path, m, d, n_subs)
        if score is None:
            continue
        rank = (score, 1 if path.events else 0, -idx)
        if best is None or rank > best:
            best, chosen = rank, path
    return chosen


def happy_path_counts(program: Program, coord_name: str, sub_name: str,
                      n_subs: int = 1,
                      limit: int = 200) -> Optional[Dict[str, int]]:
    """Walk one write transaction between two machines; count forced
    log writes and delivered datagrams.  None when the walk cannot
    complete (missing machines or no admissible path)."""
    effect_names = cfg.effect_names_for(program)
    cache: Dict[str, List[cfg.Path]] = {}

    def make(name: str) -> Optional[_Machine]:
        for cls in machine_classes(program):
            if cls.name == name:
                paths = entry_paths(program, cls, effect_names, cache)
                params = {
                    meth: cfg.first_param(program.funcs[cls.methods[meth]])
                    for meth in paths}
                return _Machine(name=name, cls=cls, paths=paths,
                                params=params,
                                state=_initial_state(program, cls))
        return None

    coord, sub = make(coord_name), make(sub_name)
    if coord is None or sub is None:
        return None
    peer = {coord_name: sub, sub_name: coord}

    forces = 0
    datagrams = 0
    queue: List[Tuple[object, ...]] = [("start", coord)]
    delivered = 0
    while queue and delivered < limit:
        item = queue.pop(0)
        delivered += 1
        kind, m = item[0], item[1]
        assert isinstance(m, _Machine)
        if kind == "start":
            m.started = True
            method, d = "start", _Delivery(param=None)
        elif kind == "local_prepared":
            m.local_vote_seen = True
            method = "on_local_prepared"
            d = _Delivery(param=m.params.get(method), vote="Vote.YES")
        elif kind == "forced":
            token = str(item[2])
            if "REPL" in token:
                m.replicated += 1
            method = "on_log_forced"
            d = _Delivery(param=m.params.get(method), token=token)
        elif kind == "durable":
            method = "on_log_durable"
            d = _Delivery(param=m.params.get(method), token=str(item[2]))
        else:                       # ("msg", machine, cls_name, kwargs)
            datagrams += 1
            msg_cls, kwargs = str(item[2]), dict(item[3])  # type: ignore[arg-type]
            if not m.started:
                # Receipt of the first datagram instantiates the machine:
                # the host constructs it and runs start().
                m.started = True
                method, d = "start", _Delivery(param=None)
            else:
                if msg_cls in ("VoteResponse", "NbVote", "PcVote"):
                    m.votes_received += 1
                if msg_cls == "NbReplicateAck":
                    m.replicated += 1
                method = "on_message"
                d = _Delivery(param=m.params.get(method),
                              msg_cls=msg_cls, kwargs=kwargs)
        plist = m.paths.get(method)
        if not plist:
            continue
        path = _choose(plist, m, d, n_subs)
        if path is None:
            return None
        for ev in path.events:
            if isinstance(ev, cfg.StateEv):
                if ev.attr == "state":
                    m.state = ev.member
                elif ev.attr == "outcome":
                    m.outcome_set = True
                continue
            if ev.kind == "ForceLog":
                forces += 1
                if ev.token:
                    queue.append(("forced", m, ev.token))
            elif ev.kind == "WriteLog" and ev.token:
                queue.append(("durable", m, ev.token))
            elif ev.kind == "LocalPrepare":
                queue.append(("local_prepared", m))
            elif ev.kind in ("SendDatagram", "MulticastDatagram"):
                if ev.message_cls is not None:
                    queue.append(("msg", peer[m.name], ev.message_cls,
                                  dict(ev.message_kwargs)))
            elif ev.kind == "LocalCommit":
                m.local_commit = True
            elif ev.kind == "Complete":
                m.complete = True
            # LazySendDatagram: rides piggyback, never a wire datagram.
        if coord.complete and sub.local_commit:
            return {"log_forces": forces, "datagrams": datagrams}
    return None


# ------------------------------------------------------------ the checks


def _parents(tree: ast.AST) -> Dict[ast.AST, ast.AST]:
    parents: Dict[ast.AST, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents


def _use_kind(node: ast.AST, parents: Dict[ast.AST, ast.AST]) -> str:
    """Classify one ``Enum.MEMBER`` read: 'check' | 'enter' | 'both'."""
    cur: Optional[ast.AST] = node
    for _ in range(12):
        cur = parents.get(cur)
        if cur is None:
            return "both"
        if isinstance(cur, ast.Compare):
            return "check"
        if isinstance(cur, (ast.Assign, ast.AnnAssign, ast.AugAssign,
                            ast.Call, ast.Return, ast.keyword)):
            return "enter"
        if isinstance(cur, ast.stmt):
            return "both"
    return "both"


def _member_uses(ctx: LintContext,
                 enums: Dict[str, Set[str]]) -> Dict[Tuple[str, str],
                                                     Set[str]]:
    """(enum, member) -> kinds of use anywhere in the tree."""
    uses: Dict[Tuple[str, str], Set[str]] = {}
    for info in ctx.files:
        if info.tree is None:
            continue
        parents = _parents(info.tree)
        for node in ast.walk(info.tree):
            if not isinstance(node, ast.Attribute):
                continue
            base = dotted_name(node.value)
            if base in enums and node.attr in enums[base]:
                uses.setdefault((base, node.attr), set()).add(
                    _use_kind(node, parents))
    return uses


def _state_enums(program: Program) -> Dict[str, Tuple[ClassNode,
                                                      Dict[str, ast.AST]]]:
    """State enums declared in pure core modules: name -> (class,
    member -> definition node)."""
    from repro.lint.flow.purity import HOST_EXEMPT
    out: Dict[str, Tuple[ClassNode, Dict[str, ast.AST]]] = {}
    for cls in program.classes.values():
        if not cls.module.startswith("core/") or cls.module in HOST_EXEMPT:
            continue
        if not cls.name.endswith("State"):
            continue
        members: Dict[str, ast.AST] = {}
        for stmt in cls.node.body:
            if isinstance(stmt, ast.Assign):
                for t in stmt.targets:
                    if isinstance(t, ast.Name) and not t.id.startswith("_"):
                        members[t.id] = stmt
        if members:
            out[cls.name] = (cls, members)
    return out


def _check_states(ctx: LintContext, program: Program) -> List[Finding]:
    enums = _state_enums(program)
    uses = _member_uses(ctx, {name: set(m for m in members)
                              for name, (_c, members) in enums.items()})
    out: List[Finding] = []
    for name, (cls, members) in sorted(enums.items()):
        for member, node in members.items():
            kinds = uses.get((name, member), set())
            entered = bool(kinds & {"enter", "both"})
            checked = bool(kinds & {"check", "both"})
            if not entered:
                out.append(ctx.finding(
                    cls.info, node, "flow-protocol-graph",
                    f"unreachable state {name}.{member}: no statement in "
                    f"the tree ever assigns it — dead protocol surface "
                    f"(delete the member or wire up the transition)",
                    key=f"unreachable:{name}.{member}"))
            elif not checked and member != "DONE":
                out.append(ctx.finding(
                    cls.info, node, "flow-protocol-graph",
                    f"dead-end state {name}.{member}: entered but never "
                    f"consulted by any guard, so no input can ever move "
                    f"the machine out of it",
                    key=f"deadend:{name}.{member}"))
    return out


def _check_dispatch(ctx: LintContext, cls: ClassNode,
                    rows: List[Transition],
                    message_names: Set[str]) -> List[Finding]:
    if not message_names:
        return []
    inputs = {r.input for r in rows}
    dispatched: Set[str] = set()
    for node in ast.walk(cls.node):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
                and node.func.id == "isinstance" and len(node.args) == 2:
            target = node.args[1]
            names = ([target] if isinstance(target, ast.Name)
                     else list(target.elts)
                     if isinstance(target, ast.Tuple) else [])
            for n in names:
                if isinstance(n, ast.Name) and n.id in message_names:
                    dispatched.add(n.id)
    out: List[Finding] = []
    for name in sorted(dispatched - inputs):
        out.append(ctx.finding(
            cls.info, cls.node, "flow-protocol-graph",
            f"extraction self-check: {cls.name} dispatches on {name} but "
            f"no transition row carries it — the extractor lost a path",
            key=f"dispatch:{cls.name}:{name}"))
    return out


_COUNT_PAIRS = (
    ("two_phase", "TwoPhaseCoordinator", "TwoPhaseSubordinate"),
    ("non_blocking", "NbCoordinator", "NbSubordinate"),
    ("paxos_commit", "PcLeader", "PcParticipant"),
)


def _check_counts(ctx: LintContext, program: Program) -> List[Finding]:
    try:
        from repro.analysis.static_analysis import path_counts
    except Exception:
        return []                       # synthetic tree: nothing to check
    class_names = {c.name for c in machine_classes(program)}
    out: List[Finding] = []
    for protocol, coord_name, sub_name in _COUNT_PAIRS:
        if coord_name not in class_names or sub_name not in class_names:
            continue
        expected = path_counts(protocol, "write", 1)
        got = happy_path_counts(program, coord_name, sub_name)
        info = next(c.info for c in machine_classes(program)
                    if c.name == coord_name)
        node = next(c.node for c in machine_classes(program)
                    if c.name == coord_name)
        if got is None:
            out.append(ctx.finding(
                info, node, "flow-protocol-graph",
                f"count cross-check: the extracted {coord_name}/{sub_name} "
                f"graph has no admissible happy path for one write "
                f"transaction (expected {expected['log_forces']} forces / "
                f"{expected['datagrams']} datagrams)",
                key=f"counts:{protocol}:walk"))
        elif got != expected:
            out.append(ctx.finding(
                info, node, "flow-protocol-graph",
                f"count cross-check: extracted {coord_name}/{sub_name} "
                f"happy path costs {got['log_forces']} forces / "
                f"{got['datagrams']} datagrams; analysis.path_counts"
                f"({protocol!r}, 'write', 1) says "
                f"{expected['log_forces']} / {expected['datagrams']} — "
                f"protocol code and analytic model have drifted",
                key=f"counts:{protocol}:drift"))
    return out


def run(ctx: LintContext, program: Program) -> List[Finding]:
    effect_names = cfg.effect_names_for(program)
    message_names = set(ctx.message_classes)
    out: List[Finding] = []
    cache: Dict[str, List[cfg.Path]] = {}
    for cls in machine_classes(program):
        paths = entry_paths(program, cls, effect_names, cache)
        rows = extract(program, cls, paths, message_names)
        out.extend(_check_dispatch(ctx, cls, rows, message_names))
    out.extend(_check_states(ctx, program))
    out.extend(_check_counts(ctx, program))
    return out
