"""Path-sensitive log-force discipline (rule ``flow-force-discipline``).

The sans-IO contract makes the per-file force rule too weak: a
``ForceLog`` in the *same* effects list as a send guards nothing,
because the host executes effects asynchronously — the datagram can be
on the wire before the platter turns.  The real discipline is
path-shaped:

    on every enumerated CFG path from a handler entry to an effect
    carrying a COMMIT/vote-class message, the guard facts live at the
    send must include durable evidence.

Durable evidence is one of:

- a **force-completion guard** — the path is inside
  ``on_log_forced``/``on_log_durable`` under an equality test on the
  token parameter (the force already hit the platter, that is why we
  are here);
- a **quorum guard** — a positive ``...can_commit(...)`` test (a commit
  quorum of replication records exists);
- a **durable-state guard** — a positive ``self.state is X`` test where
  ``X`` is a state this analysis itself proved is only ever *entered*
  under durable evidence (computed as a least fixed point, so the
  argument is never circular: nothing is durable until proven from a
  force or quorum guard).

Recovery/resumption entries (``resume_*``, ``note_*``) are exempt —
their contract is that the evidence was forced in a previous
incarnation — as are classmethod constructors.  Sends whose decisive
payload field is a non-literal expression (``outcome=self.outcome``)
are not classified (documented soundness limit).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.lint.engine import LintContext
from repro.lint.findings import Finding
from repro.lint.flow import cfg
from repro.lint.flow.callgraph import ClassNode, FuncNode, Program
from repro.lint.flow.purity import HOST_EXEMPT

HANDLER_NAMES = {
    "on_message", "on_timer", "on_log_forced", "on_log_durable",
    "start", "on_local_prepared",
}
FORCED_HANDLERS = ("on_log_forced", "on_log_durable")
_EXEMPT_PREFIXES = ("resume_", "note_")

# message class -> (decisive field, durable literal values, field default
# is durable?).  A send of one of these classes with a durable decisive
# value claims "this transaction (or this site's vote) is COMMIT" — the
# claim must never outrun the log.
_DURABLE_MESSAGES: Dict[str, Tuple[Optional[str], Set[str], bool]] = {
    "CommitNotice": (None, set(), True),
    "NbOutcome": ("outcome", {"Outcome.COMMITTED"}, True),
    "VoteResponse": ("vote", {"Vote.YES"}, True),
    "NbVote": ("vote", {"Vote.YES"}, True),
    "NbReplicateAck": ("ok", {"True"}, True),
    "PcVote": ("vote", {"Vote.YES"}, True),
    "PcOutcome": ("outcome", {"Outcome.COMMITTED"}, True),
}


def machine_classes(program: Program) -> List[ClassNode]:
    """Protocol machines: pure-core classes with at least one handler."""
    out = []
    for cls in program.classes.values():
        if not cls.module.startswith("core/") or cls.module in HOST_EXEMPT:
            continue
        if any(name in cls.methods for name in HANDLER_NAMES):
            out.append(cls)
    return sorted(out, key=lambda c: c.qname)


def entry_methods(program: Program, cls: ClassNode) -> List[FuncNode]:
    """The externally driven inputs of one machine."""
    out = []
    for name, qname in sorted(cls.methods.items()):
        if name.startswith("_") or name.startswith(_EXEMPT_PREFIXES):
            continue
        fn = program.funcs[qname]
        if fn.is_classmethod or fn.is_staticmethod:
            continue
        out.append(fn)
    return out


def entry_paths(program: Program, cls: ClassNode,
                effect_names: FrozenSet[str],
                cache: Dict[str, List[cfg.Path]]) -> Dict[str, List[cfg.Path]]:
    paths: Dict[str, List[cfg.Path]] = {}
    for fn in entry_methods(program, cls):
        if fn.qname not in cache:
            cache[fn.qname] = cfg.explore(program, fn, effect_names)
        paths[fn.name] = cache[fn.qname]
    return paths


def _token_params(program: Program, cls: ClassNode) -> Set[str]:
    names: Set[str] = set()
    for handler in FORCED_HANDLERS:
        qname = cls.methods.get(handler)
        if qname is not None:
            param = cfg.first_param(program.funcs[qname])
            if param is not None:
                names.add(param)
    return names


def _in_members(rhs: str) -> List[str]:
    """Member names out of a canonical tuple '(A.X, B.Y)' or single term."""
    inner = rhs.strip("()")
    return [part.rsplit(".", 1)[-1].strip()
            for part in inner.split(",") if part.strip()]


def _guarded(facts: FrozenSet[cfg.Atom], token_params: Set[str],
             durable_states: Set[str]) -> bool:
    for a in facts:
        if not a.positive:
            continue
        if a.kind == "cmp" and a.op in ("==", "is") \
                and a.lhs in token_params:
            return True            # inside on_log_forced(token == X)
        if "can_commit(" in a.lhs:
            return True            # quorum of replication records
        if a.lhs == "self.state":
            if a.kind == "cmp" and a.op in ("is", "==") \
                    and a.rhs.rsplit(".", 1)[-1] in durable_states:
                return True
            if a.kind == "in" and a.rhs.startswith("(") \
                    and all(m in durable_states for m in _in_members(a.rhs)):
                return True
    return False


def _durable_send(ev: cfg.EffectEv) -> Optional[bool]:
    """True: durable claim.  False: abort/negative (free to send).
    None: not a classified message or non-literal payload (skipped)."""
    if ev.kind not in cfg.SEND_KINDS or ev.message_cls is None:
        return None
    spec = _DURABLE_MESSAGES.get(ev.message_cls)
    if spec is None:
        return None
    field, durable_values, default_durable = spec
    if field is None:
        return True
    value = ev.kwarg(field)
    if value is None:
        # Try a positional literal of the same enum family / bool.
        candidates = [a for a in ev.message_args
                      if a.split(".")[0] in ("Vote", "Outcome")
                      or a in ("True", "False")]
        value = candidates[0] if candidates else None
    if value is None:
        return default_durable
    if value in durable_values:
        return True
    if value.split(".")[0] in ("Vote", "Outcome") or value in ("True", "False"):
        return False               # a literal, but not the durable one
    return None                    # attribute-valued: unclassified


def _durable_states(program: Program, cls: ClassNode,
                    paths: Dict[str, List[cfg.Path]],
                    token_params: Set[str]) -> Set[str]:
    """Least fixed point: a state is durable iff it is entered somewhere
    and *every* entry (outside __init__/classmethods/exempt methods) is
    guarded by durable evidence under the current durable set."""
    occurrences: Dict[str, List[FrozenSet[cfg.Atom]]] = {}
    for plist in paths.values():
        for path in plist:
            for ev in path.events:
                if isinstance(ev, cfg.StateEv) and ev.attr == "state":
                    occurrences.setdefault(ev.member, []).append(ev.facts)
    durable: Set[str] = set()
    while True:
        grown = False
        for member, facts_list in occurrences.items():
            if member in durable:
                continue
            if all(_guarded(f, token_params, durable) for f in facts_list):
                durable.add(member)
                grown = True
        if not grown:
            return durable


def run(ctx: LintContext, program: Program) -> List[Finding]:
    effect_names = cfg.effect_names_for(program)
    out: List[Finding] = []
    cache: Dict[str, List[cfg.Path]] = {}
    for cls in machine_classes(program):
        paths = entry_paths(program, cls, effect_names, cache)
        token_params = _token_params(program, cls)
        durable = _durable_states(program, cls, paths, token_params)
        for method, plist in sorted(paths.items()):
            for path in plist:
                for ev in path.events:
                    if not isinstance(ev, cfg.EffectEv):
                        continue
                    if _durable_send(ev) is not True:
                        continue
                    if _guarded(ev.facts, token_params, durable):
                        continue
                    line = getattr(ev.node, "lineno", "?")
                    out.append(ctx.finding(
                        cls.info, ev.node, "flow-force-discipline",
                        f"{cls.name}.{method} has a path that sends "
                        f"{ev.message_cls} (a durable COMMIT/vote claim) "
                        f"with no log force, quorum, or durable-state "
                        f"guard dominating the send (line {line}); the "
                        f"host executes effects asynchronously, so the "
                        f"claim can outrun the log",
                        key=f"{cls.name}.{method}:{ev.message_cls}:{line}"))
    # One finding per unique fingerprint key (many paths can cross the
    # same unguarded send site).
    deduped: Dict[str, Finding] = {}
    for f in out:
        deduped.setdefault(f.key, f)
    return list(deduped.values())
