"""Live-IO fence (rule ``live-io-fence``).

:mod:`repro.live` interprets the sans-IO machines' effects over real
sockets and a real fsync-backed WAL.  That substrate code is *allowed*
to do IO — but only there.  If asyncio, socket plumbing, or ``os.fsync``
leaks into any other package, the conformance argument (same machines,
two substrates, byte-identical transcripts) silently stops being about
substrates, and ``repro.core``/``repro.sim`` stop being provably
host-independent.

The fence complements ``flow-sansio-purity``: purity proves ``core/``
reaches no IO primitive *through any call chain*; this rule pins the
specific live-substrate primitives (asyncio / socket / selectors /
``os.fsync``) to the one package licensed to hold them, across the
whole tree — including ``net/``, ``servers/``, ``sim/`` and the lint
package itself.

Checked per non-``live/`` file:

- ``import asyncio`` / ``import socket`` / ``import selectors`` (and
  any submodule or ``from X import ...`` form);
- ``from os import fsync`` (aliased or not);
- any attribute reference ``*.fsync`` — which also means: do not *name*
  a method ``fsync`` outside ``live/``; the simulator vocabulary for
  durability is ``force``.
"""

from __future__ import annotations

import ast
from typing import List

from repro.lint.engine import LintContext
from repro.lint.findings import Finding

RULE = "live-io-fence"

# The only package allowed to touch the live-substrate primitives.
FENCED_PACKAGE = "live/"

# Module roots owned by the live substrate.
_FENCED_MODULES = {"asyncio", "socket", "selectors"}


def _fenced_module(modpath: str) -> str:
    """The offending root module, or '' if the import is fine."""
    root = modpath.split(".", 1)[0]
    return root if root in _FENCED_MODULES else ""


def run(ctx: LintContext) -> List[Finding]:
    out: List[Finding] = []
    for info in ctx.files:
        if info.sub.startswith(FENCED_PACKAGE) or info.tree is None:
            continue
        for node in ast.walk(info.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = _fenced_module(alias.name)
                    if root:
                        out.append(ctx.finding(
                            info, node, RULE,
                            f"import of {alias.name}: {root} belongs to the "
                            f"live substrate; only repro/live may import it",
                            key=f"import:{info.sub}:{alias.name}"))
            elif isinstance(node, ast.ImportFrom):
                if node.level:
                    continue  # relative import: stays inside the project
                mod = node.module or ""
                root = _fenced_module(mod)
                if root:
                    out.append(ctx.finding(
                        info, node, RULE,
                        f"import from {mod}: {root} belongs to the live "
                        f"substrate; only repro/live may import it",
                        key=f"from:{info.sub}:{mod}"))
                elif mod == "os" or mod.startswith("os."):
                    for alias in node.names:
                        if alias.name == "fsync":
                            out.append(ctx.finding(
                                info, node, RULE,
                                "from os import fsync: real durability "
                                "lives in repro/live/walfile.py; the "
                                "simulator word for it is 'force'",
                                key=f"fsync-import:{info.sub}"))
            elif isinstance(node, ast.Attribute) and node.attr == "fsync":
                out.append(ctx.finding(
                    info, node, RULE,
                    "reference to .fsync outside repro/live (os.fsync or a "
                    "method named fsync): real durability lives in "
                    "repro/live/walfile.py; call it 'force' elsewhere",
                    key=f"fsync:{info.sub}:{node.lineno}"))
    return out
