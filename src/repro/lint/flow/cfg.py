"""Structured-CFG symbolic execution of protocol handler bodies.

Rather than lowering to basic blocks, the executor walks the structured
statement AST directly and enumerates acyclic paths: every ``if`` forks
the path with the branch condition recorded as guard :class:`Atom`
facts, every loop forks a zero-iteration and a one-iteration path, and
intra-class helper calls (``self._finish_committed()``) are inlined so
a guard in the caller dominates the events of the callee.

Along each path the executor records an ordered event stream:

- :class:`EffectEv` — construction of an effect object
  (``SendDatagram``, ``ForceLog``, ...), with the message class and its
  literal arguments resolved through simple local bindings
  (``notice = lambda: CommitNotice(...)``), the force token, and a
  snapshot of the guard facts live at the construction site;
- :class:`StateEv` — an enum-constant assignment to a ``self``
  attribute (``self.state = CoordinatorState.COMMITTED``), also with
  its guard snapshot.

Facts are invalidated when their subject is reassigned, and paths whose
guard set becomes self-contradictory (``x is A`` and ``x is B``) are
pruned.  Paths are capped and deduplicated by (facts, event shape), so
pathological fan-out degrades coverage instead of runtime.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple, Union

from repro.lint.flow.callgraph import FuncNode, Program, dotted_name

# The built-in effect vocabulary (repro.core.effects).  Trees that
# define their own ``class X(Effect)`` hierarchy extend this set via
# :func:`effect_names_for`.
EFFECT_KINDS = frozenset({
    "SendDatagram", "MulticastDatagram", "LazySendDatagram",
    "ForceLog", "WriteLog",
    "LocalPrepare", "LocalCommit", "LocalAbort",
    "Complete", "Forget", "StartTakeover",
    "StartTimer", "CancelTimer", "Trace",
})
SEND_KINDS = frozenset({"SendDatagram", "MulticastDatagram", "LazySendDatagram"})

_MAX_PATHS = 2000
_MAX_INLINE_DEPTH = 8


def effect_names_for(program: Program) -> FrozenSet[str]:
    """EFFECT_KINDS plus every class in the tree that (transitively, by
    name) subclasses a class called ``Effect``."""
    base_names: Dict[str, List[str]] = {}
    for cls in program.classes.values():
        names = []
        for b in cls.node.bases:
            d = dotted_name(b)
            if d is not None:
                names.append(d.split(".")[-1])
        base_names[cls.name] = names

    effectish: Dict[str, bool] = {}

    def is_effectish(name: str, depth: int = 0) -> bool:
        if name == "Effect":
            return True
        if depth > 5 or name not in base_names:
            return False
        if name in effectish:
            return effectish[name]
        effectish[name] = False  # cycle guard
        result = any(is_effectish(b, depth + 1) for b in base_names[name])
        effectish[name] = result
        return result

    extra = {name for name in base_names if is_effectish(name)}
    return EFFECT_KINDS | frozenset(extra)


# ------------------------------------------------------------------ canon


def canon(node: Optional[ast.AST]) -> str:
    """Stable textual form of an expression, used as guard-atom terms."""
    if node is None:
        return "<none>"
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return f"{canon(node.value)}.{node.attr}"
    if isinstance(node, ast.Constant):
        return repr(node.value)
    if isinstance(node, ast.Call):
        fname = canon(node.func)
        if fname == "len" and len(node.args) == 1:
            return f"len({canon(node.args[0])})"
        return f"{fname}(...)"
    if isinstance(node, ast.Subscript):
        return f"{canon(node.value)}[...]"
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        return f"-{canon(node.operand)}"
    if isinstance(node, ast.Tuple):
        return "(" + ", ".join(canon(e) for e in node.elts) + ")"
    return "<expr>"


# ------------------------------------------------------------------ atoms


@dataclass(frozen=True)
class Atom:
    """One guard fact: a canonicalized, polarized predicate."""

    kind: str       # "cmp" | "truthy" | "isinstance" | "in"
    lhs: str
    op: str
    rhs: str
    positive: bool

    def negated(self) -> "Atom":
        return Atom(self.kind, self.lhs, self.op, self.rhs, not self.positive)

    def render(self) -> str:
        if self.kind == "truthy":
            return self.lhs if self.positive else f"not {self.lhs}"
        if self.kind == "isinstance":
            text = f"isinstance({self.lhs}, {self.rhs})"
        elif self.kind == "in":
            text = f"{self.lhs} in {self.rhs}"
        else:
            text = f"{self.lhs} {self.op} {self.rhs}"
        return text if self.positive else f"not ({text})"


_CMP_OPS = {
    ast.Lt: "<", ast.LtE: "<=", ast.Gt: ">", ast.GtE: ">=",
}


def atoms(test: ast.AST, value: bool = True) -> FrozenSet[Atom]:
    """Facts implied by ``bool(test) == value``.

    Conjunctions (``and`` true, ``or`` false) contribute the union of
    their parts; disjunctions contribute nothing (no single fact is
    implied).
    """
    if isinstance(test, ast.BoolOp):
        conj = (isinstance(test.op, ast.And) and value) or \
               (isinstance(test.op, ast.Or) and not value)
        if not conj:
            return frozenset()
        out: FrozenSet[Atom] = frozenset()
        for part in test.values:
            out |= atoms(part, value)
        return out
    if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
        return atoms(test.operand, not value)
    if isinstance(test, ast.Compare) and len(test.ops) == 1:
        lhs = canon(test.left)
        rhs = canon(test.comparators[0])
        op = test.ops[0]
        if isinstance(op, ast.Eq):
            return frozenset({Atom("cmp", lhs, "==", rhs, value)})
        if isinstance(op, ast.NotEq):
            return frozenset({Atom("cmp", lhs, "==", rhs, not value)})
        if isinstance(op, ast.Is):
            return frozenset({Atom("cmp", lhs, "is", rhs, value)})
        if isinstance(op, ast.IsNot):
            return frozenset({Atom("cmp", lhs, "is", rhs, not value)})
        if isinstance(op, ast.In):
            return frozenset({Atom("in", lhs, "in", rhs, value)})
        if isinstance(op, ast.NotIn):
            return frozenset({Atom("in", lhs, "in", rhs, not value)})
        if type(op) in _CMP_OPS:
            return frozenset({Atom("cmp", lhs, _CMP_OPS[type(op)],
                                   rhs, value)})
        return frozenset({Atom("truthy", canon(test), "", "", value)})
    if isinstance(test, ast.Call) and isinstance(test.func, ast.Name) \
            and test.func.id == "isinstance" and len(test.args) == 2:
        return frozenset({Atom("isinstance", canon(test.args[0]), "isinstance",
                               canon(test.args[1]), value)})
    return frozenset({Atom("truthy", canon(test), "", "", value)})


def _constant_like(term: str) -> bool:
    """Terms that denote distinct values: enum members, ALL_CAPS module
    constants, literals."""
    if not term:
        return False
    tail = term.rsplit(".", 1)[-1]
    if tail.isupper() and any(c.isalpha() for c in tail):
        return True
    return term[0] in "'\"-0123456789" or term in ("True", "False", "None")


def admit(facts: FrozenSet[Atom],
          new: FrozenSet[Atom]) -> Optional[FrozenSet[Atom]]:
    """facts ∪ new, or None when the merge is self-contradictory."""
    merged = set(facts)
    for a in new:
        if a.negated() in merged:
            return None
        if a.positive and a.kind == "cmp" and a.op in ("is", "==") \
                and _constant_like(a.rhs):
            for b in merged:
                if b.positive and b.kind == "cmp" and b.op == a.op \
                        and b.lhs == a.lhs and b.rhs != a.rhs \
                        and _constant_like(b.rhs):
                    return None
        merged.add(a)
    return frozenset(merged)


def invalidate(facts: FrozenSet[Atom], target: str) -> FrozenSet[Atom]:
    """Drop facts that mention a just-reassigned subject."""
    return frozenset(a for a in facts
                     if target not in a.lhs and target not in a.rhs)


# ----------------------------------------------------------------- events


@dataclass
class EffectEv:
    """Construction of one effect object on a path."""

    kind: str
    node: ast.AST
    facts: FrozenSet[Atom]
    message_cls: Optional[str] = None
    message_args: Tuple[str, ...] = ()
    message_kwargs: Tuple[Tuple[str, str], ...] = ()
    token: Optional[str] = None
    multiplicity: Optional[str] = None   # comprehension iterable, if any

    def key(self) -> Tuple[object, ...]:
        return ("effect", self.kind, self.message_cls, self.message_args,
                self.message_kwargs, self.token, self.multiplicity)

    def kwarg(self, name: str) -> Optional[str]:
        for k, v in self.message_kwargs:
            if k == name:
                return v
        return None


@dataclass
class StateEv:
    """``self.<attr> = EnumClass.MEMBER`` on a path."""

    attr: str
    enum_cls: str
    member: str
    node: ast.AST
    facts: FrozenSet[Atom]

    def key(self) -> Tuple[object, ...]:
        return ("state", self.attr, self.enum_cls, self.member)


Event = Union[EffectEv, StateEv]


@dataclass
class Path:
    """One enumerated acyclic path through an entry method."""

    facts: FrozenSet[Atom]
    events: List[Event]
    raised: bool
    # Canonical subjects (``self.state``, ``self.votes``, ...) written
    # along the path.  Facts about an assigned subject in ``facts``
    # describe the *post*-assignment world; consumers that need entry
    # conditions (the protocol walk) must treat them as indeterminate.
    assigned: FrozenSet[str] = frozenset()


def entry_state_atoms(path: Path) -> FrozenSet[Atom]:
    """The ``self.state`` guard atoms that held on *entry* to the path.

    Guards recorded after a state assignment describe the new state;
    the entry guards are exactly the ``self.state`` atoms still live at
    the first state assignment (its facts snapshot is taken before
    invalidation), or — when the path never assigns — in the final
    facts.
    """
    for ev in path.events:
        if isinstance(ev, StateEv) and ev.attr == "state":
            facts = ev.facts
            break
    else:
        facts = path.facts
    return frozenset(a for a in facts
                     if "self.state" in a.lhs or "self.state" in a.rhs)


def _enum_member(value: Optional[ast.AST]) -> Optional[Tuple[str, str]]:
    """('EnumClass', 'MEMBER') when value is a CamelCase.ALL_CAPS read."""
    if isinstance(value, ast.Attribute) and len(value.attr) > 1 \
            and value.attr.isupper():
        base = dotted_name(value.value)
        if base is not None and base[:1].isupper():
            return base, value.attr
    return None


def enum_assign_sites(node: ast.AST) -> Iterator[Tuple[str, str, str, ast.AST]]:
    """All ``self.attr = EnumClass.MEMBER`` sites in a subtree (used by
    analyses to scan ``__init__`` and exempt methods without paying for
    path enumeration)."""
    for n in ast.walk(node):
        if isinstance(n, ast.Assign) and len(n.targets) == 1:
            target: ast.AST = n.targets[0]
            value: Optional[ast.AST] = n.value
        elif isinstance(n, ast.AnnAssign) and n.value is not None:
            target, value = n.target, n.value
        else:
            continue
        if isinstance(target, ast.Attribute) \
                and isinstance(target.value, ast.Name) \
                and target.value.id == "self":
            em = _enum_member(value)
            if em is not None:
                yield target.attr, em[0], em[1], n


def first_param(fn: FuncNode) -> Optional[str]:
    """Name of the first non-self/cls parameter of a method."""
    node = fn.node
    if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return None
    names = [a.arg for a in (*node.args.posonlyargs, *node.args.args)]
    if not fn.is_staticmethod and names and names[0] in ("self", "cls"):
        names = names[1:]
    return names[0] if names else None


# --------------------------------------------------------------- explorer


@dataclass
class _State:
    facts: FrozenSet[Atom]
    events: List[Event]
    env: Dict[str, ast.Call]
    assigned: Set[str] = field(default_factory=set)
    terminated: bool = False
    raised: bool = False

    def clone(self) -> "_State":
        return _State(self.facts, list(self.events), dict(self.env),
                      set(self.assigned), self.terminated, self.raised)


class _Explorer:
    def __init__(self, program: Program, fn: FuncNode,
                 effect_names: FrozenSet[str]) -> None:
        self.program = program
        self.fn = fn
        self.effect_names = effect_names
        self.cls = program.classes.get(f"{fn.module}::{fn.cls}") \
            if fn.cls else None
        self._interesting: Dict[str, bool] = {}

    # ------------------------------------------------------------- entry

    def run(self) -> List[Path]:
        start = _State(frozenset(), [], {})
        body = self.fn.node.body \
            if isinstance(self.fn.node,
                          (ast.FunctionDef, ast.AsyncFunctionDef)) else []
        finals = self._block(body, start, (self.fn.qname,))
        paths: List[Path] = []
        seen = set()
        for st in finals:
            key = (st.facts, tuple(e.key() for e in st.events))
            if key in seen:
                continue
            seen.add(key)
            paths.append(Path(st.facts, st.events, st.raised,
                              frozenset(st.assigned)))
        return paths

    # --------------------------------------------------------- statements

    def _block(self, stmts: List[ast.stmt], state: _State,
               stack: Tuple[str, ...]) -> List[_State]:
        states = [state]
        for stmt in stmts:
            nxt: List[_State] = []
            for s in states:
                if s.terminated:
                    nxt.append(s)
                else:
                    nxt.extend(self._stmt(stmt, s, stack))
            states = nxt[:_MAX_PATHS]
        return states

    def _stmt(self, stmt: ast.stmt, s: _State,
              stack: Tuple[str, ...]) -> List[_State]:
        if isinstance(stmt, ast.If):
            return self._if(stmt, s, stack)
        if isinstance(stmt, ast.Return):
            outs = self._scan(stmt.value, s, stack) if stmt.value else [s]
            for st in outs:
                st.terminated = True
            return outs
        if isinstance(stmt, ast.Raise):
            s.terminated = True
            s.raised = True
            return [s]
        if isinstance(stmt, ast.Expr):
            return self._scan(stmt.value, s, stack)
        if isinstance(stmt, ast.Assign):
            return self._assign(stmt.targets, stmt.value, s, stack)
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is None:
                return [s]
            return self._assign([stmt.target], stmt.value, s, stack)
        if isinstance(stmt, ast.AugAssign):
            outs = self._scan(stmt.value, s, stack)
            target = canon(stmt.target).split("[")[0]
            for st in outs:
                st.facts = invalidate(st.facts, target)
                st.assigned.add(target)
            return outs
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return self._loop(stmt.body, canon(stmt.iter), None, s, stack)
        if isinstance(stmt, ast.While):
            return self._loop(stmt.body, None, stmt.test, s, stack)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            outs = [s]
            for item in stmt.items:
                outs = self._fan(outs, item.context_expr, stack)
            nxt: List[_State] = []
            for st in outs:
                nxt.extend(self._block(stmt.body, st, stack))
            return nxt
        if isinstance(stmt, ast.Try):
            # Handlers are ignored (documented limit): protocol cores
            # raise to abort, they do not route effects through except.
            outs = self._block(stmt.body, s, stack)
            nxt: List[_State] = []
            for st in outs:
                nxt.extend(self._block(stmt.finalbody, st, stack)
                           if stmt.finalbody else [st])
            return nxt
        if isinstance(stmt, ast.Assert):
            merged = admit(s.facts, atoms(stmt.test, True))
            if merged is None:
                s.terminated = True
                s.raised = True
                return [s]
            s.facts = merged
            return [s]
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef, ast.Import, ast.ImportFrom,
                             ast.Global, ast.Nonlocal, ast.Pass,
                             ast.Break, ast.Continue, ast.Delete)):
            return [s]
        # Anything else: scan for effect constructions, nothing more.
        nxt2 = [s]
        for child in ast.iter_child_nodes(stmt):
            nxt2 = self._fan(nxt2, child, stack)
        return nxt2

    def _if(self, stmt: ast.If, s: _State,
            stack: Tuple[str, ...]) -> List[_State]:
        out: List[_State] = []
        for value, block in ((True, stmt.body), (False, stmt.orelse)):
            facts = admit(s.facts, atoms(stmt.test, value))
            if facts is None:
                continue
            branch = s.clone()
            branch.facts = facts
            out.extend(self._block(block, branch, stack))
        return out

    def _loop(self, body: List[ast.stmt], iter_canon: Optional[str],
              test: Optional[ast.AST], s: _State,
              stack: Tuple[str, ...]) -> List[_State]:
        """Zero-or-one-iteration unrolling, with the loop condition (or
        the iterable's truthiness) as the fork's guard facts."""
        out: List[_State] = []
        if iter_canon is not None:
            enter: FrozenSet[Atom] = frozenset(
                {Atom("truthy", iter_canon, "", "", True)})
            skip: FrozenSet[Atom] = frozenset(
                {Atom("truthy", iter_canon, "", "", False)})
        else:
            enter = atoms(test, True) if test is not None else frozenset()
            skip = atoms(test, False) if test is not None else frozenset()
        skip_facts = admit(s.facts, skip)
        if skip_facts is not None:
            st = s.clone()
            st.facts = skip_facts
            out.append(st)
        enter_facts = admit(s.facts, enter)
        if enter_facts is not None:
            st = s.clone()
            st.facts = enter_facts
            out.extend(self._block(body, st, stack))
        return out

    def _assign(self, targets: List[ast.expr], value: ast.expr,
                s: _State, stack: Tuple[str, ...]) -> List[_State]:
        outs = self._scan(value, s, stack)
        for st in outs:
            for t in targets:
                em = _enum_member(value)
                if em is not None and isinstance(t, ast.Attribute) \
                        and isinstance(t.value, ast.Name) \
                        and t.value.id == "self":
                    st.events.append(StateEv(t.attr, em[0], em[1],
                                             t, st.facts))
                tc = canon(t).split("[")[0]
                st.facts = invalidate(st.facts, tc)
                st.assigned.add(tc)
                if isinstance(t, ast.Name):
                    ctor = self._as_ctor(value)
                    if ctor is not None:
                        st.env[t.id] = ctor
                    else:
                        st.env.pop(t.id, None)
        return outs

    # -------------------------------------------------------- expressions

    def _fan(self, states: List[_State], node: Optional[ast.AST],
             stack: Tuple[str, ...]) -> List[_State]:
        nxt: List[_State] = []
        for st in states:
            if st.terminated:
                nxt.append(st)
            else:
                nxt.extend(self._scan(node, st, stack))
        return nxt[:_MAX_PATHS]

    def _scan(self, node: Optional[ast.AST], s: _State,
              stack: Tuple[str, ...]) -> List[_State]:
        """Record effect constructions (and inline intra-class helper
        calls) reachable while evaluating one expression."""
        if node is None or isinstance(node, ast.Lambda):
            # Lambda bodies run when called; ctor lambdas resolve via env.
            return [s]
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp,
                             ast.DictComp)):
            return [self._scan_comp(node, s)]
        if isinstance(node, ast.IfExp):
            # Both arms are walked on the same path (documented limit);
            # effect-bearing conditional expressions are rare.
            states = self._scan(node.test, s, stack)
            for branch in (node.body, node.orelse):
                states = self._fan(states, branch, stack)
            return states
        if isinstance(node, ast.Call):
            return self._scan_call(node, s, stack)
        states = [s]
        for child in ast.iter_child_nodes(node):
            states = self._fan(states, child, stack)
        return states

    def _scan_call(self, call: ast.Call, s: _State,
                   stack: Tuple[str, ...]) -> List[_State]:
        name = dotted_name(call.func)
        leaf = name.split(".")[-1] if name else None
        if leaf in self.effect_names:
            states = [s]
            for child in (*call.args, *[k.value for k in call.keywords]):
                states = self._fan(states, child, stack)
            for st in states:
                st.events.append(self._effect_event(leaf, call, st))
            return states
        if name is not None and name.startswith("self.") \
                and name.count(".") == 1 and self.cls is not None:
            mq = self.program.class_method(self.cls.qname, name[5:])
            if mq is not None and mq not in stack \
                    and len(stack) < _MAX_INLINE_DEPTH \
                    and self._is_interesting(mq):
                states = [s]
                for child in (*call.args, *[k.value for k in call.keywords]):
                    states = self._fan(states, child, stack)
                out: List[_State] = []
                callee = self.program.funcs[mq]
                for st in states:
                    sub = st.clone()
                    sub.env = {}
                    for ist in self._block(callee.node.body, sub,
                                           stack + (mq,)):
                        if not ist.raised:
                            ist.terminated = st.terminated
                        ist.env = dict(st.env)
                        out.append(ist)
                return out[:_MAX_PATHS]
        states = [s]
        for child in ast.iter_child_nodes(call):
            states = self._fan(states, child, stack)
        return states

    def _scan_comp(self, comp: ast.AST, s: _State) -> _State:
        """Effects built inside a comprehension become one event with a
        multiplicity label instead of forking per element."""
        if isinstance(comp, ast.DictComp):
            elts: List[ast.AST] = [comp.key, comp.value]
            mult = canon(comp.generators[0].iter)
        else:
            assert isinstance(comp, (ast.ListComp, ast.SetComp,
                                     ast.GeneratorExp))
            elts = [comp.elt]
            mult = canon(comp.generators[0].iter)
        st = s.clone()
        for elt in elts:
            for node in ast.walk(elt):
                if not isinstance(node, ast.Call):
                    continue
                name = dotted_name(node.func)
                leaf = name.split(".")[-1] if name else None
                if leaf in self.effect_names:
                    ev = self._effect_event(leaf, node, st)
                    ev.multiplicity = mult
                    st.events.append(ev)
        return st

    # ------------------------------------------------------------ helpers

    def _effect_event(self, kind: str, call: ast.Call,
                      st: _State) -> EffectEv:
        ev = EffectEv(kind=kind, node=call, facts=st.facts)
        if kind in ("ForceLog", "WriteLog", "StartTimer", "CancelTimer"):
            token_expr: Optional[ast.AST] = None
            if len(call.args) >= 2:
                token_expr = call.args[1]
            elif kind in ("StartTimer", "CancelTimer") and call.args:
                token_expr = call.args[0]
            for kw in call.keywords:
                if kw.arg == "token":
                    token_expr = kw.value
            if token_expr is not None:
                ev.token = canon(token_expr)
        if kind in SEND_KINDS:
            mexpr: Optional[ast.AST] = None
            if len(call.args) >= 2:
                mexpr = call.args[1]
            for kw in call.keywords:
                if kw.arg == "message":
                    mexpr = kw.value
            ctor = self._resolve_message(mexpr, st.env)
            if ctor is not None:
                fname = dotted_name(ctor.func)
                if fname is not None:
                    ev.message_cls = fname.split(".")[-1]
                    ev.message_args = tuple(canon(a) for a in ctor.args)
                    ev.message_kwargs = tuple(
                        (kw.arg, canon(kw.value))
                        for kw in ctor.keywords if kw.arg is not None)
        return ev

    def _resolve_message(self, expr: Optional[ast.AST],
                         env: Dict[str, ast.Call]) -> Optional[ast.Call]:
        if isinstance(expr, ast.Call):
            if isinstance(expr.func, ast.Name) and expr.func.id in env:
                return env[expr.func.id]
            name = dotted_name(expr.func)
            if name is not None and name.split(".")[-1][:1].isupper():
                return expr
            return None
        if isinstance(expr, ast.Name):
            return env.get(expr.id)
        return None

    def _as_ctor(self, value: ast.AST) -> Optional[ast.Call]:
        if isinstance(value, ast.Lambda):
            value = value.body
        if isinstance(value, ast.Call):
            name = dotted_name(value.func)
            if name is not None and name.split(".")[-1][:1].isupper():
                return value
        return None

    def _is_interesting(self, qname: str,
                        _depth: int = 0) -> bool:
        """Only helpers that (transitively) build effects or assign enum
        state are worth inlining; forking on a pure predicate helper
        would multiply paths for nothing."""
        if qname in self._interesting:
            return self._interesting[qname]
        if _depth > _MAX_INLINE_DEPTH:
            return False
        self._interesting[qname] = False  # recursion guard
        fn = self.program.funcs.get(qname)
        if fn is None:
            return False
        result = False
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Call):
                name = dotted_name(node.func)
                leaf = name.split(".")[-1] if name else None
                if leaf in self.effect_names:
                    result = True
                    break
                if name is not None and name.startswith("self.") \
                        and name.count(".") == 1 and fn.cls is not None:
                    sub = self.program.class_method(
                        f"{fn.module}::{fn.cls}", name[5:])
                    if sub is not None and sub != qname \
                            and self._is_interesting(sub, _depth + 1):
                        result = True
                        break
        if not result:
            for _site in enum_assign_sites(fn.node):
                result = True
                break
        self._interesting[qname] = result
        return result


def explore(program: Program, fn: FuncNode,
            effect_names: Optional[FrozenSet[str]] = None) -> List[Path]:
    """Enumerate the acyclic event paths of one function."""
    names = effect_names if effect_names is not None \
        else effect_names_for(program)
    return _Explorer(program, fn, names).run()
