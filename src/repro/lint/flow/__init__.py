"""Whole-program dataflow layer for ``repro.lint``.

The per-file AST rules in :mod:`repro.lint.rules` cannot see across a
call: a helper one module away can return ``time.time()`` into the
simulator, or a handler can send a COMMIT notice on a path where the
log force never happened.  This package closes that gap with a light
three-stage pipeline:

1. :mod:`~repro.lint.flow.callgraph` — a project-wide function index
   and call graph: import/alias resolution (including relative
   imports), method resolution through ``self``/``cls``/annotated
   locals/constructor-typed attributes, and normalization of external
   primitive calls (``from time import time as now`` still reads as
   ``time.time``).
2. :mod:`~repro.lint.flow.cfg` — a per-function control-flow walk: a
   structured-CFG symbolic executor that enumerates acyclic paths
   through a handler (inlining intra-class helpers), recording guard
   atoms, effect constructions, and state assignments in order.
3. Four analyses on top (:mod:`~repro.lint.flow.rules` registers them):
   interprocedural determinism taint, sans-IO purity proof for
   ``core/``, path-sensitive log-force discipline, and static protocol
   transition-graph extraction with count cross-checks against
   :mod:`repro.analysis.static_analysis`.

Soundness limits (by design, documented in DESIGN.md): no dynamic
dispatch resolution (a callee reached only through an untyped variable
is not followed), no ``getattr``/``setattr`` tracking, and sends whose
payload field is an attribute read (``outcome=self.outcome``) are not
classified — the analyses are tuned to be useful gates, not proofs of
everything.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.lint.flow.callgraph import Program, build_program

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.lint.engine import LintContext

__all__ = ["Program", "build_program", "flow_program"]


def flow_program(ctx: "LintContext") -> Program:
    """The (cached) whole-program model for one lint run.

    All four flow rules share a single call-graph build; the first rule
    to run pays for it, the rest reuse it through the context.
    """
    cached = getattr(ctx, "flow", None)
    if isinstance(cached, Program):
        return cached
    program = build_program(ctx.files)
    ctx.flow = program
    return program
