"""Sans-IO purity proof for ``core/`` (rule ``flow-sansio-purity``).

The protocol state machines must stay pure effect emitters: a handler
consumes one input and returns a list of effect objects; the host
executes them.  That property is what lets the same machines run under
the simulator, the chaos explorer, and (ROADMAP item 2) real sockets.
This analysis machine-checks it three ways for every module under
``core/`` except the host (``core/tranman.py``):

A. **Import fence** — pure modules may import only other pure modules,
   ``log/records.py`` (record constructors are data), and a small
   allowlist of stdlib value/type modules.
B. **Reachability** — no function defined in a pure module may reach,
   through any chain of project calls, an IO/concurrency/wall-clock
   primitive (``socket.*``, ``threading.*``, ``time.*``, ``open`` ...).
   Module-level statements are checked for direct primitive calls too.
C. **Constructor fence** — machine ``__init__`` signatures must not
   accept host resources (kernels, transports, disk managers): machines
   receive data, hosts own IO.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from repro.lint.engine import LintContext
from repro.lint.findings import Finding
from repro.lint.flow.callgraph import FuncNode, Program, dotted_name

# The host half of core/: it imports mach/net/sim to *drive* machines.
HOST_EXEMPT = {"core/tranman.py"}

_ALLOWED_INTERNAL = ("core/", "log/records.py")
_ALLOWED_STDLIB = {
    "__future__", "enum", "dataclasses", "typing", "itertools", "math",
    "abc", "collections", "functools",
}

_IO_PREFIXES = (
    "socket.", "threading.", "subprocess.", "asyncio.", "os.", "time.",
    "select.", "ssl.", "multiprocessing.", "signal.", "fcntl.",
)
_IO_NAMES = {"open", "input", "print", "exec", "eval", "__import__"}

_HOST_PARAM_NAMES = {
    "kernel", "dgram", "fabric", "port", "diskman", "lan", "transport",
    "socket", "loop", "scheduler",
}


def pure_files(program: Program) -> List[str]:
    return sorted(
        info.sub for info in program.files
        if info.sub.startswith("core/") and info.sub not in HOST_EXEMPT)


def _io_primitive(dotted: str, is_call: bool) -> Optional[str]:
    if dotted in _IO_NAMES and is_call:
        return dotted
    for prefix in _IO_PREFIXES:
        if dotted.startswith(prefix) or dotted == prefix[:-1]:
            return dotted
    return None


def _own_io(fn: FuncNode) -> Optional[str]:
    for ref in fn.externals:
        prim = _io_primitive(ref.dotted, ref.is_call)
        if prim is not None:
            return prim
    return None


_Why = Tuple[str, str]   # ("prim", name) | ("call", callee qname)


def _propagate(program: Program) -> Dict[str, _Why]:
    reaches: Dict[str, _Why] = {}
    for qname, fn in program.funcs.items():
        prim = _own_io(fn)
        if prim is not None:
            reaches[qname] = ("prim", prim)
    changed = True
    while changed:
        changed = False
        for qname in program.funcs:
            if qname in reaches:
                continue
            for callee in program.callees(qname):
                if callee in reaches:
                    reaches[qname] = ("call", callee)
                    changed = True
                    break
    return reaches


def _chain(reaches: Dict[str, _Why], qname: str, limit: int = 12) -> str:
    parts: List[str] = []
    cur: Optional[str] = qname
    for _ in range(limit):
        if cur is None or cur not in reaches:
            break
        kind, detail = reaches[cur]
        parts.append(cur.split("::")[-1])
        if kind == "prim":
            parts.append(f"{detail}")
            cur = None
        else:
            cur = detail
    return " -> ".join(parts)


def _check_imports(ctx: LintContext, program: Program,
                   subs: Set[str]) -> List[Finding]:
    out: List[Finding] = []
    for sub in sorted(subs):
        info = ctx.file(sub)
        if info is None or info.tree is None:
            continue
        for node in ast.walk(info.tree):
            if isinstance(node, ast.Import):
                specs = [(alias.name, 0) for alias in node.names]
            elif isinstance(node, ast.ImportFrom):
                specs = [(node.module or "", node.level)]
            else:
                continue
            for modpath, level in specs:
                target = program.resolve_module(modpath, level, sub)
                if target is not None:
                    if target.startswith(_ALLOWED_INTERNAL[0]) \
                            or target == _ALLOWED_INTERNAL[1]:
                        continue
                    out.append(ctx.finding(
                        info, node, "flow-sansio-purity",
                        f"pure module imports {target}; core/ may only "
                        f"import core/ and log/records.py — effects out, "
                        f"never hosts in",
                        key=f"import:{sub}:{target}"))
                else:
                    head = modpath.split(".", 1)[0] if modpath else ""
                    if level == 0 and head not in _ALLOWED_STDLIB:
                        out.append(ctx.finding(
                            info, node, "flow-sansio-purity",
                            f"pure module imports non-allowlisted external "
                            f"'{modpath}'; sans-IO core code may use only "
                            f"value/type stdlib modules "
                            f"({', '.join(sorted(_ALLOWED_STDLIB - {'__future__'}))})",
                            key=f"import:{sub}:{modpath}"))
    return out


def _check_reachability(ctx: LintContext, program: Program,
                        subs: Set[str]) -> List[Finding]:
    reaches = _propagate(program)
    out: List[Finding] = []
    for fn in program.funcs.values():
        if fn.module not in subs:
            continue
        prim = _own_io(fn)
        if prim is not None:
            out.append(ctx.finding(
                fn.info, fn.node, "flow-sansio-purity",
                f"{fn.qname.split('::')[-1]} calls IO primitive {prim}; "
                f"protocol code must return effect objects instead",
                key=f"io:{fn.qname}"))
            continue
        for callee in program.callees(fn.qname):
            if callee in reaches:
                out.append(ctx.finding(
                    fn.info, fn.node, "flow-sansio-purity",
                    f"{fn.qname.split('::')[-1]} reaches IO primitive via "
                    f"{_chain(reaches, callee)}; no socket/file/thread/"
                    f"wall-clock call may be reachable from a handler",
                    key=f"reach:{fn.qname}->{callee}"))
                break
    # Module level: direct primitive calls outside any function body.
    for sub in sorted(subs):
        info = ctx.file(sub)
        if info is None or info.tree is None:
            continue
        table = program.module_symbols.get(sub, {})
        for stmt in info.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef, ast.Import, ast.ImportFrom)):
                continue
            for node in ast.walk(stmt):
                if not isinstance(node, ast.Call):
                    continue
                name = dotted_name(node.func)
                if name is None:
                    continue
                head, _, rest = name.partition(".")
                sym = table.get(head)
                if sym is not None and sym[0] == "external":
                    name = f"{sym[1]}.{rest}" if rest else sym[1]
                prim = _io_primitive(name, True)
                if prim is not None:
                    out.append(ctx.finding(
                        info, node, "flow-sansio-purity",
                        f"module-level IO call {prim} in pure module",
                        key=f"module-io:{sub}:{prim}"))
    return out


def _check_ctor_fence(ctx: LintContext, program: Program,
                      subs: Set[str]) -> List[Finding]:
    out: List[Finding] = []
    for cls in program.classes.values():
        if cls.module not in subs:
            continue
        init_q = cls.methods.get("__init__")
        init = program.funcs.get(init_q) if init_q else None
        if init is None:
            continue
        node = init.node
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        for arg in (*node.args.posonlyargs, *node.args.args,
                    *node.args.kwonlyargs):
            if arg.arg in ("self", "cls"):
                continue
            hit = arg.arg in _HOST_PARAM_NAMES
            if not hit and arg.annotation is not None:
                ann = dotted_name(arg.annotation)
                if ann is not None and \
                        ann.split(".")[-1].lower() in _HOST_PARAM_NAMES:
                    hit = True
            if hit:
                out.append(ctx.finding(
                    cls.info, node, "flow-sansio-purity",
                    f"{cls.name}.__init__ takes host resource "
                    f"'{arg.arg}'; machines receive data, hosts own IO",
                    key=f"ctor:{cls.qname}:{arg.arg}"))
    return out


def run(ctx: LintContext, program: Program) -> List[Finding]:
    subs = set(pure_files(program))
    out = _check_imports(ctx, program, subs)
    out.extend(_check_reachability(ctx, program, subs))
    out.extend(_check_ctor_fence(ctx, program, subs))
    return out
