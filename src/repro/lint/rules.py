"""The stock rule set: determinism and protocol-discipline checks.

Every rule is a function ``(LintContext) -> list[Finding]`` registered
with :func:`repro.lint.registry.rule`.  "Sim-scoped" rules apply only to
code that runs inside the simulation clock (``sim/``, ``core/``,
``net/``, ``mach/``, ``log/``, ``servers/``, ``system.py``,
``config.py``); the harness (``bench/``, ``analysis/``) may time itself
with wall clocks.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.engine import FileInfo, LintContext
from repro.lint.findings import Finding
from repro.lint.registry import rule

# ------------------------------------------------------------- helpers


def _walk_funcs(tree: ast.AST) -> Iterator[ast.AST]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            yield node


def _parent_map(tree: ast.AST) -> Dict[ast.AST, ast.AST]:
    parents: Dict[ast.AST, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents


def _dotted(node: ast.AST) -> Optional[str]:
    """'a.b.c' for nested Name/Attribute chains, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _is_kernel_attr(node: ast.AST) -> bool:
    """True for ``kernel`` / ``_kernel`` / ``*.kernel`` / ``*._kernel``."""
    if isinstance(node, ast.Name):
        return node.id in ("kernel", "_kernel")
    if isinstance(node, ast.Attribute):
        return node.attr in ("kernel", "_kernel")
    return False


# ----------------------------------------------------------- rule: clock

_WALLCLOCK = {
    "time.time", "time.monotonic", "time.perf_counter", "time.time_ns",
    "time.monotonic_ns", "time.perf_counter_ns",
    "datetime.now", "datetime.utcnow", "datetime.today",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "date.today", "datetime.date.today",
}


@rule("wallclock",
      "No wall-clock reads inside simulation code: virtual time only.")
def check_wallclock(ctx: LintContext) -> List[Finding]:
    out: List[Finding] = []
    for info in ctx.sim_files():
        if info.tree is None:
            continue
        for node in ast.walk(info.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _dotted(node.func)
            if name in _WALLCLOCK:
                out.append(ctx.finding(
                    info, node, "wallclock",
                    f"wall-clock read {name}() in simulation code; "
                    f"determinism requires Kernel.now / virtual time"))
    return out


# ------------------------------------------------------------ rule: rng

_GLOBAL_RANDOM_FNS = {
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "gauss", "normalvariate", "expovariate",
    "betavariate", "triangular", "seed", "getrandbits",
}


@rule("unseeded-random",
      "All randomness must come from seeded RngStreams, never the "
      "global random module or an unseeded Random().")
def check_unseeded_random(ctx: LintContext) -> List[Finding]:
    out: List[Finding] = []
    for info in ctx.sim_files():
        if info.tree is None:
            continue
        for node in ast.walk(info.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _dotted(node.func)
            if name is not None and name.startswith("random.") \
                    and name.split(".", 1)[1] in _GLOBAL_RANDOM_FNS:
                out.append(ctx.finding(
                    info, node, "unseeded-random",
                    f"{name}() uses the global (unseeded, shared) RNG; "
                    f"draw from repro.sim.rng.RngStreams instead"))
            elif name in ("Random", "random.Random") and not node.args \
                    and not node.keywords:
                out.append(ctx.finding(
                    info, node, "unseeded-random",
                    "Random() without a seed is nondeterministic; pass a "
                    "seed derived from the master seed (see RngStreams)"))
    return out


# ----------------------------------------------- rule: unordered iteration

_POST_METHODS = ("post", "post_soon", "schedule", "call_soon")
# Effect constructors whose list order becomes datagram post order when
# the TranMan executes them — building these in a loop counts as
# "feeding kernel.post() ordering" even though the post is elsewhere.
_ORDERED_EFFECTS = ("SendDatagram", "LazySendDatagram",
                    "MulticastDatagram", "ForceLog", "WriteLog")


def _set_annotated(ann: Optional[ast.AST]) -> bool:
    if ann is None:
        return False
    text = ast.dump(ann)
    return "'Set'" in text or "'set'" in text or "'frozenset'" in text \
        or "'FrozenSet'" in text


def _set_typed_names(tree: ast.AST) -> Tuple[Set[str], Set[str]]:
    """(self attributes, plain names) annotated as sets anywhere in the
    file: ``self.x: Set[str] = ...`` and ``dsts: Set[str]`` params."""
    attrs: Set[str] = set()
    names: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.AnnAssign) and _set_annotated(node.annotation):
            if isinstance(node.target, ast.Attribute) \
                    and isinstance(node.target.value, ast.Name) \
                    and node.target.value.id == "self":
                attrs.add(node.target.attr)
            elif isinstance(node.target, ast.Name):
                names.add(node.target.id)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for a in (*node.args.args, *node.args.posonlyargs,
                      *node.args.kwonlyargs):
                if _set_annotated(a.annotation):
                    names.add(a.arg)
    return attrs, names


def _unordered_iterable(node: ast.AST, set_attrs: Set[str],
                        set_names: Set[str]) -> Optional[str]:
    """A description if ``node`` iterates in no deterministic order."""
    if isinstance(node, ast.Set):
        return "a set literal"
    if isinstance(node, ast.Call):
        name = _dotted(node.func)
        if name in ("set", "frozenset"):
            return f"{name}(...)"
        if isinstance(node.func, ast.Attribute) and node.func.attr in (
                "keys", "values", "items") and not node.args:
            # dict views are insertion-ordered, but insertion order of a
            # dict filled from message arrival is itself history-shaped;
            # event-ordering code must sort explicitly.
            return f".{node.func.attr}() view"
    if isinstance(node, ast.Name) and node.id in set_names:
        return f"set-typed {node.id!r}"
    if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name) \
            and node.value.id == "self" and node.attr in set_attrs:
        return f"set-typed self.{node.attr}"
    if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.Sub, ast.BitOr, ast.BitAnd, ast.BitXor)):
        for side in (node.left, node.right):
            desc = _unordered_iterable(side, set_attrs, set_names)
            if desc:
                return f"a set expression over {desc}"
    return None


@rule("unordered-iteration",
      "Iteration order feeding kernel.post()/schedule() or ordered "
      "effect lists must be deterministic: no sets or dict views, "
      "sort explicitly.")
def check_unordered_iteration(ctx: LintContext) -> List[Finding]:
    out: List[Finding] = []
    for info in ctx.sim_files():
        if info.tree is None:
            continue
        set_attrs, set_names = _set_typed_names(info.tree)
        for func in _walk_funcs(info.tree):
            calls_kernel = any(
                isinstance(n, ast.Call)
                and ((isinstance(n.func, ast.Attribute)
                      and n.func.attr in _POST_METHODS
                      and _is_kernel_attr(n.func.value))
                     or (isinstance(n.func, ast.Name)
                         and n.func.id in _ORDERED_EFFECTS))
                for n in ast.walk(func))
            if not calls_kernel:
                continue
            iters: List[Tuple[ast.AST, ast.AST]] = []
            for n in ast.walk(func):
                if isinstance(n, ast.For):
                    iters.append((n, n.iter))
                elif isinstance(n, (ast.ListComp, ast.SetComp,
                                    ast.GeneratorExp, ast.DictComp)):
                    iters.extend((n, g.iter) for g in n.generators)
            for node, it in iters:
                desc = _unordered_iterable(it, set_attrs, set_names)
                if desc:
                    out.append(ctx.finding(
                        info, node, "unordered-iteration",
                        f"iterating {desc} in a function that schedules "
                        f"kernel events or builds ordered effects; wrap "
                        f"in sorted(...) so event order cannot depend on "
                        f"hash/insertion history"))
    return out


# ------------------------------------------------ rule: CostModel attrs


def _cost_typed_names(func: ast.AST) -> Set[str]:
    """Parameter/local names that hold a CostModel in this function."""
    names: Set[str] = set()
    args = getattr(func, "args", None)
    if args is not None:
        all_args = list(args.args) + list(args.posonlyargs) \
            + list(args.kwonlyargs)
        for a in all_args:
            ann = a.annotation
            text = ast.dump(ann) if ann is not None else ""
            if "CostModel" in text:
                names.add(a.arg)
    for n in ast.walk(func):
        if isinstance(n, ast.Assign) and len(n.targets) == 1 \
                and isinstance(n.targets[0], ast.Name) \
                and isinstance(n.value, ast.Call):
            callee = _dotted(n.value.func) or ""
            leaf = callee.rsplit(".", 1)[-1]
            if leaf in ("_c", "CostModel", "rt_pc_profile", "vax_mp_profile",
                        "wan_profile", "with_overrides"):
                names.add(n.targets[0].id)
    return names


@rule("costmodel-attrs",
      "Every CostModel attribute referenced anywhere must be a real "
      "dataclass field (covered by the cache fingerprint) or method.")
def check_costmodel_attrs(ctx: LintContext) -> List[Finding]:
    valid = ctx.costmodel_fields | ctx.costmodel_methods
    if not valid:
        return []
    covered = ctx.fingerprint_covered
    out: List[Finding] = []

    def check_attr(info: FileInfo, node: ast.Attribute) -> None:
        attr = node.attr
        if attr.startswith("__"):
            return
        if attr not in valid:
            out.append(ctx.finding(
                info, node, "costmodel-attrs",
                f"unknown CostModel attribute {attr!r} (not a field or "
                f"method of repro.config.CostModel)",
                key=f"attr:{attr}"))
        elif covered is not None and attr in ctx.costmodel_fields \
                and attr not in covered:
            out.append(ctx.finding(
                info, node, "costmodel-attrs",
                f"CostModel field {attr!r} is not covered by the bench "
                f"cache cost-model fingerprint: cached figures would "
                f"survive edits to it", key=f"uncovered:{attr}"))

    for info in ctx.files:
        if info.tree is None or info.sub == "config.py":
            continue
        # (a) names bound to a CostModel inside each function
        for func in _walk_funcs(info.tree):
            names = _cost_typed_names(func)
            if not names:
                continue
            for n in ast.walk(func):
                if isinstance(n, ast.Attribute) \
                        and isinstance(n.value, ast.Name) \
                        and n.value.id in names:
                    check_attr(info, n)
        # (b) `<anything>.cost.<attr>` chains, the idiom substrates use
        for n in ast.walk(info.tree):
            if isinstance(n, ast.Attribute) \
                    and isinstance(n.value, ast.Attribute) \
                    and n.value.attr == "cost":
                check_attr(info, n)
    return out


# -------------------------------------------- rule: message handlers


@rule("message-handlers",
      "Every message type declared in core/messages.py must be "
      "dispatched on (isinstance) somewhere in core/, and listed in "
      "ANY_MESSAGE.")
def check_message_handlers(ctx: LintContext) -> List[Finding]:
    info = ctx.file("core/messages.py")
    if info is None or not ctx.message_classes:
        return []
    out: List[Finding] = []
    for name, lineno in sorted(ctx.message_classes.items()):
        if name not in ctx.handled_classes:
            out.append(Finding(
                rule="message-handlers", file=info.rel, line=lineno,
                message=(f"message type {name} has no isinstance handler "
                         f"in any core/ protocol module: it would be "
                         f"silently dropped"),
                key=f"unhandled:{name}"))
        if ctx.any_message_names and name not in ctx.any_message_names:
            out.append(Finding(
                rule="message-handlers", file=info.rel, line=lineno,
                message=(f"message type {name} is missing from "
                         f"ANY_MESSAGE (fuzzers and exhaustiveness "
                         f"checks iterate it)"),
                key=f"unlisted:{name}"))
    return out


# ----------------------------------------- rule: lazy-path log forces


@rule("lazy-log-force",
      "No blocking log force where the paper requires laziness: abort "
      "records are never forced (presumed abort), and the OPTIMIZED "
      "delayed-commit branch writes its commit record lazily.")
def check_lazy_log_force(ctx: LintContext) -> List[Finding]:
    out: List[Finding] = []
    for info in ctx.sim_files():
        if info.tree is None or not info.sub.startswith("core/"):
            continue
        for node in ast.walk(info.tree):
            # ForceLog(abort_record(...)) — presumed abort violation.
            if isinstance(node, ast.Call) \
                    and _dotted(node.func) == "ForceLog" and node.args \
                    and isinstance(node.args[0], ast.Call) \
                    and (_dotted(node.args[0].func) or "").endswith(
                        "abort_record"):
                out.append(ctx.finding(
                    info, node, "lazy-log-force",
                    "abort record is forced; presumed abort requires "
                    "abort records to be written lazily (never forced)"))
            # ForceLog inside an `if ... TwoPhaseVariant.OPTIMIZED` body.
            if isinstance(node, ast.If) and any(
                    isinstance(t, ast.Attribute) and t.attr == "OPTIMIZED"
                    and (_dotted(t) or "").endswith(
                        "TwoPhaseVariant.OPTIMIZED")
                    for t in ast.walk(node.test)):
                for inner in node.body:
                    for c in ast.walk(inner):
                        if isinstance(c, ast.Call) \
                                and _dotted(c.func) == "ForceLog":
                            out.append(ctx.finding(
                                info, c, "lazy-log-force",
                                "log force on the OPTIMIZED delayed-"
                                "commit branch; the optimization exists "
                                "to skip exactly this force"))
    return out


# ------------------------------------ rule: consumed fire-and-forget


@rule("consumed-fire-and-forget",
      "kernel.post()/post_soon() return None by design; consuming the "
      "result means the caller wanted a cancellable schedule().")
def check_consumed_fire_and_forget(ctx: LintContext) -> List[Finding]:
    out: List[Finding] = []
    for info in ctx.sim_files():
        if info.tree is None:
            continue
        parents = _parent_map(info.tree)
        for node in ast.walk(info.tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in ("post", "post_soon")
                    and _is_kernel_attr(node.func.value)):
                continue
            parent = parents.get(node)
            if not isinstance(parent, ast.Expr):
                out.append(ctx.finding(
                    info, node, "consumed-fire-and-forget",
                    f"result of fire-and-forget {node.func.attr}() is "
                    f"consumed; it returns no Timer handle — use "
                    f"schedule() if the caller needs to cancel"))
    return out


# ------------------------------------------------- rule: environment


@rule("no-environ",
      "Simulation code must read configuration from SystemConfig, "
      "never the process environment (host-dependent => nondeterminism).")
def check_no_environ(ctx: LintContext) -> List[Finding]:
    out: List[Finding] = []
    for info in ctx.sim_files():
        if info.tree is None:
            continue
        for node in ast.walk(info.tree):
            name = None
            if isinstance(node, ast.Attribute):
                name = _dotted(node)
            elif isinstance(node, ast.Call):
                name = _dotted(node.func)
            if name in ("os.environ", "os.getenv", "os.environb"):
                out.append(ctx.finding(
                    info, node, "no-environ",
                    f"{name} read in simulation code; route host "
                    f"configuration through SystemConfig so runs are "
                    f"reproducible from the spec alone"))
    # Attribute nodes nest (os.environ.get walks twice); dedupe.
    seen: Set[Tuple[str, int, str]] = set()
    unique: List[Finding] = []
    for f in out:
        k = (f.file, f.line, f.rule)
        if k not in seen:
            seen.add(k)
            unique.append(f)
    return unique


# ------------------------------------------ rule: chaos oracle purity


_MUTATOR_METHODS = {
    "append", "add", "update", "pop", "popleft", "popitem", "remove",
    "clear", "extend", "insert", "discard", "setdefault", "appendleft",
    "sort", "reverse",
}


def _root_name(node: ast.AST) -> Optional[str]:
    """The base Name of an attribute/subscript/call chain, if any."""
    while isinstance(node, (ast.Attribute, ast.Subscript, ast.Call)):
        node = node.func if isinstance(node, ast.Call) else node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


@rule("chaos-oracle-readonly",
      "Chaos oracles judge a finished run: they may read tracer/kernel/"
      "tranman state through their context but must never mutate it.")
def check_chaos_oracle_readonly(ctx: LintContext) -> List[Finding]:
    info = ctx.file("chaos/oracles.py")
    if info is None or info.tree is None:
        return []
    out: List[Finding] = []
    for func in info.tree.body:
        if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        decorated = any(
            isinstance(d, ast.Call) and (_dotted(d.func) or "") == "oracle"
            for d in func.decorator_list)
        if not decorated or not func.args.args:
            continue
        # Taint the context parameter plus any local bound from it.
        tainted: Set[str] = {func.args.args[0].arg}
        for n in ast.walk(func):
            if isinstance(n, ast.Assign) and isinstance(n.value, ast.AST) \
                    and _root_name(n.value) in tainted:
                for t in n.targets:
                    if isinstance(t, ast.Name):
                        tainted.add(t.id)
            elif isinstance(n, (ast.For, ast.comprehension)) \
                    and _root_name(n.iter) in tainted:
                t = n.target
                if isinstance(t, ast.Name):
                    tainted.add(t.id)
                elif isinstance(t, ast.Tuple):
                    tainted.update(e.id for e in t.elts
                                   if isinstance(e, ast.Name))

        def flag(node: ast.AST, what: str) -> None:
            out.append(ctx.finding(
                info, node, "chaos-oracle-readonly",
                f"oracle {func.name!r} {what}; oracles must be "
                f"read-only observers of the finished run"))

        for n in ast.walk(func):
            if isinstance(n, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = n.targets if isinstance(n, ast.Assign) \
                    else [n.target]
                for t in targets:
                    if isinstance(t, (ast.Attribute, ast.Subscript)) \
                            and _root_name(t) in tainted:
                        flag(n, "assigns into simulation state")
            elif isinstance(n, ast.Delete):
                for t in n.targets:
                    if isinstance(t, (ast.Attribute, ast.Subscript)) \
                            and _root_name(t) in tainted:
                        flag(n, "deletes simulation state")
            elif isinstance(n, ast.Call) \
                    and isinstance(n.func, ast.Attribute) \
                    and n.func.attr in _MUTATOR_METHODS \
                    and _root_name(n.func.value) in tainted:
                flag(n, f"calls mutator .{n.func.attr}() on "
                        f"simulation state")
    return out


# ------------------------------------------------ rule: obs readonly


# Parameter names / annotations through which simulation objects reach
# obs code.  A SpanRecorder's own state is fair game; anything arriving
# through one of these is not.
_OBS_SIM_PARAM_NAMES = {
    "system", "kernel", "tracer", "site", "lan", "runtime", "tranman",
    "diskman", "fabric", "server", "dgram", "comman",
}
_OBS_SIM_TYPE_NAMES = {
    "CamelotSystem", "Kernel", "Tracer", "Site", "Lan", "SiteRuntime",
    "TransactionManager", "DiskManager", "IpcFabric", "DataServer",
    "DatagramService", "CommunicationManager",
}
# Calls that steer the simulation rather than read it.
_OBS_STEERING_METHODS = {
    "post", "post_soon", "schedule", "spawn", "run", "run_for",
    "run_until_idle", "run_process", "step", "send", "reply", "call",
    "unicast", "multicast", "crash", "restart", "crash_site",
    "restart_site", "trigger", "enqueue", "record", "attach_obs",
    "partition", "heal", "force", "register_site",
}


@rule("obs-readonly",
      "Code under src/repro/obs/ must not mutate or steer sim/protocol "
      "state: spans and metrics observe, never steer.  (__main__.py, "
      "the scenario driver, is exempt — it builds and runs the system.)")
def check_obs_readonly(ctx: LintContext) -> List[Finding]:
    out: List[Finding] = []
    for info in ctx.files:
        if not info.sub.startswith("obs/") or info.sub == "obs/__main__.py":
            continue
        if info.tree is None:
            continue
        for func in ast.walk(info.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            tainted: Set[str] = set()
            for a in (*func.args.args, *func.args.posonlyargs,
                      *func.args.kwonlyargs):
                ann = _dotted(a.annotation) if a.annotation is not None \
                    else None
                if a.arg in _OBS_SIM_PARAM_NAMES \
                        or (ann or "").split(".")[-1] in _OBS_SIM_TYPE_NAMES:
                    tainted.add(a.arg)
            if not tainted:
                continue
            # Propagate through simple local bindings and loop targets,
            # exactly as chaos-oracle-readonly does.
            for n in ast.walk(func):
                if isinstance(n, ast.Assign) \
                        and _root_name(n.value) in tainted:
                    for t in n.targets:
                        if isinstance(t, ast.Name):
                            tainted.add(t.id)
                elif isinstance(n, (ast.For, ast.comprehension)) \
                        and _root_name(n.iter) in tainted:
                    t = n.target
                    if isinstance(t, ast.Name):
                        tainted.add(t.id)
                    elif isinstance(t, ast.Tuple):
                        tainted.update(e.id for e in t.elts
                                       if isinstance(e, ast.Name))

            def flag(node: ast.AST, what: str) -> None:
                out.append(ctx.finding(
                    info, node, "obs-readonly",
                    f"obs function {func.name!r} {what}; the "
                    f"observability layer must never mutate or steer "
                    f"the simulation"))

            for n in ast.walk(func):
                if isinstance(n, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                    targets = n.targets if isinstance(n, ast.Assign) \
                        else [n.target]
                    for t in targets:
                        if isinstance(t, (ast.Attribute, ast.Subscript)) \
                                and _root_name(t) in tainted:
                            flag(n, "assigns into simulation state")
                elif isinstance(n, ast.Delete):
                    for t in n.targets:
                        if isinstance(t, (ast.Attribute, ast.Subscript)) \
                                and _root_name(t) in tainted:
                            flag(n, "deletes simulation state")
                elif isinstance(n, ast.Call) \
                        and isinstance(n.func, ast.Attribute) \
                        and _root_name(n.func.value) in tainted:
                    if n.func.attr in _MUTATOR_METHODS:
                        flag(n, f"calls mutator .{n.func.attr}() on "
                                f"simulation state")
                    elif n.func.attr in _OBS_STEERING_METHODS:
                        flag(n, f"calls steering method .{n.func.attr}() "
                                f"on simulation state")
    return out


# ------------------------------------------------ rule: unbounded growth

# Methods that add entries to a container.
_GROW_METHODS = {"append", "appendleft", "add", "push", "extend", "update"}
# Methods that remove entries; a class that both grows and shrinks a
# container is managing its size, which is all this heuristic asks for.
_SHRINK_METHODS = {"pop", "popleft", "popitem", "remove", "discard",
                   "clear", "drain", "truncate", "truncate_before",
                   "release_family", "forget", "forget_family"}


def _self_attr(node: ast.AST) -> Optional[str]:
    """'x' for a ``self.x`` attribute node, else None."""
    if isinstance(node, ast.Attribute) and \
            isinstance(node.value, ast.Name) and node.value.id == "self":
        return node.attr
    return None


_CONTAINER_CTORS = {"list", "dict", "set", "deque", "defaultdict",
                    "Counter", "OrderedDict"}


def _container_attrs(cls: ast.ClassDef) -> Dict[str, ast.AST]:
    """Attribute -> construction node for containers built in __init__.

    Distinguishes real containers (``self.pledges = set()``) from
    components that merely expose ``append``/``update`` methods
    (``self.diskman = diskman`` — delegation, not growth).
    """
    attrs: Dict[str, ast.AST] = {}
    for method in cls.body:
        if not isinstance(method, ast.FunctionDef) \
                or method.name != "__init__":
            continue
        for node in ast.walk(method):
            targets: List[ast.AST] = []
            value: Optional[ast.AST] = None
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            if value is None:
                continue
            is_container = (
                isinstance(value, (ast.List, ast.Dict, ast.Set,
                                   ast.ListComp, ast.DictComp,
                                   ast.SetComp))
                or (isinstance(value, ast.Call)
                    and (_dotted(value.func) or "").split(".")[-1]
                    in _CONTAINER_CTORS))
            if not is_container:
                continue
            for target in targets:
                attr = _self_attr(target)
                if attr is not None:
                    attrs.setdefault(attr, node)
    return attrs


_BOUNDED_ACK = re.compile(r"#\s*lint:\s*bounded\(([^)]+)\)")


def _bounded_ack(info: "FileInfo", *nodes: Optional[ast.AST]) -> bool:
    """True when any of the given sites carries an inline
    ``# lint: bounded(<reason>)`` acknowledgement on its source line.

    The ack is accepted on the grow site or on the ``__init__``
    construction line, and must name a reason — it is the inline
    equivalent of a baseline entry's justification, kept next to the
    code it describes so it cannot outlive a refactor silently.
    """
    for node in nodes:
        lineno = getattr(node, "lineno", None)
        if lineno is None or lineno > len(info.lines):
            continue
        if _BOUNDED_ACK.search(info.lines[lineno - 1]):
            return True
    return False


@rule("unbounded-growth",
      "A sim-path class that grows a container per event/message/"
      "transaction must also shrink it somewhere: long open-loop runs "
      "turn grow-only bookkeeping into an unbounded leak.")
def check_unbounded_growth(ctx: LintContext) -> List[Finding]:
    """Per class: flag ``self.X`` containers grown outside ``__init__``
    (``.append``/``.add``/... or ``self.X[k] = v``) when no method of
    the class ever shrinks or reassigns them.

    Growth inside ``__init__`` is construction, not accumulation; a
    reassignment outside ``__init__`` (``self.X = [...]``) counts as a
    shrink because the old contents are dropped.  Intentional grow-only
    state (config-gated history, per-site registries bounded by the
    deployment size) is acknowledged inline with
    ``# lint: bounded(<reason>)`` on the grow site or the ``__init__``
    construction line — preferred over a baseline entry because the
    reason lives next to the code it excuses.
    """
    out: List[Finding] = []
    for info in ctx.sim_files():
        if info.tree is None:
            continue
        for cls in ast.walk(info.tree):
            if not isinstance(cls, ast.ClassDef):
                continue
            containers = _container_attrs(cls)
            grows: Dict[str, ast.AST] = {}
            shrinks: Set[str] = set()
            for method in cls.body:
                if not isinstance(method, (ast.FunctionDef,
                                           ast.AsyncFunctionDef)):
                    continue
                in_init = method.name == "__init__"
                for node in ast.walk(method):
                    if isinstance(node, ast.Call) \
                            and isinstance(node.func, ast.Attribute):
                        attr = _self_attr(node.func.value)
                        if attr is None:
                            continue
                        if node.func.attr in _GROW_METHODS and not in_init:
                            grows.setdefault(attr, node)
                        elif node.func.attr in _SHRINK_METHODS:
                            shrinks.add(attr)
                    elif isinstance(node, ast.Assign):
                        for target in node.targets:
                            if isinstance(target, ast.Subscript):
                                attr = _self_attr(target.value)
                                if attr is not None and not in_init:
                                    grows.setdefault(attr, node)
                            else:
                                attr = _self_attr(target)
                                if attr is not None and not in_init:
                                    # Reassignment drops old contents.
                                    shrinks.add(attr)
                    elif isinstance(node, ast.Delete):
                        for target in node.targets:
                            if isinstance(target, ast.Subscript):
                                attr = _self_attr(target.value)
                                if attr is not None:
                                    shrinks.add(attr)
            for attr, node in sorted(grows.items()):
                if attr in shrinks or attr not in containers:
                    continue
                if _bounded_ack(info, node, containers.get(attr)):
                    continue
                out.append(ctx.finding(
                    info, node, "unbounded-growth",
                    f"{cls.name}.{attr} grows per event but no method "
                    f"of {cls.name} ever removes entries; long runs "
                    f"leak — shrink it, bound it, or baseline with a "
                    f"justification",
                    key=f"{cls.name}.{attr}"))
    return out
