"""Pluggable rule registry.

A rule is a callable ``(context) -> list[Finding]`` registered under a
stable id.  Rules are module-level functions decorated with
:func:`rule`; importing :mod:`repro.lint.rules` populates the registry.
Third parties (tests, future subsystems) can register extra rules the
same way — the engine runs whatever is in the registry, optionally
filtered by id.
"""

from __future__ import annotations

from typing import Callable, Dict, List, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.lint.engine import LintContext
    from repro.lint.findings import Finding

RuleFn = Callable[["LintContext"], List["Finding"]]

_REGISTRY: Dict[str, RuleFn] = {}


def rule(rule_id: str, doc: str = "") -> Callable[[RuleFn], RuleFn]:
    """Register ``fn`` under ``rule_id``.  Ids must be unique."""

    def deco(fn: RuleFn) -> RuleFn:
        if rule_id in _REGISTRY:
            raise ValueError(f"duplicate lint rule id {rule_id!r}")
        fn.rule_id = rule_id            # type: ignore[attr-defined]
        fn.rule_doc = doc or fn.__doc__ or ""  # type: ignore[attr-defined]
        _REGISTRY[rule_id] = fn
        return fn

    return deco


def all_rules() -> Dict[str, RuleFn]:
    """The registry, populated (imports the stock rules on first use)."""
    import repro.lint.rules  # noqa: F401  (registration side effect)
    import repro.lint.flow.rules  # noqa: F401  (whole-program rules)
    return dict(_REGISTRY)
