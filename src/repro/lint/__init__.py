"""repro.lint — a codebase-aware static-analysis pass for the simulator.

The whole reproduction rests on the simulator being *deterministic*: the
result cache (:mod:`repro.bench.cache`) keys on cost-model fingerprints,
and the harness asserts byte-equality across serial/parallel runs.  Any
hidden nondeterminism — a wall-clock read, an unseeded RNG, unordered
``set`` iteration feeding event order, two same-timestamp events racing
on a port — silently corrupts every figure while all tests stay green.

This package checks those properties mechanically:

- :mod:`repro.lint.rules` — ~8 AST rules (wall-clock, unseeded random,
  unordered iteration into the kernel, ``CostModel`` attribute/fingerprint
  coverage, message-handler completeness, presumed-abort/delayed-commit
  log-force discipline, consumed fire-and-forget results, environment
  reads) in a pluggable registry (:mod:`repro.lint.registry`).
- :mod:`repro.lint.races` — an opt-in simulation race detector: a kernel
  monitor that records same-timestamp event pairs scheduled from
  independent causes that touch the same port/lock/WAL object.
- :mod:`repro.lint.baseline` — a checked-in suppression file
  (``lint-baseline.json``) so intentional exceptions are explicit and
  CI fails only on *new* findings.

Run it with ``python -m repro.lint`` (see ``--help``); CI runs
``python -m repro.lint --format json --races`` and fails on any
non-baselined finding.
"""

from repro.lint.findings import Finding, render_json, render_text
from repro.lint.registry import all_rules, rule
from repro.lint.engine import LintContext, run_lint

__all__ = [
    "Finding",
    "LintContext",
    "all_rules",
    "render_json",
    "render_text",
    "rule",
    "run_lint",
]
