"""Checked-in suppression file: intentional findings, each justified.

``lint-baseline.json`` lists findings the tree accepts on purpose.  CI
fails only on findings *not* in the baseline, so the gate catches new
problems while grandfathered exceptions stay visible (every entry
carries a one-line justification, reviewed like any other code).

Entries match on the finding's fingerprint (rule + file + stable key),
so unrelated edits that shift line numbers do not invalidate them.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

from repro.lint.findings import Finding

BASELINE_VERSION = 1
DEFAULT_BASELINE_NAME = "lint-baseline.json"


def load_baseline(path: Optional[Path]) -> Dict[str, dict]:
    """fingerprint -> entry; empty if the file is absent."""
    if path is None or not Path(path).is_file():
        return {}
    data = json.loads(Path(path).read_text())
    if data.get("version") != BASELINE_VERSION:
        raise ValueError(
            f"baseline {path}: unsupported version {data.get('version')!r}")
    return {e["fingerprint"]: e for e in data.get("entries", [])}


def apply_baseline(findings: Iterable[Finding],
                   baseline: Dict[str, dict]) -> Tuple[List[Finding],
                                                       List[Finding]]:
    """Split findings into (new, baselined)."""
    new: List[Finding] = []
    suppressed: List[Finding] = []
    for f in findings:
        (suppressed if f.fingerprint in baseline else new).append(f)
    return new, suppressed


def write_baseline(findings: Iterable[Finding], path: Path,
                   previous: Optional[Dict[str, dict]] = None) -> int:
    """Write a baseline accepting ``findings``; keeps justifications of
    entries that are still live, stubs new ones.  Returns entry count."""
    previous = previous or {}
    entries = []
    for f in sorted(set(findings), key=lambda f: (f.file, f.line, f.rule)):
        old = previous.get(f.fingerprint)
        entries.append({
            "fingerprint": f.fingerprint,
            "rule": f.rule,
            "file": f.file,
            "key": f.key or f.message,
            "justification": (old or {}).get(
                "justification", "TODO: justify this exception"),
        })
    payload = {"version": BASELINE_VERSION, "entries": entries}
    Path(path).write_text(json.dumps(payload, indent=2) + "\n")
    return len(entries)
