"""Token-ring LAN model.

Transit time for a datagram is::

    send-cycle serialization  +  base latency  +  jitter(load)

- **Serialization**: a site's network interface emits one datagram per
  ``datagram_send_cycle`` (1.7 ms measured); back-to-back sends queue.
  This is why the paper's third prepare message leaves ~3.4 ms after the
  first, and one of the two reasons "parallel" phases are not parallel.
- **Jitter**: exponential with mean ``jitter_base + jitter_per_load *
  in_flight``; variance therefore grows with instantaneous network load,
  reproducing the paper's "variance rises with network load" observation.
- **Multicast**: one send cycle regardless of fan-out, and one shared
  jitter draw for the whole group — receivers see nearly simultaneous,
  highly correlated arrivals.  This is what cuts the variance of the
  slowest-subordinate time without changing the mean much.

Failure model: fail-stop site crashes (delivery checks the destination's
liveness at arrival time) and clean partitions (site groups; messages
crossing a group boundary are silently dropped, as on a real LAN where
the bridge went away).  Optional uniform message loss exercises the
protocols' retry paths.

Every dropped datagram is accounted by cause — random loss
(``dropped_loss`` / ``net.lost``), a partition boundary
(``dropped_partition`` / ``net.drop.partition``), or a dead sender or
destination (``dropped_dead`` / ``net.drop.dead``) — so fault-injection
oracles can tell a lossy link from a severed or crashed one.
``dropped`` remains the total.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Sequence

from repro.config import CostModel
from repro.sim.kernel import Kernel
from repro.sim.rng import RngStreams
from repro.sim.tracing import Tracer

DeliverFn = Callable[[Any], None]

# Backlog multiplier ceiling for sender-side scheduling jitter (in units
# of queued sends).  See Lan._send_jitter.
_SEND_BACKLOG_JITTER_CAP = 8.0


class Lan:
    """The shared medium connecting all sites."""

    def __init__(self, kernel: Kernel, cost: CostModel, rng: RngStreams,
                 tracer: Tracer):
        self.kernel = kernel
        self.cost = cost
        self.rng = rng
        self.tracer = tracer
        # site name -> object with .alive (registered by system assembly)
        self.sites: Dict[str, Any] = {}
        # site name -> partition group id (all zero = fully connected)
        self._group: Dict[str, int] = {}
        # site name -> time its NIC is next free to start a send
        self._nic_free: Dict[str, float] = {}
        self.in_flight = 0
        self.loss_probability = 0.0
        self.duplicate_probability = 0.0
        self.delivered = 0
        self.duplicated = 0
        self.dropped_loss = 0
        self.dropped_partition = 0
        self.dropped_dead = 0

    @property
    def dropped(self) -> int:
        """Total drops across all causes (loss + partition + dead site)."""
        return self.dropped_loss + self.dropped_partition + self.dropped_dead

    def drop_counts(self) -> Dict[str, int]:
        """Per-cause drop counters, as the trace summary exposes them."""
        return {"loss": self.dropped_loss,
                "partition": self.dropped_partition,
                "dead": self.dropped_dead,
                "total": self.dropped}

    # ------------------------------------------------------ membership

    def register_site(self, name: str, site: Any) -> None:
        self.sites[name] = site  # lint: bounded(one entry per site)
        self._group.setdefault(name, 0)
        self._nic_free.setdefault(name, 0.0)

    def site_alive(self, name: str) -> bool:
        entry = self.sites.get(name)
        return entry is None or getattr(entry, "alive", True)

    # ------------------------------------------------------- partitions

    def partition(self, groups: Sequence[Sequence[str]]) -> None:
        """Split the network into isolated groups of sites.

        Sites not named in any group remain in group 0 together.
        """
        self._group = {name: 0 for name in self._group}
        for gid, members in enumerate(groups, start=1):
            for name in members:
                self._group[name] = gid

    def heal(self) -> None:
        """Remove all partitions."""
        self._group = {name: 0 for name in self._group}

    @property
    def partitioned(self) -> bool:
        """True while any site sits outside group 0."""
        return any(gid != 0 for gid in self._group.values())

    def reachable(self, src: str, dst: str) -> bool:
        return self._group.get(src, 0) == self._group.get(dst, 0)

    # ----------------------------------------------------- transmission

    def _jitter(self) -> float:
        """Receive-side jitter: grows with instantaneous network load."""
        mean = (self.cost.datagram_jitter_base
                + self.cost.datagram_jitter_per_load * self.in_flight)
        if mean <= 0:
            return 0.0
        return self.rng.stream("lan.jitter").expovariate(1.0 / mean)

    def _send_jitter(self, backlog: float) -> float:
        """Sender-side scheduling jitter: paid per send *event* (once per
        multicast group), the dominant variance term the paper isolates.

        Repeated sends hurt superlinearly: every send already queued at
        the NIC multiplies the scheduling-jitter mean — "much of the
        variance is created by the coordinator's repeated sends and not
        by its repeated receives ... may be due to operating system
        scheduling policies" (paper §4.2).

        The multiplier is capped: jitter proportional to *unbounded*
        backlog is a positive feedback loop (more backlog -> longer
        occupancy -> more backlog) that diverges under sustained
        open-loop load, which no physical NIC does.  The paper's effect
        lives at backlogs of a few sends (a coordinator's 3-5 prepares),
        well under the cap, so the measured superlinearity is preserved
        where it matters and past the cap delay grows linearly like a
        real transmit queue.
        """
        mean = self.cost.datagram_send_jitter * (
            1.0 + min(backlog, _SEND_BACKLOG_JITTER_CAP))
        if mean <= 0:
            return 0.0
        return self.rng.stream("lan.sendsched").expovariate(1.0 / mean)

    def _lost(self) -> bool:
        if self.loss_probability <= 0:
            return False
        return self.rng.stream("lan.loss").random() < self.loss_probability

    def _duplicate(self, src: str, dst: str, payload: Any,
                   deliver: DeliverFn, base_delay: float) -> None:
        """Maybe schedule a second arrival of the same datagram.

        Models retransmission-induced duplication (a stale retry racing
        its original): the copy trails the original by a fresh jitter
        draw, so handlers see it after — possibly long after — the
        first delivery was already processed.
        """
        if self.duplicate_probability <= 0:
            return
        if self.rng.stream("lan.duplicate").random() \
                >= self.duplicate_probability:
            return
        self.duplicated += 1
        self.in_flight += 1
        self.tracer.record(self.kernel.now, "net.duplicated", site=src,
                           dst=dst)
        lag = self.cost.datagram + self._jitter()
        self.kernel.post(base_delay + lag, self._arrive, src, dst,
                         payload, deliver)

    def _serialize_send(self, src: str, cycle: float) -> float:
        """Reserve the sender NIC; returns the wire-entry delay from now.

        Each send event pays the fixed cycle plus a scheduling jitter
        draw; back-to-back sends queue behind each other, so a
        coordinator's third prepare leaves well after its first.
        """
        now = self.kernel.now
        start = max(now, self._nic_free.get(src, 0.0))
        backlog = (start - now) / cycle if cycle > 0 else 0.0
        occupancy = cycle + self._send_jitter(backlog)
        self._nic_free[src] = start + occupancy  # lint: bounded(one float per site)
        return (start + occupancy) - now

    def unicast(self, src: str, dst: str, payload: Any, deliver: DeliverFn,
                latency_override: Optional[float] = None) -> None:
        """Send one datagram; ``deliver(payload)`` runs at arrival.

        ``latency_override`` replaces base+jitter (used by the
        NetMsgServer leg whose 19.1 ms round trip the paper measured as
        one opaque number); serialization and partition/crash checks
        still apply.
        """
        if not self.site_alive(src):
            self.dropped_dead += 1
            self.tracer.record(self.kernel.now, "net.drop.dead", site=src,
                               dst=dst)
            return
        send_delay = self._serialize_send(src, self.cost.datagram_send_cycle)
        if latency_override is not None:
            transit = latency_override
        else:
            # The paper's 10 ms datagram primitive includes the send
            # cycle; keep (cycle + transit) == datagram when uncontended.
            transit = (max(0.0, self.cost.datagram - self.cost.datagram_send_cycle)
                       + self._jitter())
        self.tracer.record(self.kernel.now, "net.datagram", site=src, dst=dst)
        if self._lost():
            self.dropped_loss += 1
            self.tracer.record(self.kernel.now, "net.lost", site=src, dst=dst)
            return
        self.in_flight += 1
        obs = self.tracer.obs
        if obs is not None:
            now = self.kernel.now
            obs.net(now, now + send_delay + transit,
                    src, dst, payload, rpc=latency_override is not None)
            if obs.keep:
                obs.gauge(now, "lan.in_flight", self.in_flight)
        self.kernel.post(send_delay + transit, self._arrive, src, dst,
                         payload, deliver)
        self._duplicate(src, dst, payload, deliver, send_delay + transit)

    def multicast(self, src: str, dsts: Sequence[str], payload_for: Callable[[str], Any],
                  deliver_for: Callable[[str], DeliverFn]) -> None:
        """Send to every destination with one send cycle and one jitter draw.

        ``payload_for(dst)`` and ``deliver_for(dst)`` let the caller
        customise per-destination payloads while sharing the transmission.
        """
        if not self.site_alive(src):
            self.dropped_dead += len(dsts)
            self.tracer.record(self.kernel.now, "net.drop.dead", site=src,
                               fanout=len(dsts))
            return
        send_delay = self._serialize_send(src, self.cost.multicast_send_cycle)
        transit = (max(0.0, self.cost.datagram - self.cost.multicast_send_cycle)
                   + self._jitter())
        self.tracer.record(self.kernel.now, "net.multicast", site=src,
                           fanout=len(dsts))
        for dst in dsts:
            if self._lost():
                self.dropped_loss += 1
                self.tracer.record(self.kernel.now, "net.lost", site=src, dst=dst)
                continue
            self.in_flight += 1
            obs = self.tracer.obs
            if obs is not None:
                payload = payload_for(dst)
                now = self.kernel.now
                obs.net(now, now + send_delay + transit,
                        src, dst, payload, multicast=True)
                if obs.keep:
                    obs.gauge(now, "lan.in_flight", self.in_flight)
                self.kernel.post(send_delay + transit, self._arrive, src,
                                 dst, payload, deliver_for(dst))
                self._duplicate(src, dst, payload, deliver_for(dst),
                                send_delay + transit)
            else:
                self.kernel.post(send_delay + transit, self._arrive, src,
                                 dst, payload_for(dst), deliver_for(dst))
                self._duplicate(src, dst, payload_for(dst),
                                deliver_for(dst), send_delay + transit)

    def _arrive(self, src: str, dst: str, payload: Any, deliver: DeliverFn) -> None:
        self.in_flight -= 1
        obs = self.tracer.obs
        if obs is not None and obs.keep:
            obs.gauge(self.kernel.now, "lan.in_flight", self.in_flight)
        if not self.reachable(src, dst):
            self.dropped_partition += 1
            self.tracer.record(self.kernel.now, "net.drop.partition",
                               site=src, dst=dst)
            return
        if not self.site_alive(dst):
            self.dropped_dead += 1
            self.tracer.record(self.kernel.now, "net.drop.dead", site=src,
                               dst=dst)
            return
        self.delivered += 1
        deliver(payload)
