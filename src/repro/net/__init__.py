"""Network substrate: the token-ring LAN and the TranMan datagram layer.

The paper's testbed was a 4 Mb/s IBM token ring without gateways.  Two
of its observations shape this model:

- the coordinator's *serial* datagram sends (a send "cycle" costs 1.7 ms,
  so the third prepare message leaves ~3.4 ms after the first), and
- latency variance that grows with network load — and largely disappears
  when the coordinator multicasts instead of repeatedly unicasting.

:class:`~repro.net.lan.Lan` models transit, jitter, serialization,
multicast, partitions and message loss.  :class:`~repro.net.datagram.DatagramService`
is the thin reliable-enough layer TranMans talk through (duplicate
suppression here; timeout/retry belongs to the protocol state machines,
as in Camelot).  :class:`~repro.net.failures.FailureInjector` scripts
crashes and partitions for experiments and tests.
"""

from repro.net.datagram import Datagram, DatagramService
from repro.net.failures import FailureInjector
from repro.net.lan import Lan

__all__ = ["Datagram", "DatagramService", "FailureInjector", "Lan"]
