"""The TranMan-to-TranMan datagram layer.

Camelot's ComMan does **not** carry transaction-manager traffic: "in
order to process distributed protocols as quickly as possible,
transaction managers on different sites communicate using datagrams",
with the TranMan itself "responsible for implementing mechanisms such as
timeout/retry and duplicate detection" (paper §4.2, footnote 1).

Accordingly this service is deliberately thin:

- :meth:`DatagramService.send` / :meth:`DatagramService.multicast` put a
  :class:`Datagram` on the LAN — unreliable, unordered;
- the receive side suppresses duplicates by ``(src, dedup_key)`` so a
  protocol retry never delivers twice;
- timeout/retry is *not* here: the protocol state machines own their
  timers, exactly as in Camelot.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Sequence, Set

from repro.net.lan import Lan
from repro.sim.kernel import Kernel
from repro.sim.resources import Channel
from repro.sim.tracing import Tracer

_dgram_seq = itertools.count(1)


@dataclass
class Datagram:
    """A protocol message on the wire.

    ``dedup_key`` identifies the *logical* message: retransmissions reuse
    it, so the receiver can drop duplicates.  ``payload`` is the protocol
    message object (see :mod:`repro.core.messages`).
    """

    src: str
    dst: str
    payload: Any
    dedup_key: Optional[str] = None
    wire_seq: int = field(default_factory=lambda: next(_dgram_seq))


class DatagramService:
    """One endpoint of the datagram layer, owned by one site's TranMan.

    Received payloads land in :attr:`inbox`, a simulation channel the
    TranMan's threads drain.
    """

    # Remember this many recent dedup keys per peer before pruning.
    DEDUP_WINDOW = 4096

    def __init__(self, kernel: Kernel, lan: Lan, site: str, tracer: Tracer,
                 peers: Optional[Dict[str, "DatagramService"]] = None):
        self.kernel = kernel
        self.lan = lan
        self.site = site
        self.tracer = tracer
        # Shared endpoint registry: site name -> that site's service.
        # Registration replaces any predecessor (site restart), so mail
        # in flight across a restart reaches the new incarnation — whose
        # fresh dedup state treats it like any unknown datagram.
        self.peers: Dict[str, "DatagramService"] = (
            peers if peers is not None else {})
        self.peers[site] = self
        self.inbox: Channel = Channel(kernel, name=f"{site}.dgram")
        self._seen: Dict[str, Set[str]] = {}
        self._seen_order: Dict[str, list] = {}
        self.sent = 0
        self.received = 0
        self.duplicates = 0

    # ------------------------------------------------------------ sends

    def send(self, dst: str, payload: Any, dedup_key: Optional[str] = None) -> None:
        """One unreliable datagram to ``dst``."""
        if dst == self.site:
            # Local loopback: no LAN transit, deliver next turn.
            self.kernel.post_soon(self._deliver, Datagram(self.site, dst, payload,
                                                          dedup_key))
            return
        self.sent += 1
        dgram = Datagram(self.site, dst, payload, dedup_key)
        self.lan.unicast(self.site, dst, dgram, self._deliver_at_destination)

    def multicast(self, dsts: Sequence[str], payload: Any,
                  dedup_key: Optional[str] = None) -> None:
        """One physical multicast carrying ``payload`` to every dst."""
        remote = [d for d in dsts if d != self.site]
        if len(remote) != len(dsts):
            self.kernel.post_soon(
                self._deliver, Datagram(self.site, self.site, payload, dedup_key))
        if not remote:
            return
        self.sent += len(remote)

        def payload_for(dst: str) -> Datagram:
            return Datagram(self.site, dst, payload, dedup_key)

        def deliver_for(dst: str):
            return self._deliver_at_destination

        self.lan.multicast(self.site, remote, payload_for, deliver_for)

    # ---------------------------------------------------------- receive

    def _deliver_at_destination(self, dgram: Datagram) -> None:
        """Route an arriving datagram to the destination's endpoint."""
        endpoint = self.peers.get(dgram.dst)
        if endpoint is None:
            self.tracer.record(self.kernel.now, "net.no_endpoint",
                               site=dgram.dst)
            return
        endpoint._deliver(dgram)

    def _deliver(self, dgram: Datagram) -> None:
        if dgram.dedup_key is not None and self._is_duplicate(dgram):
            self.duplicates += 1
            self.tracer.record(self.kernel.now, "net.duplicate", site=self.site,
                               src=dgram.src)
            return
        self.received += 1
        self.inbox.put(dgram)

    def _is_duplicate(self, dgram: Datagram) -> bool:
        seen = self._seen.setdefault(dgram.src, set())
        order = self._seen_order.setdefault(dgram.src, [])
        if dgram.dedup_key in seen:
            return True
        seen.add(dgram.dedup_key)
        order.append(dgram.dedup_key)
        if len(order) > self.DEDUP_WINDOW:
            oldest = order.pop(0)
            seen.discard(oldest)
        return False

    def reset(self) -> None:
        """Forget receive-side state (site restart: RAM contents lost)."""
        self._seen.clear()
        self._seen_order.clear()
        self.inbox.drain()
