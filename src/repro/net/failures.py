"""Failure injection: scripted crashes, restarts, partitions, loss.

Experiments and tests describe failure scenarios declaratively::

    injector.crash_at(250.0, "site1")
    injector.partition_at(300.0, [["site0"], ["site1", "site2"]])
    injector.heal_at(900.0)
    injector.restart_at(1200.0, "site1")

Restart delegates to a caller-supplied hook (the system assembly layer
re-spawns the Camelot processes and runs recovery); the injector only
owns the schedule.

Primitives are idempotent under generated schedules: crashing a site
that is already down, restarting one that is already up, and healing
when no partition is active are validated no-ops — each leaves a
``*_noop`` entry in the trace and the failure log rather than silently
diverging (a random schedule generator relies on this).
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence

from repro.net.lan import Lan
from repro.sim.kernel import Kernel
from repro.sim.tracing import Tracer


class FailureInjector:
    """Schedules failures against a LAN and a set of sites."""

    def __init__(self, kernel: Kernel, lan: Lan, tracer: Tracer,
                 restart_hook: Optional[Callable[[str], None]] = None):
        self.kernel = kernel
        self.lan = lan
        self.tracer = tracer
        self.restart_hook = restart_hook
        self.log: List[tuple[float, str, Any]] = []

    # ------------------------------------------------------ primitives

    def _site(self, site_name: str) -> Any:
        site = self.lan.sites.get(site_name)
        if site is None:
            raise KeyError(f"unknown site {site_name!r}")
        return site

    def crash(self, site_name: str) -> None:
        site = self._site(site_name)
        if not getattr(site, "alive", True):
            # Already down: idempotent, but leave a trace of the attempt.
            self.tracer.record(self.kernel.now, "fail.crash_noop",
                               site=site_name)
            self.log.append((self.kernel.now, "crash_noop", site_name))
            return
        self.tracer.record(self.kernel.now, "fail.crash", site=site_name)
        self.log.append((self.kernel.now, "crash", site_name))  # lint: bounded(bounded by scenario fault count)
        site.crash()

    def restart(self, site_name: str) -> None:
        site = self._site(site_name)
        if getattr(site, "alive", True):
            # Already up: restarting a live site would tear down nothing
            # and then collide with its existing ports; no-op instead.
            self.tracer.record(self.kernel.now, "fail.restart_noop",
                               site=site_name)
            self.log.append((self.kernel.now, "restart_noop", site_name))
            return
        self.tracer.record(self.kernel.now, "fail.restart", site=site_name)
        self.log.append((self.kernel.now, "restart", site_name))
        if self.restart_hook is None:
            site.restart()
        else:
            self.restart_hook(site_name)

    def partition(self, groups: Sequence[Sequence[str]]) -> None:
        self.tracer.record(self.kernel.now, "fail.partition",
                           groups=[list(g) for g in groups])
        self.log.append((self.kernel.now, "partition", [list(g) for g in groups]))
        self.lan.partition(groups)

    def heal(self) -> None:
        if not self.lan.partitioned:
            self.tracer.record(self.kernel.now, "fail.heal_noop")
            self.log.append((self.kernel.now, "heal_noop", None))
            return
        self.tracer.record(self.kernel.now, "fail.heal")
        self.log.append((self.kernel.now, "heal", None))
        self.lan.heal()

    def set_loss(self, probability: float) -> None:
        if not 0.0 <= probability < 1.0:
            raise ValueError("loss probability must be in [0, 1)")
        self.tracer.record(self.kernel.now, "fail.loss",
                           probability=probability)
        self.log.append((self.kernel.now, "loss", probability))
        self.lan.loss_probability = probability

    def set_duplication(self, probability: float) -> None:
        if not 0.0 <= probability < 1.0:
            raise ValueError("duplication probability must be in [0, 1)")
        self.tracer.record(self.kernel.now, "fail.duplicate",
                           probability=probability)
        self.log.append((self.kernel.now, "duplicate", probability))
        self.lan.duplicate_probability = probability

    # -------------------------------------------------------- schedule

    def crash_at(self, time: float, site_name: str) -> None:
        self._at(time, self.crash, site_name)

    def restart_at(self, time: float, site_name: str) -> None:
        self._at(time, self.restart, site_name)

    def partition_at(self, time: float, groups: Sequence[Sequence[str]]) -> None:
        self._at(time, self.partition, groups)

    def heal_at(self, time: float) -> None:
        self._at(time, self.heal)

    def set_loss_at(self, time: float, probability: float) -> None:
        self._at(time, self.set_loss, probability)

    def set_duplication_at(self, time: float, probability: float) -> None:
        self._at(time, self.set_duplication, probability)

    def _at(self, time: float, fn: Callable[..., None], *args: Any) -> None:
        delay = time - self.kernel.now
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (t={time}, now={self.kernel.now})")
        self.kernel.schedule(delay, fn, *args)
