"""Generator-based simulated processes.

A process body is a generator that yields *commands*:

- ``Sleep(dt)`` — suspend for ``dt`` virtual time units.
- ``Wait(event)`` — suspend until the :class:`~repro.sim.events.SimEvent`
  triggers; the trigger value becomes the result of the ``yield``.
- a ``SimEvent`` directly — shorthand for ``Wait(event)``.

Sub-routines compose with ``yield from``.  A process finishes when its
generator returns; the return value is published on :attr:`Process.done`.
Exceptions escaping the generator are re-raised out of the kernel loop so
bugs fail tests loudly instead of silently killing a process.

Processes can be killed (:meth:`Process.kill`), which throws
:class:`ProcessKilled` into the generator — used by site-crash injection.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.sim.events import SimEvent
from repro.sim.kernel import Kernel, SimulationError, Timer

ProcessBody = Generator[Any, Any, Any]


class ProcessKilled(BaseException):
    """Thrown into a process generator by :meth:`Process.kill`.

    Derived from ``BaseException`` so ordinary ``except Exception``
    handlers inside process bodies do not accidentally swallow a crash.
    """


class Sleep:
    """Command: suspend the process for ``duration`` time units."""

    __slots__ = ("duration",)

    def __init__(self, duration: float):
        if duration < 0:
            raise SimulationError(f"negative sleep {duration!r}")
        self.duration = duration


class Wait:
    """Command: suspend until ``event`` triggers; yields its value."""

    __slots__ = ("event",)

    def __init__(self, event: SimEvent):
        self.event = event


class Process:
    """A running simulated process.

    Attributes
    ----------
    done:
        A :class:`SimEvent` triggered with the generator's return value
        when the process finishes normally, or ``None`` if killed.
    name:
        Diagnostic label shown in traces and reprs.
    """

    __slots__ = ("kernel", "name", "done", "_gen", "_alive", "_pending_timer", "_killed")

    def __init__(self, kernel: Kernel, body: ProcessBody, name: str = "proc"):
        self.kernel = kernel
        self.name = name
        self.done = SimEvent(kernel, name=f"{name}.done")
        self._gen = body
        self._alive = True
        self._killed = False
        self._pending_timer: Optional[Timer] = None
        kernel.post_soon(self._resume, None)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "alive" if self._alive else "done"
        return f"<Process {self.name} {state}>"

    @property
    def alive(self) -> bool:
        """True until the generator returns or the process is killed."""
        return self._alive

    def kill(self) -> None:
        """Terminate the process now; its ``done`` event fires with None."""
        if not self._alive:
            return
        self._killed = True
        self._alive = False
        if self._pending_timer is not None:
            self._pending_timer.cancel()
            self._pending_timer = None
        gen = self._gen
        if getattr(gen, "gi_running", False):
            # Killed from within our own execution (e.g. the body crashed
            # its own site): we cannot throw into a running frame.  The
            # current step finishes; _resume/_dispatch refuse to continue
            # a dead process, and the generator is closed next turn.
            self.kernel.post_soon(self._close_gen)
            self.done.trigger(None)
            return
        try:
            gen.throw(ProcessKilled())
        except (ProcessKilled, StopIteration):
            pass
        finally:
            gen.close()
        self.done.trigger(None)

    def _close_gen(self) -> None:
        if not getattr(self._gen, "gi_running", False):
            self._gen.close()

    def _resume(self, value: Any) -> None:
        if not self._alive:
            return
        self._pending_timer = None
        try:
            command = self._gen.send(value)
        except StopIteration as stop:
            if self._killed:
                return  # done already triggered by kill()
            self._alive = False
            self.done.trigger(stop.value)
            return
        if not self._alive:
            return  # killed from within this very step
        self._dispatch(command)

    def _dispatch(self, command: Any) -> None:
        if isinstance(command, Sleep):
            self._pending_timer = self.kernel.schedule(command.duration, self._resume, None)
        elif isinstance(command, Wait):
            command.event.add_callback(self._guarded_resume)
        elif isinstance(command, SimEvent):
            command.add_callback(self._guarded_resume)
        else:
            raise SimulationError(
                f"process {self.name!r} yielded {command!r}; expected "
                "Sleep, Wait, or SimEvent"
            )

    def _guarded_resume(self, value: Any) -> None:
        # Event callbacks registered before a kill must not resurrect us.
        if self._alive:
            self._resume(value)


def spawn(kernel: Kernel, body: ProcessBody, name: str = "proc") -> Process:
    """Convenience constructor mirroring common simulator APIs."""
    return Process(kernel, body, name=name)
