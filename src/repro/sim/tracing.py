"""Structured tracing and counting for experiments.

The benchmark harness needs to count primitives on the critical path —
log forces per transaction, datagrams per commit, RPCs — exactly the
accounting the paper does by hand in its Table 3.  Subsystems report
events to a :class:`Tracer`; experiments read counters and the raw trace.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional


@dataclass(frozen=True)
class TraceEvent:
    """One traced occurrence.

    ``kind`` is a dotted category such as ``"log.force"`` or
    ``"net.datagram"``; ``detail`` carries free-form context (tid, sizes).
    """

    time: float
    kind: str
    site: Optional[str] = None
    detail: Dict[str, Any] = field(default_factory=dict)


class Tracer:
    """Collects :class:`TraceEvent` records and per-kind counters.

    Recording the full event list can be switched off for long throughput
    runs (counters stay on); this keeps memory bounded.
    """

    def __init__(self, keep_events: bool = True):
        self.keep_events = keep_events
        self.events: List[TraceEvent] = []
        self.counters: Dict[str, int] = defaultdict(int)
        # Optional span-recorder sink (see repro.obs.spans).  Substrates
        # guard every span hook with ``tracer.obs is not None`` so the
        # disabled case costs one attribute load; the tracer itself never
        # imports or calls into repro.obs.
        self.obs: Optional[Any] = None
        if not keep_events:
            # Per-event fast path for long runs: rebinding the method on
            # the instance skips the keep_events branch and the
            # TraceEvent machinery entirely (record() is called for
            # every IPC, datagram, and log write).
            self.record = self._record_count_only  # type: ignore[method-assign]

    def record(self, time: float, kind: str, site: Optional[str] = None,
               **detail: Any) -> None:
        """Count (and optionally store) one event."""
        self.counters[kind] += 1
        if self.keep_events:
            self.events.append(TraceEvent(time=time, kind=kind, site=site, detail=detail))

    def _record_count_only(self, time: float, kind: str,
                           site: Optional[str] = None, **detail: Any) -> None:
        self.counters[kind] += 1

    def count(self, kind: str) -> int:
        return self.counters.get(kind, 0)

    def count_prefix(self, prefix: str) -> int:
        """Sum of counters whose kind starts with ``prefix``."""
        return sum(v for k, v in self.counters.items() if k.startswith(prefix))

    def attach_obs(self, recorder: Optional[Any]) -> None:
        """Install (or, with None, remove) a span-recorder sink."""
        self.obs = recorder

    def of_kind(self, kind: str) -> List[TraceEvent]:
        return [e for e in self.events if e.kind == kind]

    def between(self, t0: float, t1: float) -> List[TraceEvent]:
        """Events with ``t0 <= time <= t1`` (bounds inclusive).

        Events are appended in nondecreasing time order (the kernel's
        clock never runs backwards), so both endpoints bisect.
        """
        lo = bisect_left(self.events, t0, key=lambda e: e.time)
        hi = bisect_right(self.events, t1, lo=lo, key=lambda e: e.time)
        return self.events[lo:hi]

    def snapshot(self) -> Dict[str, int]:
        """Copy of the counters; subtract two snapshots to scope a window."""
        return dict(self.counters)

    @staticmethod
    def delta(before: Dict[str, int], after: Dict[str, int]) -> Dict[str, int]:
        """Per-kind difference ``after - before`` (kinds at zero omitted)."""
        out: Dict[str, int] = {}
        for kind, value in after.items():
            diff = value - before.get(kind, 0)
            if diff:
                out[kind] = diff
        return out

    def clear(self) -> None:
        self.events.clear()
        self.counters.clear()


class NullTracer(Tracer):
    """A tracer that drops everything; handy default for unit tests."""

    def __init__(self) -> None:
        super().__init__(keep_events=False)
        self.record = self._drop  # type: ignore[method-assign]

    def _drop(self, time: float, kind: str, site: Optional[str] = None,
              **detail: Any) -> None:
        return

    record = _drop


def summarize_counts(tracer: Tracer, kinds: Iterable[str]) -> Dict[str, int]:
    """Convenience: map each kind in ``kinds`` to its count."""
    return {kind: tracer.count(kind) for kind in kinds}
