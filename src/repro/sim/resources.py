"""Synchronisation resources for simulated processes.

All of these are *cooperative* (they exist in virtual time, not real
threads) and FIFO-fair, which keeps simulations deterministic.

Usage from a process body::

    yield from lock.acquire(owner="me")
    ...critical section...
    lock.release()

    item = yield from channel.get()
    channel.put(item)
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Generator, Optional

from repro.sim.events import SimEvent
from repro.sim.kernel import Kernel, SimulationError
from repro.sim.process import Wait


class SimLock:
    """A purely exclusive FIFO lock (the paper's C-Threads mutex).

    Like C-Threads' spin lock, it is *not* reentrant: a holder that
    re-acquires deadlocks (here: raises, because a simulated self-deadlock
    would otherwise just hang the event loop silently).
    """

    def __init__(self, kernel: Kernel, name: str = "lock"):
        self._kernel = kernel
        self.name = name
        self._holder: Optional[Any] = None
        self._waiters: Deque[tuple[SimEvent, Any]] = deque()

    @property
    def locked(self) -> bool:
        return self._holder is not None

    @property
    def holder(self) -> Optional[Any]:
        return self._holder

    def acquire(self, owner: Any = None) -> Generator[Any, Any, None]:
        """Process-body coroutine: block until the lock is ours."""
        if owner is not None and self._holder is owner:
            raise SimulationError(
                f"self-deadlock: {owner!r} re-acquiring lock {self.name!r}"
            )
        if self._holder is None and not self._waiters:
            self._holder = owner if owner is not None else object()
            return
        ev = SimEvent(self._kernel, name=f"{self.name}.acquire")
        self._waiters.append((ev, owner))
        try:
            yield Wait(ev)
        except BaseException:
            # Killed while waiting (site crash).  Un-register, or — if
            # the lock was already handed to us as we died — pass it on,
            # otherwise it stays held by a corpse forever.
            try:
                self._waiters.remove((ev, owner))
            except ValueError:
                if ev.triggered:
                    self.release()
            raise

    def try_acquire(self, owner: Any = None) -> bool:
        """Non-blocking acquire; True on success."""
        if self._holder is None and not self._waiters:
            self._holder = owner if owner is not None else object()
            return True
        return False

    def release(self) -> None:
        if self._holder is None:
            raise SimulationError(f"release of unheld lock {self.name!r}")
        if self._waiters:
            ev, owner = self._waiters.popleft()
            self._holder = owner if owner is not None else object()
            ev.trigger(None)
        else:
            self._holder = None


class Semaphore:
    """Counting semaphore with FIFO wakeup."""

    def __init__(self, kernel: Kernel, value: int = 0, name: str = "sem"):
        if value < 0:
            raise SimulationError("semaphore initial value must be >= 0")
        self._kernel = kernel
        self.name = name
        self._value = value
        self._waiters: Deque[SimEvent] = deque()

    @property
    def value(self) -> int:
        return self._value

    def up(self, count: int = 1) -> None:
        for _ in range(count):
            if self._waiters:
                self._waiters.popleft().trigger(None)
            else:
                self._value += 1

    def down(self) -> Generator[Any, Any, None]:
        if self._value > 0 and not self._waiters:
            self._value -= 1
            return
        ev = SimEvent(self._kernel, name=f"{self.name}.down")
        self._waiters.append(ev)
        try:
            yield Wait(ev)
        except BaseException:
            # Killed while waiting (site crash).  Un-register, or — if a
            # unit was already handed to us as we died — return it, else
            # the semaphore leaks capacity permanently (a restarted
            # site's CPU would otherwise stay saturated by ghosts).
            try:
                self._waiters.remove(ev)
            except ValueError:
                if ev.triggered:
                    self.up()
            raise


class Channel:
    """An unbounded FIFO queue of items; the workhorse for message ports.

    ``put`` never blocks.  ``get`` blocks until an item is available.
    Items queued while several getters wait are handed out FIFO-to-FIFO.
    """

    def __init__(self, kernel: Kernel, name: str = "chan"):
        self._kernel = kernel
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[SimEvent] = deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def waiting_getters(self) -> int:
        return len(self._getters)

    def put(self, item: Any) -> None:
        if self._getters:
            self._getters.popleft().trigger(item)
        else:
            self._items.append(item)

    def put_front(self, item: Any) -> None:
        """Requeue an item at the head (used for message requeueing)."""
        if self._getters:
            self._getters.popleft().trigger(item)
        else:
            self._items.appendleft(item)

    def get(self) -> Generator[Any, Any, Any]:
        if self._items:
            return self._items.popleft()
        ev = SimEvent(self._kernel, name=f"{self.name}.get")
        self._getters.append(ev)
        try:
            item = yield Wait(ev)
        except BaseException:
            # Killed while waiting (site crash).  Un-register, or — if an
            # item was already handed to us as we died — requeue it at
            # the head so the next getter sees it in order.
            try:
                self._getters.remove(ev)
            except ValueError:
                if ev.triggered:
                    self.put_front(ev.value)
            raise
        return item

    def try_get(self) -> tuple[bool, Any]:
        """Non-blocking get; returns (ok, item)."""
        if self._items:
            return True, self._items.popleft()
        return False, None

    def drain(self) -> list[Any]:
        """Remove and return all queued items (crash cleanup)."""
        items = list(self._items)
        self._items.clear()
        return items


class Condition:
    """Condition variable in the C-Threads style (used by rw-lock).

    ``wait`` releases the associated :class:`SimLock`, suspends, and
    re-acquires it before returning.  ``signal`` wakes one waiter,
    ``broadcast`` wakes all.
    """

    def __init__(self, kernel: Kernel, lock: SimLock, name: str = "cond"):
        self._kernel = kernel
        self._lock = lock
        self.name = name
        self._waiters: Deque[SimEvent] = deque()

    @property
    def waiting(self) -> int:
        return len(self._waiters)

    def wait(self, owner: Any = None) -> Generator[Any, Any, None]:
        ev = SimEvent(self._kernel, name=f"{self.name}.wait")
        self._waiters.append(ev)
        self._lock.release()
        try:
            yield Wait(ev)
        except BaseException:
            # Killed while waiting (site crash): un-register, or pass a
            # signal that already reached us on to the next waiter.
            try:
                self._waiters.remove(ev)
            except ValueError:
                if ev.triggered:
                    self.signal()
            raise
        yield from self._lock.acquire(owner=owner)

    def signal(self) -> None:
        if self._waiters:
            self._waiters.popleft().trigger(None)

    def broadcast(self) -> None:
        waiters, self._waiters = self._waiters, deque()
        for ev in waiters:
            ev.trigger(None)
