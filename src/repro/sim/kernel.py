"""The discrete-event kernel: a clock, a near heap, and a timer wheel.

The kernel is deliberately tiny.  It knows nothing about transactions,
messages, or CPUs; it only orders callbacks in virtual time.  Richer
abstractions (generator processes, locks, channels) are layered on top in
sibling modules.

Determinism: events scheduled for the same instant fire in scheduling
order (a monotonically increasing sequence number breaks ties), so a
simulation with a fixed RNG seed is exactly reproducible.

Hot path: every simulated message, CPU grant, and timer passes through
this module, so the representation matters.  The pending set is split
across three tiers chosen by *delay*, not by data structure dogma —
measured on this workload, C-level ``heappush``/``heappop`` beats any
per-event Python arithmetic while the heap is small, so the fix for
cancel-heavy timer load is to keep the timeout traffic out of the hot
heap entirely:

``_heap`` (near tier)
    A binary heap of the short-fuse events — message hops, CPU grants,
    process wake-ups.  ``post`` entries are plain 4-element lists
    ``[time, seq, fn, args]`` (one C ``BUILD_LIST``, no subclass
    constructor, nothing to cancel); ``schedule`` entries are
    :class:`Timer` (a 6-element list subclass).  ``seq`` is unique, so
    heap sifting is decided by C list comparison on ``(time, seq)`` and
    later elements are never compared.

``_wheel`` (bucket tier)
    An array-backed bucketed queue — 512 slots of 64 ms — that only
    timers with ``delay >=`` one slot take: exactly the retransmit /
    protocol / lock-wait timeouts that are nearly always cancelled
    before firing.  Insert and cancel are O(1) appends/flag-stores, a
    cancelled timeout never touches the near heap at all, and the heap
    stays small (= fast) no matter how many timeouts are outstanding.
    Buckets drain into the near heap *before* any event at or past
    their slot edge fires, which preserves the global ``(time, seq)``
    order exactly.

``_overflow`` (far tier)
    A heap for timers beyond the wheel horizon (32.768 s) — orphan
    timers, checkpoint sweeps.  Drained like a one-slot bucket.

Cancelled entries stay where they are (O(1) cancel), are dropped when
their tier drains, and are compacted in bulk once they outnumber the
live entries, so cancel-heavy workloads (the datagram retry layer
cancels a timer per delivered message) cannot grow the pending set
without bound.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from typing import Any, Callable, Optional

# Timer slot layout (a Timer IS a 6-element list; index names beat a
# second object per scheduled event on the allocation profile).
_TIME, _SEQ, _FN, _ARGS, _CANCELLED, _KERNEL = range(6)

# Bucket tier geometry.  One slot is 64 ms (cheap ``int(t) >> 6`` slot
# math); 512 slots give a 32.768 s horizon that covers every CostModel
# timeout except the orphan sweep.  Timers shorter than one slot go to
# the near heap: for them the wheel's Python-level slot arithmetic
# costs more than a C heappush (measured, not assumed).
_SLOT_MS = 64.0
_SLOT_SHIFT = 6
_WHEEL_SLOTS = 512
_WHEEL_MASK = _WHEEL_SLOTS - 1

_INF = float("inf")

# Compaction floor: below this many cancelled entries the scan is not
# worth it, however skewed the ratio (keeps tiny pending sets out of
# the compactor entirely).
_COMPACT_MIN_CANCELLED = 64


class SimulationError(RuntimeError):
    """Raised for kernel misuse (negative delays, running a dead kernel)."""


class Timer(list):
    """Handle returned by :meth:`Kernel.schedule`; supports cancellation.

    Doubles as the queue entry itself: the payload list
    ``[time, seq, fn, args, cancelled, kernel]`` is built by the C list
    constructor, so scheduling an event costs one allocation.
    ``cancel`` is O(1) — the entry stays in its tier, marked, and is
    dropped when the tier drains (or compacted away in bulk).
    """

    __slots__ = ()

    @property
    def time(self) -> float:
        """Virtual time at which the callback fires (or would have)."""
        return self[_TIME]

    @property
    def active(self) -> bool:
        """True while the callback has neither fired nor been cancelled."""
        return not self[_CANCELLED] and self[_FN] is not None

    def cancel(self) -> None:
        """Prevent the callback from firing.  Idempotent."""
        if self[_CANCELLED] or self[_FN] is None:
            return  # already cancelled or already fired
        self[_CANCELLED] = True
        self[_KERNEL]._note_cancel()


class Kernel:
    """Event loop owning virtual time.

    Usage::

        k = Kernel()
        k.schedule(5.0, print, "fires at t=5")
        k.run()
        assert k.now == 5.0
    """

    __slots__ = ("_now", "_seq", "_heap", "_wheel", "_slots", "_bucket_n",
                 "_overflow", "_horizon", "_running", "_live_processes",
                 "_cancelled", "monitor")

    def __init__(self) -> None:
        self._now = 0.0
        self._seq = 0
        self._heap: list = []       # near tier: heap of Timer | 4-list
        self._wheel: list = [[] for _ in range(_WHEEL_SLOTS)]
        self._slots: list = []      # heap of occupied absolute slot numbers
        self._bucket_n = 0          # entries resident in the wheel
        self._overflow: list = []   # far tier: heap of Timer
        # Lowest time any bucketed/overflow entry may fire at; events at
        # or past it trigger a drain first.  _INF when both tiers are
        # empty, so the hot dispatch path pays one float compare.
        self._horizon = _INF
        self._running = False
        self._live_processes = 0
        self._cancelled = 0     # cancelled entries still in some tier
        # Opt-in instrumentation (e.g. the repro.lint race detector).
        # When set, the monitor sees every schedule and every dispatch;
        # when None (the default) the hot path pays one predictable
        # branch per event.  Protocol: monitor.on_schedule(seq) at
        # scheduling time, monitor.before_fire(time, seq, fn, args)
        # immediately before each callback runs.  Attach before run():
        # the dispatch loop binds it once per run() call.
        self.monitor: Optional[Any] = None

    @property
    def now(self) -> float:
        """Current virtual time (milliseconds by convention in repro)."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of not-yet-cancelled scheduled calls (O(1) — monitoring
        loops poll this).

        Derived from counters every tier already maintains (fired
        entries leave their tier by pop, cancelled ones are counted as
        they cancel), so the per-event hot paths carry no separate
        live-count read-modify-write.
        """
        return (len(self._heap) + self._bucket_n + len(self._overflow)
                - self._cancelled)

    @property
    def heap_size(self) -> int:
        """Total retained entries across all tiers, including cancelled
        ones still awaiting drop (observability)."""
        return len(self._heap) + self._bucket_n + len(self._overflow)

    def schedule(self, delay: float, fn: Callable[..., None], *args: Any) -> Timer:
        """Schedule ``fn(*args)`` to run ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        seq = self._seq
        self._seq = seq + 1
        time = self._now + delay
        timer = Timer((time, seq, fn, args, False, self))
        if delay < _SLOT_MS:
            heappush(self._heap, timer)
        else:
            self._enqueue_timeout(timer, time)
        if self.monitor is not None:
            self.monitor.on_schedule(seq)
        return timer

    def _enqueue_timeout(self, timer: Timer, time: float) -> None:
        """Route a timeout-class timer to the wheel or overflow tier.

        ``delay >= _SLOT_MS`` guarantees the target slot is strictly
        ahead of the current one, and every retained slot is within
        ``_WHEEL_SLOTS`` of it, so each wheel index maps to exactly one
        absolute slot at a time.
        """
        slot = int(time) >> _SLOT_SHIFT
        if slot - (int(self._now) >> _SLOT_SHIFT) <= _WHEEL_SLOTS:
            bucket = self._wheel[slot & _WHEEL_MASK]
            if not bucket:
                heappush(self._slots, slot)
                edge = slot << _SLOT_SHIFT
                if edge < self._horizon:
                    self._horizon = edge
            bucket.append(timer)
            self._bucket_n += 1
        else:
            heappush(self._overflow, timer)
            if time < self._horizon:
                self._horizon = time

    def call_soon(self, fn: Callable[..., None], *args: Any) -> Timer:
        """Schedule ``fn(*args)`` at the current instant (after current event)."""
        return self.schedule(0.0, fn, *args)

    def post(self, delay: float, fn: Callable[..., None], *args: Any) -> None:
        """Fire-and-forget :meth:`schedule`: no :class:`Timer` handle.

        The entry is a plain 4-element list (C ``BUILD_LIST``, no
        subclass constructor, no cancelled flag), which makes this the
        cheapest way to inject an event.  Message delivery, process
        wake-ups, and event triggers — the per-event hot path — never
        cancel, so they post.  Posts always live in the near heap; the
        drain invariant only requires *bucketed* entries to be merged
        before later events fire, so a long-delay post is still
        ordered correctly.
        """
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        seq = self._seq
        self._seq = seq + 1
        heappush(self._heap, [self._now + delay, seq, fn, args])
        if self.monitor is not None:
            self.monitor.on_schedule(seq)

    def post_soon(self, fn: Callable[..., None], *args: Any) -> None:
        """Fire-and-forget :meth:`call_soon` (see :meth:`post`)."""
        seq = self._seq
        self._seq = seq + 1
        heappush(self._heap, [self._now, seq, fn, args])
        if self.monitor is not None:
            self.monitor.on_schedule(seq)

    def _note_cancel(self) -> None:
        """Timer bookkeeping: keep ``pending`` O(1) and retention bounded."""
        self._cancelled += 1
        if (self._cancelled >= _COMPACT_MIN_CANCELLED
                and self._cancelled * 2 > (len(self._heap) + self._bucket_n
                                           + len(self._overflow))):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries from every tier.

        Called when cancelled entries exceed half the retained set, so
        retention stays within 2x the live entry count (plus the
        compaction floor) no matter how cancel-heavy the workload is.
        The near heap is filtered *in place* (slice assignment) so the
        list object bound by a running dispatch loop stays valid.
        """
        heap = self._heap
        heap[:] = [e for e in heap if e.__class__ is list or not e[4]]
        heapify(heap)
        wheel = self._wheel
        kept_slots = []
        bucket_n = 0
        for slot in self._slots:
            idx = slot & _WHEEL_MASK
            bucket = wheel[idx]
            if bucket:
                live = [e for e in bucket if not e[4]]
                if live:
                    wheel[idx] = live
                    kept_slots.append(slot)
                    bucket_n += len(live)
                else:
                    wheel[idx] = []
        heapify(kept_slots)
        self._slots = kept_slots
        self._bucket_n = bucket_n
        overflow = self._overflow
        overflow[:] = [e for e in overflow if not e[4]]
        heapify(overflow)
        self._cancelled = 0
        self._horizon = min(
            (kept_slots[0] << _SLOT_SHIFT) if kept_slots else _INF,
            overflow[0][0] if overflow else _INF)

    def _drain(self, boundary: float) -> None:
        """Merge bucketed/overflow entries due by ``boundary`` into the
        near heap, dropping cancelled ones, and recompute the horizon.

        Called before any event at or past the horizon fires, so every
        timeout re-enters the global ``(time, seq)`` order in time.  A
        slot drains wholesale (entries later in the slot just sift into
        place); overflow drains by exact entry time.
        """
        heap = self._heap
        slots = self._slots
        wheel = self._wheel
        while slots and slots[0] << _SLOT_SHIFT <= boundary:
            idx = heappop(slots) & _WHEEL_MASK
            bucket = wheel[idx]
            if bucket:
                wheel[idx] = []
                self._bucket_n -= len(bucket)
                for e in bucket:
                    if e[4]:
                        self._cancelled -= 1
                    else:
                        heappush(heap, e)
        overflow = self._overflow
        while overflow and overflow[0][0] <= boundary:
            e = heappop(overflow)
            if e[4]:
                self._cancelled -= 1
            else:
                heappush(heap, e)
        self._horizon = min(
            (slots[0] << _SLOT_SHIFT) if slots else _INF,
            overflow[0][0] if overflow else _INF)

    def step(self) -> bool:
        """Run the single next event.  Returns False if none remained."""
        while True:
            heap = self._heap
            if not heap:
                if self._horizon < _INF:
                    self._drain(self._horizon)
                    continue
                return False
            entry = heap[0]
            if entry.__class__ is not list and entry[4]:  # cancelled Timer
                heappop(heap)
                self._cancelled -= 1
                continue
            time = entry[0]
            if time >= self._horizon:
                self._drain(time)
                continue
            heappop(heap)
            if time < self._now:
                raise SimulationError("event heap time went backwards")
            self._now = time
            fn, args = entry[2], entry[3]
            if entry.__class__ is not list:
                entry[2] = None  # mark fired for Timer.active
            monitor = self.monitor
            if monitor is not None:
                monitor.before_fire(time, entry[1], fn, args)
            if args:
                fn(*args)
            else:
                fn()
            return True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run events until the queues drain, ``until`` passes, or the budget ends.

        ``until`` is an absolute virtual time: the clock is advanced to it
        even if the last event fires earlier, matching the usual
        "run for this long" semantics of simulation frameworks.
        """
        if self._running:
            raise SimulationError("kernel is already running (reentrant run())")
        self._running = True
        # Hoist the optional bounds and the hot attributes out of the
        # dispatch loop.  The heap local stays valid across compaction
        # (which filters in place) but the horizon must be re-read per
        # event: a callback scheduling a timeout can lower it.
        deadline = _INF if until is None else until
        budget = -1 if max_events is None else max_events
        events = 0
        heap = self._heap
        now = self._now
        monitor = self.monitor
        try:
            while True:
                # Zero-cost try (3.11): popping the empty heap is the
                # rare path, so the per-event emptiness check is gone.
                try:
                    entry = heappop(heap)
                except IndexError:
                    horizon = self._horizon
                    if horizon < _INF and horizon <= deadline:
                        self._drain(horizon)
                        continue
                    break
                # Two dispatch arms so each event pays exactly one type
                # check: posts (plain lists) have no cancelled flag and
                # no fired-marking; Timers have both.
                if entry.__class__ is list:
                    time = entry[0]
                    if time >= self._horizon:
                        heappush(heap, entry)
                        self._drain(time)
                        continue
                    if time > deadline:
                        heappush(heap, entry)
                        break
                    if events == budget:
                        heappush(heap, entry)
                        raise SimulationError(
                            f"exceeded max_events={max_events}; "
                            "likely a livelock")
                    if time < now:
                        raise SimulationError(
                            "event heap time went backwards")
                    self._now = now = time
                    fn = entry[2]
                    args = entry[3]
                    if monitor is not None:
                        monitor.before_fire(time, entry[1], fn, args)
                    # Specialized no-arg call: CALL beats CALL_FUNCTION_EX
                    # and argless callbacks (process ticks, timer pokes)
                    # are common.
                    if args:
                        fn(*args)
                    else:
                        fn()
                    events += 1
                else:
                    if entry[4]:  # cancelled Timer
                        self._cancelled -= 1
                        continue
                    time = entry[0]
                    if time >= self._horizon:
                        heappush(heap, entry)
                        self._drain(time)
                        continue
                    if time > deadline:
                        heappush(heap, entry)
                        break
                    if events == budget:
                        heappush(heap, entry)
                        raise SimulationError(
                            f"exceeded max_events={max_events}; "
                            "likely a livelock")
                    if time < now:
                        raise SimulationError(
                            "event heap time went backwards")
                    self._now = now = time
                    fn = entry[2]
                    args = entry[3]
                    entry[2] = None  # mark fired for Timer.active
                    if monitor is not None:
                        monitor.before_fire(time, entry[1], fn, args)
                    if args:
                        fn(*args)
                    else:
                        fn()
                    events += 1
        finally:
            self._running = False
        if until is not None and self._now < until:
            self._now = until
