"""The discrete-event kernel: a clock plus a pending-event heap.

The kernel is deliberately tiny.  It knows nothing about transactions,
messages, or CPUs; it only orders callbacks in virtual time.  Richer
abstractions (generator processes, locks, channels) are layered on top in
sibling modules.

Determinism: events scheduled for the same instant fire in scheduling
order (a monotonically increasing sequence number breaks ties), so a
simulation with a fixed RNG seed is exactly reproducible.

Hot path: every simulated message, CPU grant, and timer passes through
this heap, so the representation matters.  A :class:`Timer` is a list
``[time, seq, fn, args, cancelled, kernel]`` and is pushed on the heap
directly: construction is a single C-level allocation (no ``__init__``
frame, no wrapper tuple), and heap sifting uses C-level list comparison
— ``seq`` is unique, so ordering is decided by ``(time, seq)`` and the
trailing elements are never compared.  Cancelled timers stay in the heap
(O(1) cancel) but are counted, and the heap is compacted once they
outnumber the live entries, so cancel-heavy workloads (the datagram
retry layer cancels a timer per delivered message) cannot grow it
without bound.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from typing import Any, Callable, Optional

# Timer slot layout (a Timer IS a 6-element list; index names beat a
# second object per scheduled event on the allocation profile).
_TIME, _SEQ, _FN, _ARGS, _CANCELLED, _KERNEL = range(6)

# Compaction floor: below this many cancelled entries the scan is not
# worth it, however skewed the ratio (keeps tiny heaps out of the
# compactor entirely).
_COMPACT_MIN_CANCELLED = 64


class SimulationError(RuntimeError):
    """Raised for kernel misuse (negative delays, running a dead kernel)."""


class Timer(list):
    """Handle returned by :meth:`Kernel.schedule`; supports cancellation.

    Doubles as the heap entry itself: the payload list
    ``[time, seq, fn, args, cancelled, kernel]`` is built by the C list
    constructor, so scheduling an event costs one allocation.
    ``cancel`` is O(1) — the entry stays in the heap, marked, and is
    skipped when popped (or compacted away in bulk).
    """

    __slots__ = ()

    @property
    def time(self) -> float:
        """Virtual time at which the callback fires (or would have)."""
        return self[_TIME]

    @property
    def active(self) -> bool:
        """True while the callback has neither fired nor been cancelled."""
        return not self[_CANCELLED] and self[_FN] is not None

    def cancel(self) -> None:
        """Prevent the callback from firing.  Idempotent."""
        if self[_CANCELLED] or self[_FN] is None:
            return  # already cancelled or already fired
        self[_CANCELLED] = True
        self[_KERNEL]._note_cancel()


class Kernel:
    """Event loop owning virtual time.

    Usage::

        k = Kernel()
        k.schedule(5.0, print, "fires at t=5")
        k.run()
        assert k.now == 5.0
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._seq = 0
        self._heap: list = []   # heap of Timer (ordered by (time, seq))
        self._running = False
        self._live_processes = 0
        self._live = 0          # scheduled, not yet fired or cancelled
        self._cancelled = 0     # cancelled entries still sitting in the heap
        # Opt-in instrumentation (e.g. the repro.lint race detector).
        # When set, the monitor sees every schedule and every dispatch;
        # when None (the default) the hot path pays one predictable
        # branch per event.  Protocol: monitor.on_schedule(seq) at
        # scheduling time, monitor.before_fire(time, seq, fn, args)
        # immediately before each callback runs.
        self.monitor: Optional[Any] = None

    @property
    def now(self) -> float:
        """Current virtual time (milliseconds by convention in repro)."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of not-yet-cancelled scheduled calls (O(1) — monitoring
        loops poll this)."""
        return self._live

    @property
    def heap_size(self) -> int:
        """Total heap entries including cancelled ones (observability)."""
        return len(self._heap)

    def schedule(self, delay: float, fn: Callable[..., None], *args: Any) -> Timer:
        """Schedule ``fn(*args)`` to run ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        seq = self._seq
        self._seq = seq + 1
        timer = Timer((self._now + delay, seq, fn, args, False, self))
        heappush(self._heap, timer)
        self._live += 1
        if self.monitor is not None:
            self.monitor.on_schedule(seq)
        return timer

    def call_soon(self, fn: Callable[..., None], *args: Any) -> Timer:
        """Schedule ``fn(*args)`` at the current instant (after current event)."""
        return self.schedule(0.0, fn, *args)

    def post(self, delay: float, fn: Callable[..., None], *args: Any) -> None:
        """Fire-and-forget :meth:`schedule`: no :class:`Timer` handle.

        The heap entry is a plain list (C ``BUILD_LIST``, no subclass
        constructor), which makes this the cheapest way to inject an
        event.  Message delivery, process wake-ups, and event triggers —
        the per-event hot path — never cancel, so they post.
        """
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        seq = self._seq
        self._seq = seq + 1
        heappush(self._heap, [self._now + delay, seq, fn, args, False, None])
        self._live += 1
        if self.monitor is not None:
            self.monitor.on_schedule(seq)

    def post_soon(self, fn: Callable[..., None], *args: Any) -> None:
        """Fire-and-forget :meth:`call_soon` (see :meth:`post`)."""
        seq = self._seq
        self._seq = seq + 1
        heappush(self._heap, [self._now, seq, fn, args, False, None])
        self._live += 1
        if self.monitor is not None:
            self.monitor.on_schedule(seq)

    def _note_cancel(self) -> None:
        """Timer bookkeeping: keep ``pending`` O(1) and the heap bounded."""
        self._live -= 1
        self._cancelled += 1
        if (self._cancelled >= _COMPACT_MIN_CANCELLED
                and self._cancelled * 2 > len(self._heap)):
            self._compact()

    def _compact(self) -> None:
        """Rebuild the heap without cancelled entries.

        Called when cancelled entries exceed half the heap, so the heap
        size stays within 2x the live entry count (plus the compaction
        floor) no matter how cancel-heavy the workload is.
        """
        self._heap = [timer for timer in self._heap if not timer[_CANCELLED]]
        heapify(self._heap)
        self._cancelled = 0

    def step(self) -> bool:
        """Run the single next event.  Returns False if none remained."""
        # Timer slots addressed by literal index (see _TIME.._KERNEL):
        # this loop runs once per simulated event.
        while True:
            heap = self._heap  # re-read: a callback's cancel may compact
            if not heap:
                return False
            timer = heappop(heap)
            if timer[4]:  # cancelled
                self._cancelled -= 1
                continue
            time = timer[0]
            if time < self._now:
                raise SimulationError("event heap time went backwards")
            self._now = time
            self._live -= 1
            fn, args = timer[2], timer[3]
            timer[2] = None  # mark fired for Timer.active
            timer[3] = ()
            if self.monitor is not None:
                self.monitor.before_fire(time, timer[1], fn, args)
            fn(*args)
            return True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run events until the heap drains, ``until`` passes, or the budget ends.

        ``until`` is an absolute virtual time: the clock is advanced to it
        even if the last event fires earlier, matching the usual
        "run for this long" semantics of simulation frameworks.
        """
        if self._running:
            raise SimulationError("kernel is already running (reentrant run())")
        self._running = True
        # Hoist the optional bounds out of the dispatch loop.
        deadline = float("inf") if until is None else until
        budget = -1 if max_events is None else max_events
        events = 0
        try:
            while True:
                heap = self._heap  # re-read: compaction swaps the list
                if not heap:
                    break
                timer = heap[0]
                if timer[4]:  # cancelled
                    heappop(heap)
                    self._cancelled -= 1
                    continue
                time = timer[0]
                if time > deadline:
                    break
                if events == budget:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; likely a livelock"
                    )
                # Inline dispatch (step() would pop via a second peek).
                heappop(heap)
                if time < self._now:
                    raise SimulationError("event heap time went backwards")
                self._now = time
                self._live -= 1
                fn, args = timer[2], timer[3]
                timer[2] = None  # mark fired for Timer.active
                timer[3] = ()
                if self.monitor is not None:
                    self.monitor.before_fire(time, timer[1], fn, args)
                fn(*args)
                events += 1
        finally:
            self._running = False
        if until is not None and self._now < until:
            self._now = until
