"""The discrete-event kernel: a clock plus a pending-event heap.

The kernel is deliberately tiny.  It knows nothing about transactions,
messages, or CPUs; it only orders callbacks in virtual time.  Richer
abstractions (generator processes, locks, channels) are layered on top in
sibling modules.

Determinism: events scheduled for the same instant fire in scheduling
order (a monotonically increasing sequence number breaks ties), so a
simulation with a fixed RNG seed is exactly reproducible.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional


class SimulationError(RuntimeError):
    """Raised for kernel misuse (negative delays, running a dead kernel)."""


class _ScheduledCall:
    """A pending callback; comparison orders the heap.

    ``cancelled`` implements O(1) timer cancellation: the entry stays in
    the heap but is skipped when popped.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(self, time: float, seq: int, fn: Callable[..., None], args: tuple):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def __lt__(self, other: "_ScheduledCall") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


class Timer:
    """Handle returned by :meth:`Kernel.schedule`; supports cancellation."""

    __slots__ = ("_call",)

    def __init__(self, call: _ScheduledCall):
        self._call = call

    @property
    def time(self) -> float:
        """Virtual time at which the callback fires (or would have)."""
        return self._call.time

    @property
    def active(self) -> bool:
        """True while the callback has neither fired nor been cancelled."""
        return not self._call.cancelled and self._call.fn is not None

    def cancel(self) -> None:
        """Prevent the callback from firing.  Idempotent."""
        self._call.cancelled = True


class Kernel:
    """Event loop owning virtual time.

    Usage::

        k = Kernel()
        k.schedule(5.0, print, "fires at t=5")
        k.run()
        assert k.now == 5.0
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._seq = 0
        self._heap: list[_ScheduledCall] = []
        self._running = False
        self._live_processes = 0

    @property
    def now(self) -> float:
        """Current virtual time (milliseconds by convention in repro)."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of not-yet-cancelled scheduled calls."""
        return sum(1 for call in self._heap if not call.cancelled)

    def schedule(self, delay: float, fn: Callable[..., None], *args: Any) -> Timer:
        """Schedule ``fn(*args)`` to run ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        call = _ScheduledCall(self._now + delay, self._seq, fn, args)
        self._seq += 1
        heapq.heappush(self._heap, call)
        return Timer(call)

    def call_soon(self, fn: Callable[..., None], *args: Any) -> Timer:
        """Schedule ``fn(*args)`` at the current instant (after current event)."""
        return self.schedule(0.0, fn, *args)

    def step(self) -> bool:
        """Run the single next event.  Returns False if none remained."""
        while self._heap:
            call = heapq.heappop(self._heap)
            if call.cancelled:
                continue
            if call.time < self._now:
                raise SimulationError("event heap time went backwards")
            self._now = call.time
            fn, args = call.fn, call.args
            call.fn = None  # mark fired for Timer.active
            call.args = ()
            fn(*args)
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run events until the heap drains, ``until`` passes, or the budget ends.

        ``until`` is an absolute virtual time: the clock is advanced to it
        even if the last event fires earlier, matching the usual
        "run for this long" semantics of simulation frameworks.
        """
        if self._running:
            raise SimulationError("kernel is already running (reentrant run())")
        self._running = True
        events = 0
        try:
            while self._heap:
                nxt = self._heap[0]
                if nxt.cancelled:
                    heapq.heappop(self._heap)
                    continue
                if until is not None and nxt.time > until:
                    break
                if max_events is not None and events >= max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; likely a livelock"
                    )
                self.step()
                events += 1
        finally:
            self._running = False
        if until is not None and self._now < until:
            self._now = until
