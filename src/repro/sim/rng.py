"""Named deterministic random-number streams.

Each subsystem (network jitter, workload think times, failure injection)
draws from its *own* stream, derived from a master seed plus the stream
name.  That way adding a random draw in one subsystem does not perturb
the sequence seen by another — experiments stay comparable across code
changes, the standard trick in simulation practice.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


def _derive_seed(master_seed: int, name: str) -> int:
    digest = hashlib.sha256(f"{master_seed}:{name}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


class RngStreams:
    """A factory of independent, reproducible ``random.Random`` streams."""

    def __init__(self, master_seed: int = 0):
        self.master_seed = master_seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it deterministically."""
        rng = self._streams.get(name)
        if rng is None:
            rng = random.Random(_derive_seed(self.master_seed, name))
            self._streams[name] = rng
        return rng

    def reseed(self, master_seed: int) -> None:
        """Restart every stream from a new master seed."""
        self.master_seed = master_seed
        self._streams.clear()

    def uniform(self, name: str, lo: float, hi: float) -> float:
        return self.stream(name).uniform(lo, hi)

    def expovariate(self, name: str, rate: float) -> float:
        return self.stream(name).expovariate(rate)

    def gauss(self, name: str, mu: float, sigma: float) -> float:
        return self.stream(name).gauss(mu, sigma)
