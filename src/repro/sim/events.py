"""One-shot triggerable events for process synchronisation.

A :class:`SimEvent` starts untriggered; processes that ``yield Wait(ev)``
suspend until someone calls :meth:`SimEvent.trigger`.  The trigger value
is delivered as the result of the ``yield``.  Triggering is scheduled via
the kernel (not delivered inline), so waiters always resume in a fresh
event-loop turn — the same discipline asyncio uses to avoid reentrancy
surprises.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.sim.kernel import Kernel, SimulationError


class SimEvent:
    """A one-shot event carrying an optional value.

    Waiting on an already-triggered event completes immediately (next
    kernel turn) with the stored value.  Triggering twice is an error
    unless ``ignore_retrigger`` was set — protocol timers sometimes race
    with completion and want the second trigger to be a no-op.
    """

    __slots__ = ("_kernel", "_callbacks", "triggered", "value", "name", "_ignore_retrigger")

    def __init__(self, kernel: Kernel, name: str = "", ignore_retrigger: bool = False):
        self._kernel = kernel
        self._callbacks: list[Callable[[Any], None]] = []
        self.triggered = False
        self.value: Any = None
        self.name = name
        self._ignore_retrigger = ignore_retrigger

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "triggered" if self.triggered else "pending"
        return f"<SimEvent {self.name or hex(id(self))} {state}>"

    def add_callback(self, fn: Callable[[Any], None]) -> None:
        """Register ``fn(value)`` to run when (or if already) triggered."""
        if self.triggered:
            self._kernel.post_soon(fn, self.value)
        else:
            self._callbacks.append(fn)  # lint: bounded(event-scoped lifetime)

    def trigger(self, value: Any = None) -> None:
        """Fire the event, waking all current and future waiters."""
        if self.triggered:
            if self._ignore_retrigger:
                return
            raise SimulationError(f"event {self.name!r} triggered twice")
        self.triggered = True
        self.value = value
        callbacks, self._callbacks = self._callbacks, []
        for fn in callbacks:
            self._kernel.post_soon(fn, value)


def all_of(kernel: Kernel, events: list[SimEvent], name: str = "all_of") -> SimEvent:
    """Return an event that triggers once every event in ``events`` has.

    The combined value is the list of individual values, in input order.
    An empty list triggers immediately.
    """
    combined = SimEvent(kernel, name=name)
    remaining = len(events)
    values: list[Any] = [None] * len(events)
    if remaining == 0:
        combined.trigger([])
        return combined

    def make_cb(index: int) -> Callable[[Any], None]:
        def cb(value: Any) -> None:
            nonlocal remaining
            values[index] = value
            remaining -= 1
            if remaining == 0:
                combined.trigger(values)

        return cb

    for i, ev in enumerate(events):
        ev.add_callback(make_cb(i))
    return combined


def any_of(kernel: Kernel, events: list[SimEvent], name: str = "any_of") -> SimEvent:
    """Return an event that triggers when the first of ``events`` does.

    The combined value is ``(index, value)`` of the winner.  Later
    triggers are ignored.
    """
    if not events:
        raise SimulationError("any_of() needs at least one event")
    combined = SimEvent(kernel, name=name, ignore_retrigger=True)

    def make_cb(index: int) -> Callable[[Any], None]:
        def cb(value: Any) -> None:
            combined.trigger((index, value))

        return cb

    for i, ev in enumerate(events):
        ev.add_callback(make_cb(i))
    return combined


def timeout_event(kernel: Kernel, delay: float, value: Any = None,
                  name: str = "timeout") -> SimEvent:
    """An event that self-triggers ``delay`` from now."""
    ev = SimEvent(kernel, name=name)
    kernel.schedule(delay, ev.trigger, value)
    return ev
