"""Discrete-event simulation substrate.

Every other subsystem in :mod:`repro` — the Mach-like IPC layer, the LAN,
the write-ahead log, the Camelot processes — runs on top of this small
deterministic discrete-event kernel.  Simulated "processes" are plain
Python generators that yield *commands* (sleep, wait on an event, acquire
a lock, ...); the kernel advances virtual time and resumes them.

The public surface:

- :class:`~repro.sim.kernel.Kernel` — the event loop and clock.
- :class:`~repro.sim.process.Process` — a running generator.
- commands: :class:`~repro.sim.process.Sleep`,
  :class:`~repro.sim.process.Wait`.
- :class:`~repro.sim.events.SimEvent` — one-shot triggerable event.
- resources: :class:`~repro.sim.resources.SimLock`,
  :class:`~repro.sim.resources.Semaphore`,
  :class:`~repro.sim.resources.Channel`,
  :class:`~repro.sim.resources.Condition`.
- :class:`~repro.sim.rng.RngStreams` — named deterministic RNG streams.
- :class:`~repro.sim.tracing.Tracer` — structured event trace + counters.
"""

from repro.sim.events import SimEvent
from repro.sim.kernel import Kernel, SimulationError
from repro.sim.process import Process, ProcessKilled, Sleep, Wait
from repro.sim.resources import Channel, Condition, Semaphore, SimLock
from repro.sim.rng import RngStreams
from repro.sim.tracing import Tracer

__all__ = [
    "Channel",
    "Condition",
    "Kernel",
    "Process",
    "ProcessKilled",
    "RngStreams",
    "Semaphore",
    "SimEvent",
    "SimLock",
    "SimulationError",
    "Sleep",
    "Tracer",
    "Wait",
]
