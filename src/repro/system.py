"""System assembly: build a whole simulated Camelot deployment.

:class:`CamelotSystem` wires together everything below it — kernel, RNG
streams, tracer, LAN, IPC fabric, name directory, per-site process
suites (NetMsgServer, ComMan, DiskMan, TranMan, data servers) — from one
:class:`~repro.config.SystemConfig`.  It owns crash/restart (including
running recovery), and is the entry point examples and benchmarks use::

    system = CamelotSystem(SystemConfig(sites={"a": 1, "b": 1}))
    app = system.application("a")
    system.spawn(my_workload(app), "workload")
    system.run_for(5_000.0)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Generator, List, Optional

from repro.config import CostModel, SystemConfig
from repro.core.outcomes import Outcome
from repro.core.tranman import TransactionManager
from repro.log.storage import StableStoreDirectory
from repro.mach.ipc import IpcFabric
from repro.mach.netmsgserver import NameDirectory, NetMsgServer
from repro.mach.site import Site
from repro.net.datagram import DatagramService
from repro.net.failures import FailureInjector
from repro.net.lan import Lan
from repro.servers.application import Application
from repro.servers.comman import CommunicationManager
from repro.servers.dataserver import DataServer
from repro.servers.diskman import DiskManager
from repro.servers.recovery import analyze, build_machines
from repro.sim.kernel import Kernel
from repro.sim.process import Process, ProcessBody, Sleep
from repro.sim.rng import RngStreams
from repro.sim.tracing import Tracer


@dataclass
class SiteRuntime:
    """All live components of one site."""

    site: Site
    nms: NetMsgServer
    comman: CommunicationManager
    dgram: DatagramService
    diskman: DiskManager
    tranman: TransactionManager
    servers: Dict[str, DataServer]


class CamelotSystem:
    """A complete multi-site Camelot deployment in one event kernel."""

    def __init__(self, config: Optional[SystemConfig] = None,
                 initial_objects: Optional[Dict[str, Any]] = None,
                 tracer: Optional[Tracer] = None):
        self.config = config or SystemConfig()
        self.cost: CostModel = self.config.cost
        self.kernel = Kernel()
        self.rng = RngStreams(self.config.seed)
        # An injected tracer (e.g. NullTracer for overhead baselines)
        # replaces the config-driven default.
        self.tracer = tracer if tracer is not None \
            else Tracer(keep_events=self.config.keep_trace_events)
        self.stores = StableStoreDirectory()
        self.directory = NameDirectory()
        self.lan = Lan(self.kernel, self.cost, self.rng, self.tracer)
        self.fabric = IpcFabric(self.kernel, self.cost, self.tracer)
        self.runtimes: Dict[str, SiteRuntime] = {}
        self.dgram_peers: Dict[str, DatagramService] = {}
        self.initial_objects = dict(initial_objects or {})
        for name, n_servers in self.config.sites.items():
            self._build_site(name, n_servers, first_boot=True)
        self.failures = FailureInjector(self.kernel, self.lan, self.tracer,
                                        restart_hook=self.restart_site)

    # ----------------------------------------------------- construction

    def _build_site(self, name: str, n_servers: int,
                    first_boot: bool) -> SiteRuntime:
        if first_boot:
            site = Site(self.kernel, name, self.cost)
            self.lan.register_site(name, site)
            self.fabric.sites[name] = site
        else:
            site = self.runtimes[name].site
        nms = NetMsgServer(self.kernel, self.lan, self.fabric,
                           self.directory, name, self.cost, self.tracer)
        dgram = DatagramService(self.kernel, self.lan, name, self.tracer,
                                peers=self.dgram_peers)
        diskman = DiskManager(self.kernel, site, self.cost,
                              self.stores.for_site(name), self.tracer,
                              group_commit=self.config.group_commit)
        tranman = TransactionManager(
            self.kernel, site, self.fabric, dgram, diskman, self.cost,
            self.tracer, threads=self.config.tranman_threads,
            use_multicast=self.config.use_multicast)
        comman = CommunicationManager(self.kernel, site, self.fabric, nms,
                                      self.cost, self.tracer)
        comman.tranman = tranman
        self.directory.register(f"comman@{name}", name, comman.port)
        servers: Dict[str, DataServer] = {}
        for i in range(n_servers):
            server_name = f"server{i}@{name}"
            server = DataServer(
                self.kernel, site, server_name, self.fabric, diskman,
                self.cost, self.tracer, tranman_port=tranman.port,
                threads=self.config.server_threads,
                initial_objects=self.initial_objects.get(server_name),
                read_only_optimization=self.config.read_only_optimization)
            self.directory.register(server_name, name, server.port)
            tranman.register_server(server)
            servers[server_name] = server
        runtime = SiteRuntime(site=site, nms=nms, comman=comman, dgram=dgram,
                              diskman=diskman, tranman=tranman,
                              servers=servers)
        self.runtimes[name] = runtime  # lint: bounded(one runtime per site)
        if self.config.cost.checkpoint_interval > 0:
            site.spawn(self._checkpoint_loop(runtime),
                       f"{name}.checkpointer")
        return runtime

    def _checkpoint_loop(self, runtime: SiteRuntime
                         ) -> Generator[Any, Any, None]:
        interval = self.config.cost.checkpoint_interval
        while True:
            yield Sleep(interval)
            yield from runtime.diskman.checkpoint(
                runtime.servers, tombstones=runtime.tranman.tombstones)

    # ------------------------------------------------------- accessors

    def site_names(self) -> List[str]:
        return sorted(self.runtimes)

    def runtime(self, name: str) -> SiteRuntime:
        return self.runtimes[name]

    def tranman(self, name: str) -> TransactionManager:
        return self.runtimes[name].tranman

    def server(self, service: str) -> DataServer:
        site_name = service.split("@", 1)[1]
        return self.runtimes[site_name].servers[service]

    def application(self, site_name: str, name: str = "app",
                    keep_history: bool = True) -> Application:
        """An application bound to ``site_name``.  ``keep_history=False``
        is the streaming mode for unbounded workloads (open-loop runs):
        outcome counts stay exact, per-transaction records are dropped
        at completion."""
        rt = self.runtimes[site_name]
        return Application(self.kernel, rt.site, self.fabric, rt.comman,
                           rt.tranman.port, self.cost, self.tracer,
                           name=f"{name}@{site_name}",
                           keep_history=keep_history)

    def default_services(self) -> List[str]:
        """One server per site, coordinator's first (the paper's minimal
        distributed transaction layout)."""
        return [f"server0@{name}" for name in self.site_names()]

    # --------------------------------------------------------- running

    def spawn(self, body: ProcessBody, name: str = "workload") -> Process:
        return Process(self.kernel, body, name=name)

    def run_for(self, duration_ms: float) -> None:
        self.kernel.run(until=self.kernel.now + duration_ms)

    def run_until_idle(self, max_ms: Optional[float] = None) -> None:
        """Run until the heap drains (periodic sweepers make this rare;
        prefer :meth:`run_for` with a bound)."""
        self.kernel.run(until=None if max_ms is None
                        else self.kernel.now + max_ms)

    def run_process(self, body: ProcessBody, timeout_ms: float = 60_000.0,
                    name: str = "workload") -> Any:
        """Spawn a process and run the kernel until it finishes."""
        proc = self.spawn(body, name=name)
        deadline = self.kernel.now + timeout_ms
        while proc.alive and self.kernel.now < deadline:
            if not self.kernel.step():
                break
        if proc.alive:
            raise TimeoutError(f"{name} did not finish within {timeout_ms}ms")
        return proc.done.value

    # -------------------------------------------------- crash / restart

    def crash_site(self, name: str) -> None:
        self.runtimes[name].site.crash()

    def restart_site(self, name: str) -> SiteRuntime:
        """Bring a crashed site back: fresh processes + crash recovery."""
        rt = self.runtimes[name]
        n_servers = len(rt.servers)
        rt.site.restart()
        runtime = self._build_site(name, n_servers, first_boot=False)
        self._recover(runtime)
        return runtime

    def _recover(self, runtime: SiteRuntime) -> None:
        name = runtime.site.name
        plan = analyze(name, self.stores.for_site(name).records())
        self.tracer.record(self.kernel.now, "recovery.plan", site=name,
                           in_doubt=len(plan.in_doubt),
                           unacked=len(plan.unacked_commits))
        # Recovered values: initial objects, then the last checkpoint's
        # committed view, then the redo pass on top.
        touched = set(plan.base_values) | set(plan.redo_values)
        for server_name in touched:
            server = runtime.servers.get(server_name)
            if server is not None:
                merged = dict(self.initial_objects.get(server_name) or {})
                merged.update(plan.base_values.get(server_name, {}))
                merged.update(plan.redo_values.get(server_name, {}))
                server.load_state(merged)
        runtime.tranman.tombstones.update(plan.tombstones)
        runtime.tranman.pledges.update(plan.pledges)
        # Adopted bookkeeping joins the retire log so recovered state is
        # pruned on the same retention horizon as live state.
        for tid_str in set(plan.tombstones) | set(plan.pledges):
            runtime.tranman.note_retirable(tid_str)
        for machine, effects in build_machines(
                plan, name, protocol_timeout_ms=self.cost.protocol_timeout):
            runtime.tranman.adopt_recovered_machine(machine, effects)
        for tid_str, redo in plan.pending_redo.items():
            runtime.site.spawn(
                self._pending_redo_watch(runtime, tid_str, redo),
                f"recovery.redo.{tid_str}")

    def _pending_redo_watch(self, runtime: SiteRuntime, tid_str: str,
                            redo: List[Any]) -> Generator[Any, Any, None]:
        """Apply an in-doubt transaction's updates once it resolves to
        committed (drop them if it aborts)."""
        while True:
            outcome = runtime.tranman.tombstones.get(tid_str)
            if outcome is Outcome.COMMITTED:
                for server_name, obj, value in redo:
                    server = runtime.servers.get(server_name)
                    if server is not None:
                        server.values[obj] = value
                self.tracer.record(self.kernel.now, "recovery.redo_applied",
                                   site=runtime.site.name, tid=tid_str)
                return
            if outcome is Outcome.ABORTED:
                return
            yield Sleep(50.0)
