"""Mach-like OS substrate: typed messages, ports, IPC, threads, CPU.

Camelot is "operating-system-intensive": nearly all of its overhead is
Mach primitives.  This package models the Mach 2.0 facilities the paper
depends on, at the granularity the paper measures them:

- typed messages sent to **ports** (:mod:`repro.mach.message`,
  :mod:`repro.mach.ports`),
- local IPC and synchronous RPC with the Table 1/2 latencies
  (:mod:`repro.mach.ipc`),
- a C-Threads-like thread package — pools, spin locks, rw-locks,
  condition variables (:mod:`repro.mach.threads`),
- per-site CPUs with a single master run queue and context-switch cost
  (:mod:`repro.mach.scheduler`),
- the NetMsgServer: name service plus inter-site RPC forwarding
  (:mod:`repro.mach.netmsgserver`).
"""

from repro.mach.ipc import IpcFabric
from repro.mach.message import Message
from repro.mach.netmsgserver import NameDirectory, NetMsgServer
from repro.mach.ports import DeadPortError, Port
from repro.mach.scheduler import CpuScheduler
from repro.mach.threads import CThreadsPool, RwLock

__all__ = [
    "CThreadsPool",
    "CpuScheduler",
    "DeadPortError",
    "IpcFabric",
    "Message",
    "NameDirectory",
    "NetMsgServer",
    "Port",
    "RwLock",
]
