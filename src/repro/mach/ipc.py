"""The IPC fabric: message transfer priced by the cost model.

Mach allows messages only between threads on a single site; anything
inter-site goes through forwarding agents (NetMsgServer/ComMan, see
:mod:`repro.mach.netmsgserver` and :mod:`repro.servers.comman`).  This
fabric therefore only implements *local* transfer flavours, each with
the latency the paper measured (Table 2):

====================  =======================================  ========
flavour               paper row                                latency
====================  =======================================  ========
``inline``            Local in-line IPC                        1.5 ms
``oneway``            Local one-way inline message             1.0 ms
``outofline``         Local out-of-line IPC                    5.5 ms
``immediate``         (intra-process handoff, not an IPC)      0 ms
====================  =======================================  ========

A synchronous call to a server ("Local in-line IPC to server", 3 ms) is
two ``inline`` legs: request + reply.

Replies travel on lightweight reply handles (:class:`ReplyHandle`), not
full ports: the requester blocks on a one-shot event, the responder
answers through :meth:`IpcFabric.reply`.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, Optional

from repro.config import CostModel
from repro.mach.message import Message
from repro.mach.ports import Port
from repro.sim.events import SimEvent
from repro.sim.kernel import Kernel
from repro.sim.process import Wait
from repro.sim.tracing import Tracer

FLAVOURS = ("inline", "oneway", "outofline", "immediate")


class ReplyHandle:
    """One-shot reply slot carried in ``Message.reply_to``."""

    __slots__ = ("event", "site")

    def __init__(self, kernel: Kernel, site: str):
        self.event = SimEvent(kernel, name="reply", ignore_retrigger=True)
        self.site = site


class IpcFabric:
    """Prices and schedules local message transfer on every site."""

    def __init__(self, kernel: Kernel, cost: CostModel, tracer: Tracer,
                 site_alive: Optional[Dict[str, Any]] = None):
        self.kernel = kernel
        self.cost = cost
        self.tracer = tracer
        # Map of site name -> Site (or anything with .alive); consulted at
        # delivery time so in-flight mail to a crashing site is lost.
        self.sites: Dict[str, Any] = site_alive if site_alive is not None else {}

    # ------------------------------------------------------------ costs

    def latency_for(self, flavour: str, msg: Message) -> float:
        if flavour == "inline":
            return self.cost.local_ipc
        if flavour == "oneway":
            return self.cost.local_oneway_message
        if flavour == "outofline":
            return self.cost.local_outofline_ipc + self.cost.bcopy(msg.outofline_kb)
        if flavour == "immediate":
            return 0.0
        raise ValueError(f"unknown IPC flavour {flavour!r}")

    def _site_alive(self, site: str) -> bool:
        entry = self.sites.get(site)
        return entry is None or getattr(entry, "alive", True)

    # ------------------------------------------------------------ sends

    def send(self, port: Port, msg: Message, flavour: str = "inline",
             sender_site: Optional[str] = None) -> None:
        """Fire-and-forget local send; delivery after the flavour latency."""
        if sender_site is not None:
            msg.sender = sender_site
        elif msg.sender is None:
            msg.sender = port.site
        latency = self.latency_for(flavour, msg)
        now = self.kernel.now
        self.tracer.record(now, f"ipc.{flavour}", site=port.site,
                           kind_of=msg.kind)
        obs = self.tracer.obs
        if obs is not None:
            obs.ipc(now, now + latency, flavour, port.site, msg)
        self.kernel.post(latency, self._deliver, port, msg)

    def _deliver(self, port: Port, msg: Message) -> None:
        if port.dead or not self._site_alive(port.site):
            self.tracer.record(self.kernel.now, "ipc.dropped", site=port.site,
                               kind_of=msg.kind)
            return
        port.enqueue(msg)

    # -------------------------------------------------------------- rpc

    def call(self, port: Port, msg: Message, flavour: str = "inline",
             sender_site: Optional[str] = None,
             reply_flavour: Optional[str] = None,
             timeout: Optional[float] = None
             ) -> Generator[Any, Any, Optional[Message]]:
        """Synchronous request/response; returns the reply message.

        The default server-call cost is two ``inline`` legs = 3 ms, the
        paper's "local in-line IPC to server" row.  With ``timeout`` set
        the call returns None when no reply arrives in time (dead
        server/port) instead of blocking forever; without it, a lost
        server raises :class:`DeadCallError` only if explicitly failed.
        """
        handle = ReplyHandle(self.kernel, sender_site or (msg.sender or port.site))
        msg.reply_to = handle
        msg.body.setdefault("_reply_flavour", reply_flavour or flavour)
        self.send(port, msg, flavour=flavour, sender_site=sender_site)
        if timeout is None:
            response = yield Wait(handle.event)
        else:
            from repro.sim.events import any_of, timeout_event

            winner = yield Wait(any_of(
                self.kernel,
                [handle.event, timeout_event(self.kernel, timeout)],
                name="call-or-timeout"))
            index, value = winner
            if index == 1:
                return None
            response = value
        if response is None:
            raise DeadCallError(f"call {msg.kind!r} to {port!r} lost")
        return response

    def reply(self, request: Message, response: Message,
              flavour: Optional[str] = None) -> None:
        """Answer a synchronous request; latency per the reply flavour."""
        handle = request.reply_to
        if handle is None:
            raise ValueError(f"message {request!r} has no reply handle")
        flavour = flavour or request.body.get("_reply_flavour", "inline")
        latency = self.latency_for(flavour, response)
        now = self.kernel.now
        self.tracer.record(now, f"ipc.{flavour}",
                           site=handle.site, kind_of=response.kind)
        obs = self.tracer.obs
        if obs is not None:
            obs.ipc(now, now + latency, flavour, handle.site, response)
        self.kernel.post(latency, self._trigger_reply, handle, response)

    def _trigger_reply(self, handle: ReplyHandle, response: Message) -> None:
        if not self._site_alive(handle.site):
            return
        handle.event.trigger(response)

    def fail_call(self, request: Message) -> None:
        """Abort a pending synchronous call (server died mid-request)."""
        handle = request.reply_to
        if handle is not None:
            handle.event.trigger(None)


class DeadCallError(RuntimeError):
    """A synchronous call's server vanished before replying."""
