"""Per-site CPU model.

The throughput experiments (paper Figures 4-5) saturate on CPU and
logger, not on protocol logic, so sites need a CPU abstraction:

- ``num_cpus`` identical processors,
- one FIFO run queue (the measured Mach 2.0 on the VAX 8200 had a single
  run queue on a master processor — the paper names this as a
  thread-switch cost factor), and
- a context-switch charge per dispatch.

Simulated work consumes CPU by ``yield from cpu.run(cost)``.  Costs are
scaled by the profile's ``cpu_speed_factor`` at the call site (via
:meth:`repro.config.CostModel.scaled_cpu`), so the same workload code
runs on both machine profiles.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.sim.kernel import Kernel
from repro.sim.process import Sleep
from repro.sim.resources import Semaphore


class CpuScheduler:
    """FIFO multiprocessor scheduler for one site.

    Busy time and dispatch counts are kept for utilisation reporting in
    the throughput benchmarks.
    """

    def __init__(self, kernel: Kernel, num_cpus: int = 1,
                 context_switch_ms: float = 0.137, name: str = "cpu"):
        if num_cpus < 1:
            raise ValueError("need at least one CPU")
        self.kernel = kernel
        self.name = name
        self.num_cpus = num_cpus
        self.context_switch_ms = context_switch_ms
        self._slots = Semaphore(kernel, value=num_cpus, name=f"{name}.slots")
        self.busy_ms = 0.0
        self.dispatches = 0

    def run(self, cost_ms: float) -> Generator[Any, Any, None]:
        """Consume ``cost_ms`` of CPU, queueing if all CPUs are busy.

        Zero-cost work returns immediately without a dispatch — profiles
        that fold CPU time into their latency constants (RT-PC) pass 0
        and suffer no queueing at all.
        """
        if cost_ms <= 0:
            return
        yield from self._slots.down()
        try:
            burst = cost_ms + self.context_switch_ms
            self.dispatches += 1
            self.busy_ms += burst
            yield Sleep(burst)
        finally:
            self._slots.up()

    @property
    def queue_depth(self) -> int:
        """Threads currently queued for a CPU slot (run-queue length)."""
        return len(self._slots._waiters)

    def utilization(self, elapsed_ms: float) -> float:
        """Fraction of total CPU capacity used over ``elapsed_ms``."""
        if elapsed_ms <= 0:
            return 0.0
        return self.busy_ms / (elapsed_ms * self.num_cpus)

    def reset_stats(self) -> None:
        self.busy_ms = 0.0
        self.dispatches = 0
