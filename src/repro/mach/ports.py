"""Ports: named message queues owned by a site.

A port is the only rendezvous in the system; all higher layers (RPC,
servers, the transaction manager's request interface) receive through
one.  Ports die when their site crashes — sends to a dead port raise at
delivery time in the fabric (modelling the connection breakage a real
NetMsgServer would report), and receivers are killed with their process.
"""

from __future__ import annotations

import itertools
from typing import Any, Generator

from repro.mach.message import Message
from repro.sim.kernel import Kernel
from repro.sim.resources import Channel

_port_ids = itertools.count(1)


class DeadPortError(RuntimeError):
    """Delivery attempted to a port whose owner has crashed."""


class Port:
    """A message queue bound to a site.

    ``enqueue`` is the raw, zero-latency primitive used by the IPC fabric
    after it has charged transfer latency; user code should send through
    :class:`~repro.mach.ipc.IpcFabric`, never call ``enqueue`` directly.
    """

    def __init__(self, kernel: Kernel, site: str, name: str = ""):
        self.kernel = kernel
        self.site = site
        self.port_id = next(_port_ids)
        self.name = name or f"port{self.port_id}"
        self.queue = Channel(kernel, name=f"{site}:{self.name}")
        self.dead = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flag = " DEAD" if self.dead else ""
        return f"<Port {self.site}:{self.name}{flag}>"

    def enqueue(self, msg: Message) -> None:
        if self.dead:
            raise DeadPortError(f"send to dead port {self!r}")
        self.queue.put(msg)

    def receive(self) -> Generator[Any, Any, Message]:
        """Process-body coroutine: block until a message arrives."""
        if self.dead:
            raise DeadPortError(f"receive on dead port {self!r}")
        msg = yield from self.queue.get()
        return msg

    def try_receive(self) -> tuple[bool, Message]:
        return self.queue.try_get()

    def destroy(self) -> list[Message]:
        """Kill the port (site crash); returns and discards queued mail."""
        self.dead = True
        return self.queue.drain()

    def revive(self) -> None:
        """Bring the port back after site restart (fresh, empty queue)."""
        self.dead = False
