"""The Mach network message server ("NetMsgServer").

Mach allows messages only between threads on a single site, so a
forwarding agent carries them between sites.  The NetMsgServer is that
agent, plus a name service: a client presents a string naming a service
and gets back a port; RPCs then flow

    client - NetMsgServer - network - NetMsgServer - server.

The paper measured the basic NetMsgServer-to-NetMsgServer RPC at
19.1 ms on the RT-PC testbed; this model reproduces that number as
(send cycle + wire leg) in each direction, routed over the
:class:`~repro.net.lan.Lan` so crashes and partitions apply.

Camelot interposes its communication manager in front of the
NetMsgServer (see :mod:`repro.servers.comman`), which adds the extra
IPC hops and ComMan CPU the paper dissects in §4.1.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, Optional, Tuple

from repro.config import CostModel
from repro.mach.ipc import IpcFabric
from repro.mach.message import Message
from repro.mach.ports import Port
from repro.net.lan import Lan
from repro.sim.events import SimEvent, any_of, timeout_event
from repro.sim.kernel import Kernel
from repro.sim.process import Sleep, Wait
from repro.sim.tracing import Tracer


class NameDirectory:
    """Cluster-wide service registry shared by all NetMsgServers.

    A real NetMsgServer gossips its registrations; the simulation keeps
    one coherent directory, which is indistinguishable at the granularity
    the paper measures.
    """

    def __init__(self) -> None:
        self._services: Dict[str, Tuple[str, Port]] = {}

    def register(self, service: str, site: str, port: Port) -> None:
        self._services[service] = (site, port)

    def unregister(self, service: str) -> None:
        self._services.pop(service, None)

    def lookup(self, service: str) -> Tuple[str, Port]:
        try:
            return self._services[service]
        except KeyError:
            raise KeyError(f"no such service {service!r}") from None

    def services(self) -> list[str]:
        return sorted(self._services)


class _RemoteReplyShim:
    """Duck-typed :class:`~repro.mach.ipc.ReplyHandle` for remote calls.

    The server replies through the normal ``fabric.reply`` path; the shim
    intercepts the reply at the server's site and sends it home over the
    LAN.
    """

    __slots__ = ("event", "site")

    def __init__(self, kernel: Kernel, site: str):
        self.event = SimEvent(kernel, name="remote-reply", ignore_retrigger=True)
        self.site = site


class NetMsgServer:
    """One site's forwarding agent."""

    def __init__(self, kernel: Kernel, lan: Lan, fabric: IpcFabric,
                 directory: NameDirectory, site: str, cost: CostModel,
                 tracer: Tracer):
        self.kernel = kernel
        self.lan = lan
        self.fabric = fabric
        self.directory = directory
        self.site = site
        self.cost = cost
        self.tracer = tracer
        self.forwarded = 0

    def wire_leg(self) -> float:
        """One-way wire+NMS-processing latency.

        Chosen so that (send cycle + wire leg) * 2 equals the measured
        19.1 ms NetMsgServer round trip.
        """
        return max(0.0, self.cost.netmsg_rpc / 2.0 - self.cost.datagram_send_cycle)

    # ----------------------------------------------------- name service

    def lookup(self, service: str) -> Generator[Any, Any, Tuple[str, Port]]:
        """Name lookup: one local RPC to the NetMsgServer."""
        yield Sleep(2 * self.cost.local_ipc)
        return self.directory.lookup(service)

    # ------------------------------------------------------ remote RPC

    def remote_call(self, dest_site: str, dest_port: Port, msg: Message,
                    timeout: Optional[float] = None
                    ) -> Generator[Any, Any, Optional[Message]]:
        """Forward ``msg`` to a port on another site and await the reply.

        Returns None if ``timeout`` elapses first (destination crashed or
        partitioned away) — the caller is expected to initiate the abort
        protocol, as the paper prescribes for unresponsive operations.
        """
        self.forwarded += 1
        msg.sender = self.site
        done = SimEvent(self.kernel, name="rpc.done", ignore_retrigger=True)
        shim = _RemoteReplyShim(self.kernel, dest_site)
        msg.reply_to = shim
        # The reply hop out of the server is part of the measured 19.1 ms,
        # not an extra local IPC, so suppress the fabric's reply charge.
        msg.body["_reply_flavour"] = "immediate"
        shim.event.add_callback(
            lambda response: self._send_home(dest_site, response, done))
        self.tracer.record(self.kernel.now, "nms.rpc", site=self.site,
                           dst=dest_site, kind_of=msg.kind)
        self.lan.unicast(self.site, dest_site, msg,
                         lambda m: self._deliver_request(dest_port, m),
                         latency_override=self.wire_leg())
        if timeout is None:
            response = yield Wait(done)
            return response
        winner = yield Wait(any_of(self.kernel,
                                   [done, timeout_event(self.kernel, timeout)],
                                   name="rpc-or-timeout"))
        index, value = winner
        if index == 0:
            return value
        self.tracer.record(self.kernel.now, "nms.rpc_timeout", site=self.site,
                           dst=dest_site, kind_of=msg.kind)
        return None

    def _deliver_request(self, port: Port, msg: Message) -> None:
        if port.dead:
            self.tracer.record(self.kernel.now, "nms.dead_port", site=port.site)
            return
        port.enqueue(msg)

    def _send_home(self, dest_site: str, response: Message, done: SimEvent) -> None:
        if response is None:
            return
        self.lan.unicast(dest_site, self.site, response, done.trigger,
                         latency_override=self.wire_leg())

    # Convenience: call by service name (lookup + remote or local call).

    def call_service(self, service: str, msg: Message,
                     timeout: Optional[float] = None
                     ) -> Generator[Any, Any, Optional[Message]]:
        dest_site, dest_port = self.directory.lookup(service)
        if dest_site == self.site:
            response = yield from self.fabric.call(dest_port, msg,
                                                   sender_site=self.site)
            return response
        response = yield from self.remote_call(dest_site, dest_port, msg,
                                               timeout=timeout)
        return response
