"""Typed messages, in the spirit of Mach 2.0.

Mach messages are not flat byte strings: they are typed, may carry port
rights, and may reference out-of-line data moved lazily between address
spaces.  The paper blames part of Mach's IPC cost on exactly this
generality, so the model keeps the distinction: a message knows whether
it is inline or out-of-line, and the IPC fabric prices it accordingly.

The ``trans`` field carries transaction-related metadata (TID, site
lists) in a well-known place so the communication manager can "spy" on
messages in flight, as Camelot's ComMan does.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

_msg_ids = itertools.count(1)


@dataclass(slots=True)
class Message:
    """One Mach message.  ``slots=True``: messages are the single most
    allocated object in a run (one per IPC hop), and slot storage trims
    both the per-instance dict and the attribute-access path.

    Attributes
    ----------
    kind:
        Operation selector, e.g. ``"begin_transaction"`` or ``"prepare"``.
    body:
        Free-form payload dictionary.
    reply_to:
        Port to answer on for synchronous request/response pairs; None
        for one-way messages.
    inline_bytes / outofline_kb:
        Size accounting used to price the transfer.
    trans:
        Transaction metadata visible to interposed agents (ComMan):
        ``tid``, ``sites_used`` etc.
    sender:
        Site name of the originator; filled in by the IPC fabric.
    """

    kind: str
    body: Dict[str, Any] = field(default_factory=dict)
    reply_to: Optional[Any] = None
    inline_bytes: int = 8
    outofline_kb: float = 0.0
    trans: Dict[str, Any] = field(default_factory=dict)
    sender: Optional[str] = None
    msg_id: int = field(default_factory=lambda: next(_msg_ids))

    @property
    def is_outofline(self) -> bool:
        return self.outofline_kb > 0

    def reply(self, kind: str, **body: Any) -> "Message":
        """Construct a response message preserving transaction metadata."""
        return Message(kind=kind, body=body, trans=dict(self.trans))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        tid = self.trans.get("tid")
        tid_part = f" tid={tid}" if tid is not None else ""
        return f"<Message #{self.msg_id} {self.kind}{tid_part}>"
