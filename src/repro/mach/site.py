"""A site: one machine running Mach plus the Camelot process suite.

The site owns its CPUs, its ports, and the liveness flag consulted by
the IPC fabric and the LAN.  Crash/restart is implemented here so that
failure injection has a single switch to flip:

- ``crash()`` kills every registered process, destroys every port, and
  discards volatile state; stable storage (the log) survives because it
  lives in :class:`repro.log.storage.StableStore`, not on the site.
- ``restart()`` revives ports and lets the caller re-spawn processes
  (the system assembly layer re-creates them and runs recovery).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, List

from repro.config import CostModel
from repro.mach.ports import Port
from repro.mach.scheduler import CpuScheduler
from repro.sim.kernel import Kernel
from repro.sim.process import Process, ProcessBody


class Site:
    """A named machine in the simulated distributed system."""

    def __init__(self, kernel: Kernel, name: str, cost: CostModel):
        self.kernel = kernel
        self.name = name
        self.cost = cost
        self.alive = True
        self.cpu = CpuScheduler(
            kernel,
            num_cpus=cost.num_cpus,
            context_switch_ms=cost.context_switch_us / 1000.0,
            name=f"{name}.cpu",
        )
        self.ports: Dict[str, Port] = {}
        self.processes: List[Process] = []
        # Finished processes are swept lazily: the registry exists only
        # so a crash can kill live processes, but per-transaction spawns
        # (prepare votes, continuations) would otherwise grow it by one
        # entry per message forever.  Doubling watermark => O(1)
        # amortized per spawn.
        self._process_sweep_at = 64
        self.crash_count = 0
        self.on_crash: List[Callable[[], None]] = []

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "up" if self.alive else "DOWN"
        return f"<Site {self.name} {state}>"

    # ------------------------------------------------------------ ports

    def create_port(self, name: str) -> Port:
        if name in self.ports:
            raise ValueError(f"port {name!r} already exists on {self.name}")
        port = Port(self.kernel, self.name, name=name)
        self.ports[name] = port
        return port

    def port(self, name: str) -> Port:
        return self.ports[name]

    # -------------------------------------------------------- processes

    def spawn(self, body: ProcessBody, name: str) -> Process:
        """Start a process bound to this site (killed on site crash).

        Spawning on a dead site yields an already-dead process: crashed
        machines run nothing, including stragglers scheduled by timers
        that fired after the crash.
        """
        proc = Process(self.kernel, body, name=f"{self.name}/{name}")
        if not self.alive:
            proc.kill()
            return proc
        self.processes.append(proc)
        if len(self.processes) >= self._process_sweep_at:
            self.processes = [p for p in self.processes if p.alive]
            self._process_sweep_at = max(64, 2 * len(self.processes))
        return proc

    def consume_cpu(self, cost_ms: float) -> Generator[Any, Any, None]:
        """Charge scaled CPU time on this site's processors."""
        yield from self.cpu.run(self.cost.scaled_cpu(cost_ms))

    # ------------------------------------------------- failure handling

    def crash(self) -> None:
        """Fail-stop the site: kill processes, destroy ports, lose RAM."""
        if not self.alive:
            return
        self.alive = False
        self.crash_count += 1
        for proc in self.processes:
            proc.kill()
        self.processes.clear()
        for port in self.ports.values():
            port.destroy()
        for hook in self.on_crash:
            hook()

    def restart(self) -> None:
        """Mark the site up again, with the port namespace cleared.

        Old :class:`Port` objects stay dead — anything still holding a
        stale reference (a remote name-directory entry, an in-flight
        message) loses its mail, just as a rebooted machine would drop
        connections.  The caller (system assembly) re-creates the Camelot
        processes, which mint fresh ports and re-register them, and runs
        recovery against stable storage.
        """
        if self.alive:
            return
        self.alive = True
        self.ports = {}
